//! A byte-budgeted, content-addressed LRU cache over any
//! [`ProblemStore`].

use crate::backend::{Fetched, ProblemStore, StoreStats};
use nspval::Serial;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;
use xdrser::XdrError;

/// What identifies a cached entry's *content*: the file's length and
/// modification time. A rewrite changes at least one of them, so a hit
/// is only served while the on-disk bytes are provably the ones cached
/// — stale entries are invalidated and reloaded, never served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    mtime: SystemTime,
}

fn fingerprint(path: &Path) -> Result<Fingerprint, XdrError> {
    let meta = std::fs::metadata(path)?;
    Ok(Fingerprint {
        len: meta.len(),
        mtime: meta.modified()?,
    })
}

#[derive(Debug)]
struct Entry {
    serial: Arc<Serial>,
    fp: Fingerprint,
    /// Position in the LRU order (key into `CacheState::lru`).
    tick: u64,
    /// Times this entry was served from cache.
    hits: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<PathBuf, Entry>,
    /// `tick → path`, oldest first: the eviction order.
    lru: BTreeMap<u64, PathBuf>,
    tick: u64,
    resident_bytes: u64,
    fetches: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    evicted_bytes: u64,
    invalidations: u64,
}

impl CacheState {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Remove `path` from the cache (if present), returning its size.
    fn remove(&mut self, path: &Path) -> Option<u64> {
        let entry = self.entries.remove(path)?;
        self.lru.remove(&entry.tick);
        let len = entry.serial.len() as u64;
        self.resident_bytes -= len;
        Some(len)
    }

    /// Evict oldest entries until `resident_bytes + incoming` fits in
    /// `budget`. Returns the bytes reclaimed.
    fn make_room(&mut self, incoming: u64, budget: u64) -> u64 {
        let mut reclaimed = 0;
        while self.resident_bytes + incoming > budget {
            let Some((_, victim)) = self.lru.pop_first() else {
                break;
            };
            let entry = self.entries.remove(&victim).expect("lru and entries agree");
            let len = entry.serial.len() as u64;
            self.resident_bytes -= len;
            self.evictions += 1;
            self.evicted_bytes += len;
            reclaimed += len;
        }
        reclaimed
    }
}

/// A byte-budgeted LRU of unmaterialised [`Serial`] buffers in front of
/// a slower backend.
///
/// * **Content-addressed**: entries are keyed by path *and* revalidated
///   against the file's `(length, mtime)` fingerprint on every hit, so
///   a rewritten problem file is never served stale.
/// * **Byte-budgeted**: resident bytes never exceed the budget; the
///   least-recently-used entries are evicted to make room, and an
///   object larger than the whole budget is served but not cached.
/// * **Shared-nothing hot path**: the backend read happens *outside*
///   the cache lock, so a miss never blocks concurrent hits.
#[derive(Debug)]
pub struct CachingStore {
    inner: Arc<dyn ProblemStore>,
    budget: u64,
    state: Mutex<CacheState>,
}

impl CachingStore {
    /// Wrap `inner` with a cache of at most `budget` resident bytes.
    pub fn new(inner: Arc<dyn ProblemStore>, budget: u64) -> Self {
        CachingStore {
            inner,
            budget,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Convenience: a budgeted cache straight over a [`crate::DirStore`].
    pub fn over_dir(budget: u64) -> Self {
        CachingStore::new(Arc::new(crate::DirStore::new()), budget)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Times the entry for `path` has been served from cache (`None`
    /// when not resident). Test/diagnostic hook.
    pub fn entry_hits(&self, path: &Path) -> Option<u64> {
        let state = self.state.lock().expect("cache lock");
        state.entries.get(path).map(|e| e.hits)
    }
}

impl ProblemStore for CachingStore {
    fn fetch(&self, path: &Path) -> Result<Fetched, XdrError> {
        let fp = fingerprint(path)?;

        // Fast path: serve a fingerprint-validated resident entry.
        {
            let mut state = self.state.lock().expect("cache lock");
            state.fetches += 1;
            if let Some(entry) = state.entries.get(path) {
                if entry.fp == fp {
                    let serial = entry.serial.clone();
                    let old_tick = entry.tick;
                    let tick = state.next_tick();
                    let entry = state.entries.get_mut(path).expect("entry resident");
                    entry.tick = tick;
                    entry.hits += 1;
                    state.lru.remove(&old_tick);
                    state.lru.insert(tick, path.to_path_buf());
                    state.hits += 1;
                    return Ok(Fetched {
                        serial,
                        cached: Some(true),
                        evicted_bytes: 0,
                    });
                }
                // Stale: the file changed under us. Drop and reload.
                state.remove(path);
                state.invalidations += 1;
            }
            state.misses += 1;
        }

        // Miss: read the backend *outside* the lock.
        let fetched = self.inner.fetch(path)?;
        let serial = fetched.serial;
        let len = serial.len() as u64;

        let mut state = self.state.lock().expect("cache lock");
        let mut evicted = 0;
        if len <= self.budget {
            // A concurrent miss may have raced us in; replace it.
            state.remove(path);
            evicted = state.make_room(len, self.budget);
            let tick = state.next_tick();
            state.lru.insert(tick, path.to_path_buf());
            state.entries.insert(
                path.to_path_buf(),
                Entry {
                    serial: serial.clone(),
                    fp,
                    tick,
                    hits: 0,
                },
            );
            state.resident_bytes += len;
        }
        Ok(Fetched {
            serial,
            cached: Some(false),
            evicted_bytes: evicted,
        })
    }

    fn invalidate(&self, path: &Path) {
        let mut state = self.state.lock().expect("cache lock");
        if state.remove(path).is_some() {
            state.invalidations += 1;
        }
        self.inner.invalidate(path);
    }

    fn stats(&self) -> StoreStats {
        let state = self.state.lock().expect("cache lock");
        StoreStats {
            fetches: state.fetches,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            evicted_bytes: state.evicted_bytes,
            invalidations: state.invalidations,
            resident_entries: state.entries.len() as u64,
            resident_bytes: state.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nspval::Value;

    fn setup(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("store_cache_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn save(dir: &Path, name: &str, v: &Value) -> PathBuf {
        let path = dir.join(name);
        xdrser::save(&path, v).unwrap();
        path
    }

    #[test]
    fn second_fetch_is_a_hit_with_identical_bytes() {
        let dir = setup("hit");
        let path = save(&dir, "a.bin", &Value::scalar(7.0));
        let store = CachingStore::over_dir(1 << 20);
        let cold = store.fetch(&path).unwrap();
        let warm = store.fetch(&path).unwrap();
        assert_eq!(cold.cached, Some(false));
        assert_eq!(warm.cached, Some(true));
        assert_eq!(cold.serial.bytes(), warm.serial.bytes());
        let s = store.stats();
        assert_eq!((s.fetches, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.resident_entries, 1);
        assert_eq!(s.resident_bytes, cold.serial.len() as u64);
        assert_eq!(store.entry_hits(&path), Some(1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_invalidates_the_entry() {
        let dir = setup("rewrite");
        let path = save(&dir, "a.bin", &Value::string("first version"));
        let store = CachingStore::over_dir(1 << 20);
        store.fetch(&path).unwrap();
        // Rewrite with different-length content: the fingerprint moves.
        xdrser::save(&path, &Value::string("second, longer version!")).unwrap();
        let after = store.fetch(&path).unwrap();
        assert_eq!(after.cached, Some(false), "stale entry must not be served");
        assert_eq!(
            xdrser::unserialize(&after.serial).unwrap(),
            Value::string("second, longer version!")
        );
        assert_eq!(store.stats().invalidations, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_invalidate_forces_a_reload() {
        let dir = setup("explicit");
        let path = save(&dir, "a.bin", &Value::scalar(1.0));
        let store = CachingStore::over_dir(1 << 20);
        store.fetch(&path).unwrap();
        store.invalidate(&path);
        assert_eq!(store.fetch(&path).unwrap().cached, Some(false));
        let s = store.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_respects_budget_and_order() {
        let dir = setup("lru");
        let paths: Vec<PathBuf> = (0..3)
            .map(|i| save(&dir, &format!("p{i}.bin"), &Value::scalar(i as f64)))
            .collect();
        let one = file_size(&paths[0]);
        // Budget fits exactly two entries.
        let store = CachingStore::over_dir(2 * one);
        store.fetch(&paths[0]).unwrap();
        store.fetch(&paths[1]).unwrap();
        store.fetch(&paths[0]).unwrap(); // touch p0: p1 becomes LRU
        let third = store.fetch(&paths[2]).unwrap();
        assert_eq!(third.evicted_bytes, one, "one entry evicted to fit");
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_entries, 2);
        assert!(s.resident_bytes <= store.budget());
        // p1 (least recently used) was the victim; p0 is still warm.
        assert_eq!(store.fetch(&paths[0]).unwrap().cached, Some(true));
        assert_eq!(store.fetch(&paths[1]).unwrap().cached, Some(false));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_entry_served_but_not_cached() {
        let dir = setup("oversize");
        let path = save(&dir, "big.bin", &Value::string("x".repeat(512)));
        let store = CachingStore::over_dir(16); // tiny budget
        let f = store.fetch(&path).unwrap();
        assert_eq!(f.cached, Some(false));
        let s = store.stats();
        assert_eq!(s.resident_entries, 0);
        assert_eq!(s.resident_bytes, 0);
        // Still a miss next time — but correct bytes both times.
        assert_eq!(store.fetch(&path).unwrap().serial.bytes(), f.serial.bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_does_not_poison_the_cache() {
        let dir = setup("missing");
        let store = CachingStore::over_dir(1 << 20);
        assert!(store.fetch(&dir.join("nope.bin")).is_err());
        let path = save(&dir, "a.bin", &Value::scalar(3.0));
        assert_eq!(store.fetch(&path).unwrap().cached, Some(false));
        assert_eq!(store.fetch(&path).unwrap().cached, Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Size of the serialized file at `path`.
    fn file_size(path: &Path) -> u64 {
        std::fs::metadata(path).unwrap().len()
    }

    #[test]
    fn concurrent_fetches_agree_and_account_sanely() {
        let dir = setup("concurrent");
        let path = save(&dir, "a.bin", &Value::scalar(9.0));
        let store = Arc::new(CachingStore::over_dir(1 << 20));
        let expect = std::fs::read(&path).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            let path = path.clone();
            let expect = expect.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let f = store.fetch(&path).unwrap();
                    assert_eq!(f.serial.bytes(), expect.as_slice());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = store.stats();
        assert_eq!(s.fetches, 400);
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.hits >= 392, "at most one miss per thread: {s:?}");
        assert_eq!(s.resident_entries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
