//! # riskbench — a risk-management benchmark for parallel architectures
//!
//! A from-scratch Rust reproduction of *"Using Premia and Nsp for
//! Constructing a Risk Management Benchmark for Testing Parallel
//! Architecture"* (Chancelier, Lapeyre, Lelong). The paper combines three
//! freely available systems — the Premia pricing library, the Nsp
//! Matlab-like scripting environment, and MPI — into a reproducible
//! benchmark: a master/slave "Robin Hood" task farm pricing realistic
//! portfolios of equity derivatives.
//!
//! This crate is the front door; each subsystem lives in its own crate
//! and is re-exported here:
//!
//! * [`pricing`] — the Premia substitute: Black–Scholes / local-vol /
//!   Heston / multi-asset models; closed-form, PDE, tree, Monte-Carlo and
//!   Longstaff–Schwartz methods; the `PremiaProblem` descriptor.
//! * [`nspval`] + [`xdrser`] — the Nsp value system with XDR
//!   serialization (`serialize`, `save`/`load`, the `sload` fast path,
//!   LZSS compression).
//! * [`transport`] — the pluggable message transport under `minimpi`:
//!   one `Transport` trait, an in-process channel backend and a
//!   multi-process Unix-domain-socket backend, with fault injection and
//!   instrumentation mapped onto both (`docs/TRANSPORT.md`).
//! * [`minimpi`] — the MPI-like runtime backing the live farm, generic
//!   over the [`transport`] backends (thread worlds or spawned child
//!   processes).
//! * [`sched`] — the pure, transport-free Robin-Hood scheduler state
//!   machine; every master (live farm and simulator alike) is a thin
//!   driver of it, and `tests/sched_parity.rs` proves both worlds render
//!   byte-identical decision traces.
//! * [`exec`] — the deterministic chunked executor behind intra-slave
//!   compute parallelism (`FarmConfig::threads`): fixed-size path chunks,
//!   one seeded RNG stream per chunk, bit-identical results for any
//!   worker count.
//! * [`store`] — the tiered problem store: every problem byte reaches
//!   the farm through its `ProblemStore` trait (directory backend,
//!   byte-budgeted LRU cache, master-side prefetch).
//! * [`farm`] — portfolio generators (§4.1–§4.3 workloads), the three
//!   transmission strategies, and the Robin-Hood / batched / hierarchical
//!   farms.
//! * [`serve`] — the long-lived pricing service: a resident `Session`
//!   over the same scheduler, with request coalescing, result
//!   memoisation, priority backpressure and p50/p99 SLO reporting.
//! * [`clustersim`] — the calibrated discrete-event simulator that
//!   regenerates Tables I–III at cluster scale.
//! * [`nsplang`] — a mini-Nsp interpreter able to run the paper's
//!   Fig. 1/2/4/5 script shapes against the toolboxes.
//!
//! ## Quickstart
//!
//! ```
//! use riskbench::prelude::*;
//!
//! // Describe a pricing problem the way §3.3 does...
//! let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
//! let result = p.compute().unwrap();
//! assert!((result.price - 10.45).abs() < 0.01);
//!
//! // ...and price a small portfolio in parallel with the Robin-Hood farm.
//! let dir = std::env::temp_dir().join("riskbench_doc_quickstart");
//! let jobs = toy_portfolio(16);
//! let files = save_portfolio(&jobs, &dir).unwrap();
//! let report = farm::run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
//! assert_eq!(report.completed(), 16);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub use clustersim;
pub use exec;
pub use farm;
pub use minimpi;
pub use nsplang;
pub use nspval;
pub use numerics;
pub use obs;
pub use pricing;
pub use sched;
pub use serve;
pub use store;
pub use transport;
pub use xdrser;

/// The commonly used types and functions in one import.
pub mod prelude {
    pub use clustersim::{
        simulate_farm, simulate_serve, table1_rows, table2_rows, table3_rows, NfsCache,
        ServeSimOutcome, SimConfig, SimJob, SimRequest, TableRow,
    };
    pub use exec::{ExecPolicy, ExecStats, StatsSink};
    pub use farm::batching::run_batched_farm;
    pub use farm::hierarchy::run_hierarchical_farm;
    pub use farm::calibrate::{measured_costs, paper_costs, CostModel};
    pub use farm::portfolio::{
        mixed_portfolio, realistic_portfolio, regression_portfolio, representative_problem,
        save_portfolio, toy_portfolio, JobClass, PortfolioJob, PortfolioScale,
    };
    pub use farm::risk::{aggregate_risk, risk_sweep, BumpSpec, ClaimRisk, Scenario};
    pub use farm::supervisor::SupervisorConfig;
    pub use farm::workload::{class_indices, class_name, per_class_compute, run_workload, Workload};
    pub use farm::{run, FarmConfig, FarmError, FarmReport, Transmission, WirePolicy};
    pub use minimpi::{
        Comm, FaultEvent, FaultPlan, MpiBuf, SendFault, SpawnedWorld, World, ANY_SOURCE, ANY_TAG,
    };
    pub use nspval::{Hash, List, Matrix, Serial, Value};
    pub use obs::{Breakdown, BreakdownReport, Event, EventKind, Recorder, StrategyBreakdown};
    pub use pricing::{
        MethodSpec, ModelSpec, OptionSpec, PremiaProblem, PricingError, PricingResult,
    };
    pub use serve::{Priced, Request, Response, ServeConfig, ServeError, Session, Ticket};
    pub use store::{CachingStore, DirStore, Fetched, Prefetcher, ProblemStore, StoreStats};
    pub use xdrser::{load, save, serialize, sload, unserialize};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_workflow() {
        let p = PremiaProblem::create("BlackScholes1dim", "PutEuro", "CF").unwrap();
        let r = p.compute().unwrap();
        assert!(r.price > 0.0);
    }
}
