//! A mini-Nsp interpreter.
//!
//! Nsp is the Matlab-like scripting language the paper uses as the glue:
//! "the use of Nsp makes the parallelization very easy as all the code can
//! be written in an intuitive scripting language" (§5). This crate
//! implements the subset of Nsp the paper's listings (Figs. 1, 2, 4, 5)
//! exercise:
//!
//! * dynamic values bridged 1:1 to [`nspval::Value`] (matrices, strings,
//!   booleans, lists, hash tables, serial buffers);
//! * `if/then/else`, `while`, `for`, `break`, user functions
//!   (`function [out] = name(args) … endfunction`), multi-value
//!   assignment `[a, b] = f(…)`;
//! * Matlab-ish expressions: `1:100` ranges, matrix literals, `.field`
//!   access, `obj.method[args]` bracket-method calls (`P.compute[]`,
//!   `L.add_last[v]`, `S.unserialize[]`), postfix transpose;
//! * three toolboxes, mirroring §3: the serialization builtins
//!   (`serialize`, `save`, `load`, `sload`), the **MPI toolbox**
//!   (`MPI_Comm_rank`, `MPI_Send_Obj`, `MPI_Probe`, `mpibuf_create`, …)
//!   bound to a live [`minimpi::Comm`], and the **Premia toolbox**
//!   (`premia_create`, `P.set_model[str=…]`, `P.compute[]`).
//!
//! The integration tests run an adaptation of the Fig. 4/5 master/slave
//! portfolio pricer *as a script* on every rank of a `minimpi` world.
//!
//! Scripts execute on one of two engines behind [`Interp::with_engine`]:
//! the original AST tree-walker, or a register bytecode VM
//! ([`lower`] + [`vm`], see `docs/VM.md`) that resolves locals to slots at
//! compile time and dispatches over a flat opcode stream. Both engines are
//! proven bit-identical (bindings, RNG streams, error messages) by the
//! script battery in `tests/nsp_scripts.rs`.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod opcodes;
pub mod parser;
pub mod toolbox;
pub mod vm;

pub use interp::{Engine, Interp, NValue, NspError};
pub use lexer::Pos;
pub use parser::parse_program;

/// Parse and run a script in a fresh interpreter (no MPI binding);
/// returns the interpreter for inspecting variables.
pub fn run_script(src: &str) -> Result<Interp, NspError> {
    let mut interp = Interp::new();
    interp.run(src)?;
    Ok(interp)
}

/// Like [`run_script`] but on the bytecode VM engine.
pub fn run_script_vm(src: &str) -> Result<Interp, NspError> {
    let mut interp = Interp::with_engine(Engine::Vm);
    interp.run(src)?;
    Ok(interp)
}
