//! The tree-walking evaluator and builtin/toolbox dispatch.

use crate::ast::{Arg, BinOp, Expr, FuncDef, Spanned, Stmt, Target, UnOp};
use crate::lexer::Pos;
use crate::parser::parse_program;
use crate::toolbox::PremiaObj;
use minimpi::{Comm, MpiBuf};
use nspval::{BoolMatrix, Hash, List, Matrix, StrMatrix, Value};
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Interpreter runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct NspError {
    /// Human-readable description of the failure.
    pub message: String,
    /// `line:col` of the statement that raised the error, when known.
    /// Both engines attach the innermost executing statement's position.
    pub span: Option<Pos>,
}

impl NspError {
    /// Build an error from any message (no source span).
    pub fn new(msg: impl Into<String>) -> Self {
        NspError {
            message: msg.into(),
            span: None,
        }
    }

    /// Attach a source span unless one is already present (the innermost
    /// statement wins, so nested statements keep their own position).
    pub fn with_span(mut self, pos: Pos) -> Self {
        if self.span.is_none() && pos.is_some() {
            self.span = Some(pos);
        }
        self
    }
}

impl fmt::Display for NspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(p) => write!(f, "nsp error at {}: {}", p, self.message),
            None => write!(f, "nsp error: {}", self.message),
        }
    }
}

impl std::error::Error for NspError {}

impl From<crate::parser::ParseError> for NspError {
    fn from(e: crate::parser::ParseError) -> Self {
        NspError::new(e.to_string())
    }
}

/// Which execution engine [`Interp::run`] uses.
///
/// Both engines share the parser, the value semantics helpers, the builtin
/// and method dispatch, and the RNG state, and are proven bit-identical on
/// the script battery in `tests/nsp_scripts.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original AST tree-walker.
    #[default]
    Tree,
    /// The register bytecode VM (`lower` + `vm` modules): slot-resolved
    /// locals, interned constants, no hash lookups in the dispatch loop.
    Vm,
}

type R<T> = Result<T, NspError>;

fn err<T>(msg: impl Into<String>) -> R<T> {
    Err(NspError::new(msg))
}

/// An interpreter value: plain Nsp data, or a toolbox object.
#[derive(Debug, Clone)]
pub enum NValue {
    /// Any `nspval` value.
    V(Value),
    /// A mutable `PremiaModel` instance (reference semantics, like Nsp
    /// objects).
    Premia(Rc<RefCell<PremiaObj>>),
    /// An MPI receive buffer (`mpibuf_create`).
    Buf(Rc<RefCell<MpiBuf>>),
}

impl NValue {
    /// A 1×1 real value.
    pub fn scalar(x: f64) -> Self {
        NValue::V(Value::scalar(x))
    }

    /// A 1×1 string value.
    pub fn string(s: impl Into<String>) -> Self {
        NValue::V(Value::string(s.into()))
    }

    /// A 1×1 boolean value.
    pub fn boolean(b: bool) -> Self {
        NValue::V(Value::boolean(b))
    }

    /// The scalar content, if this is a 1×1 real value.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            NValue::V(v) => v.as_scalar(),
            _ => None,
        }
    }

    /// The string content, if this is a 1×1 string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            NValue::V(v) => v.as_str(),
            _ => None,
        }
    }

    /// Convert to a plain `Value` for serialization / MPI transmission.
    /// Premia objects encode as their `PremiaModel` hash.
    pub fn to_value(&self) -> R<Value> {
        match self {
            NValue::V(v) => Ok(v.clone()),
            NValue::Premia(p) => {
                let problem = p.borrow().to_problem().map_err(NspError::new)?;
                Ok(problem.to_value())
            }
            NValue::Buf(_) => err("mpibuf objects cannot be serialized"),
        }
    }

    /// Wrap a decoded value: `PremiaModel` hashes come back to life as
    /// Premia objects (this is what makes `P = unserialize(...);
    /// P.compute[]` work on the slave).
    pub fn wrap(v: Value) -> NValue {
        if let Some(h) = v.as_hash() {
            if h.get("class").and_then(|c| c.as_str()) == Some("PremiaModel") {
                if let Ok(problem) = PremiaProblem::from_value(&v) {
                    return NValue::Premia(Rc::new(RefCell::new(PremiaObj::from_problem(problem))));
                }
            }
        }
        NValue::V(v)
    }

    pub(crate) fn truthy(&self) -> R<bool> {
        match self {
            NValue::V(v) => Ok(v.truthy()),
            _ => err("object is not a condition"),
        }
    }

    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            NValue::V(Value::Real(_)) => "real matrix",
            NValue::V(Value::Bool(_)) => "boolean",
            NValue::V(Value::Str(_)) => "string",
            NValue::V(Value::List(_)) => "list",
            NValue::V(Value::Hash(_)) => "hash",
            NValue::V(Value::Serial(_)) => "serial",
            NValue::V(Value::None) => "none",
            NValue::Premia(_) => "PremiaModel",
            NValue::Buf(_) => "mpibuf",
        }
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// The interpreter: global scope, user functions, optional MPI binding,
/// captured output (`disp`).
pub struct Interp {
    pub(crate) scopes: Vec<HashMap<String, NValue>>,
    pub(crate) funcs: HashMap<String, Rc<FuncDef>>,
    pub(crate) comm: Option<Rc<Comm>>,
    /// Lines printed by `disp`/`print` (inspectable in tests; also echoed
    /// to stdout when `echo` is set).
    pub output: Vec<String>,
    /// Echo `disp` output to stdout as well as capturing it.
    pub echo: bool,
    pub(crate) rng_state: u64,
    engine: Engine,
    /// Compiled bodies of user functions, keyed by name and validated
    /// against the live `funcs` entry by `Rc` identity (VM engine only).
    pub(crate) vm_protos: HashMap<String, (Rc<FuncDef>, Rc<crate::opcodes::Proto>)>,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh interpreter with no MPI binding.
    pub fn new() -> Self {
        Interp {
            scopes: vec![HashMap::new()],
            funcs: HashMap::new(),
            comm: None,
            output: Vec::new(),
            echo: false,
            rng_state: 0x5EED0F55,
            engine: Engine::Tree,
            vm_protos: HashMap::new(),
        }
    }

    /// A fresh interpreter running scripts on the given engine.
    pub fn with_engine(engine: Engine) -> Self {
        let mut i = Interp::new();
        i.engine = engine;
        i
    }

    /// Bind a live MPI communicator: `MPI_Comm_rank` etc. operate on it.
    pub fn with_comm(comm: Rc<Comm>) -> Self {
        let mut i = Interp::new();
        i.comm = Some(comm);
        i
    }

    /// Switch the execution engine for subsequent [`Interp::run`] calls.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The engine scripts currently run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Parse and execute a script on the selected engine.
    pub fn run(&mut self, src: &str) -> R<()> {
        match self.engine {
            Engine::Tree => self.run_tree(src),
            Engine::Vm => crate::vm::run_vm(self, src),
        }
    }

    fn run_tree(&mut self, src: &str) -> R<()> {
        let prog = parse_program(src)?;
        match self.exec_block(&prog)? {
            Flow::Normal | Flow::Return => Ok(()),
            Flow::Break => err("break outside loop"),
            Flow::Continue => err("continue outside loop"),
        }
    }

    /// Look up a variable (any scope, innermost first).
    pub fn get(&self, name: &str) -> Option<&NValue> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Convenience for tests: variable as plain `Value`.
    pub fn get_value(&self, name: &str) -> Option<Value> {
        self.get(name).and_then(|v| v.to_value().ok())
    }

    /// Borrow-based fast path: variable as a scalar, without cloning the
    /// whole `NValue` the way [`Interp::get_value`] does.
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(|v| v.as_scalar())
    }

    /// Borrow-based fast path: variable as a 1×1 string slice.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(|v| v.as_str())
    }

    /// Borrow-based fast path: variable as a 1×1 boolean.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        match self.get(name)? {
            NValue::V(v) => v.as_bool(),
            _ => None,
        }
    }

    /// Iterate the global bindings (name, value), in insertion order of the
    /// underlying map (unspecified). Used by the engine-equivalence battery.
    pub fn globals(&self) -> impl Iterator<Item = (&str, &NValue)> {
        self.scopes[0].iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The current RNG state (used to assert identical draw sequences
    /// across engines).
    pub fn rng_state(&self) -> u64 {
        self.rng_state
    }

    /// Bind `name` in the current scope.
    pub fn set(&mut self, name: &str, v: NValue) {
        self.scopes
            .last_mut()
            .expect("at least the global scope")
            .insert(name.to_string(), v);
    }

    pub(crate) fn comm(&self) -> R<&Comm> {
        match &self.comm {
            Some(c) => Ok(c),
            None => err("no MPI communicator bound to this interpreter"),
        }
    }

    pub(crate) fn rand(&mut self) -> f64 {
        // SplitMix64, interpreter-local.
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    // ---- statements ---------------------------------------------------------

    fn exec_block(&mut self, stmts: &[Spanned]) -> R<Flow> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Spanned) -> R<Flow> {
        self.exec_stmt_kind(&stmt.kind)
            .map_err(|e| e.with_span(stmt.pos))
    }

    fn exec_stmt_kind(&mut self, stmt: &Stmt) -> R<Flow> {
        match stmt {
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign(targets, rhs) => {
                if targets.len() == 1 {
                    let v = self.eval(rhs)?;
                    self.assign(&targets[0], v)?;
                } else {
                    // Multi-assignment needs a multi-valued call.
                    let vals = self.eval_multi(rhs, targets.len())?;
                    if vals.len() < targets.len() {
                        return err(format!(
                            "expected {} return values, got {}",
                            targets.len(),
                            vals.len()
                        ));
                    }
                    for (t, v) in targets.iter().zip(vals) {
                        self.assign(t, v)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval(cond)?.truthy()? {
                        return self.exec_block(body);
                    }
                }
                self.exec_block(else_body)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.truthy()? {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body } => {
                let items = self.for_items(iter)?;
                for item in items {
                    self.set(var, item);
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return => Ok(Flow::Return),
            Stmt::FuncDef(f) => {
                self.funcs.insert(f.name.clone(), Rc::new(f.clone()));
                Ok(Flow::Normal)
            }
        }
    }

    fn for_items(&mut self, iter: &Expr) -> R<Vec<NValue>> {
        let v = self.eval(iter)?;
        for_items_of(v)
    }

    fn assign(&mut self, target: &Target, v: NValue) -> R<()> {
        match target {
            Target::Ident(name) => {
                // Assignments always bind in the current scope: function
                // bodies cannot mutate globals (Nsp/Matlab semantics) —
                // they can only read them.
                self.set(name, v);
                Ok(())
            }
            Target::Index(name, args) => {
                let idx_vals: Vec<NValue> = args
                    .iter()
                    .map(|a| match a {
                        Arg::Pos(e) => self.eval(e),
                        Arg::Kw(_, _) => err("keyword in index"),
                    })
                    .collect::<R<Vec<_>>>()?;
                let current = self
                    .get(name)
                    .cloned()
                    .ok_or_else(|| NspError::new(format!("undefined variable {name}")))?;
                let updated = index_assign_value(current, &idx_vals, v)?;
                self.assign(&Target::Ident(name.clone()), updated)
            }
            Target::Field(base, field) => match base.as_ref() {
                Target::Ident(name) => {
                    let mut hash = match self.get(name) {
                        Some(NValue::V(Value::Hash(h))) => h.clone(),
                        None => Hash::new(), // auto-create, like Nsp's H.A = ...
                        Some(other) => {
                            return err(format!("cannot set field on {}", other.type_name()))
                        }
                    };
                    hash.set(field, v.to_value()?);
                    self.assign(&Target::Ident(name.clone()), NValue::V(Value::Hash(hash)))
                }
                _ => err("nested field assignment not supported"),
            },
        }
    }

    // ---- expressions ---------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> R<NValue> {
        Ok(self.eval_multi(e, 1)?.remove(0))
    }

    /// Evaluate an expression that may produce multiple values (function
    /// calls with several outputs).
    fn eval_multi(&mut self, e: &Expr, want: usize) -> R<Vec<NValue>> {
        match e {
            Expr::Num(v) => Ok(vec![NValue::scalar(*v)]),
            Expr::Str(s) => Ok(vec![NValue::string(s.clone())]),
            Expr::Bool(b) => Ok(vec![NValue::boolean(*b)]),
            Expr::Ident(name) => {
                if let Some(v) = self.get(name) {
                    Ok(vec![v.clone()])
                } else if self.funcs.contains_key(name) || is_builtin(name) {
                    // Zero-argument call: `premia_create` style is written
                    // with parens in practice, but allow bare too.
                    self.call(name, Vec::new(), Vec::new(), want)
                } else {
                    err(format!("undefined variable {name}"))
                }
            }
            Expr::Matrix(rows) => Ok(vec![self.eval_matrix(rows)?]),
            Expr::Range(lo, step, hi) => {
                // Evaluation order is lo, hi, then step (matching the VM's
                // operand order); scalar checks happen after evaluation.
                let vlo = self.eval(lo)?;
                let vhi = self.eval(hi)?;
                let vstep = match step {
                    Some(s) => Some(self.eval(s)?),
                    None => None,
                };
                Ok(vec![range_value(&vlo, &vhi, vstep.as_ref())?])
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                Ok(vec![unary_value(*op, &v)?])
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                Ok(vec![binary_value(*op, &va, &vb)?])
            }
            Expr::Apply(callee, args) => match callee.as_ref() {
                Expr::Ident(name) => {
                    if self.get(name).is_some() {
                        // Indexing a variable.
                        let idx = self.eval_pos_args(args)?;
                        let base = self.get(name).expect("checked");
                        Ok(vec![index_value(base, &idx)?])
                    } else {
                        let (pos, kw) = self.eval_args(args)?;
                        self.call(name, pos, kw, want)
                    }
                }
                other => {
                    // Index the result of an arbitrary expression:
                    // L(1)(3) etc.
                    let base = self.eval(other)?;
                    let idx = self.eval_pos_args(args)?;
                    Ok(vec![index_value(&base, &idx)?])
                }
            },
            Expr::Field(base, name) => {
                let b = self.eval(base)?;
                Ok(vec![field_value(&b, name)?])
            }
            Expr::MethodCall(base, name, args) => {
                let b = self.eval(base)?;
                let (pos, kw) = self.eval_args(args)?;
                let result = self.method(b, name, pos, kw)?;
                // Value-semantics mutating methods (add_last) return the
                // updated container; write it back when the receiver is a
                // plain variable so `res.add_last[...]` behaves like Nsp.
                if name == "add_last" {
                    if let Expr::Ident(var) = base.as_ref() {
                        self.assign(&Target::Ident(var.clone()), result[0].clone())?;
                    }
                }
                Ok(result)
            }
            Expr::Transpose(inner) => {
                let v = self.eval(inner)?;
                Ok(vec![transpose_value(&v)?])
            }
        }
    }

    fn eval_matrix(&mut self, rows: &[Vec<Expr>]) -> R<NValue> {
        // Evaluate all entries first (row-major order, same as the VM's
        // operand evaluation), then classify/assemble in the shared helper.
        let mut vals: Vec<Vec<NValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut rv = Vec::with_capacity(row.len());
            for e in row {
                rv.push(self.eval(e)?);
            }
            vals.push(rv);
        }
        build_matrix(&vals)
    }

    fn eval_pos_args(&mut self, args: &[Arg]) -> R<Vec<NValue>> {
        args.iter()
            .map(|a| match a {
                Arg::Pos(e) => self.eval(e),
                Arg::Kw(_, _) => err("unexpected keyword argument"),
            })
            .collect()
    }

    #[allow(clippy::type_complexity)]
    fn eval_args(&mut self, args: &[Arg]) -> R<(Vec<NValue>, Vec<(String, NValue)>)> {
        let mut pos = Vec::new();
        let mut kw = Vec::new();
        for a in args {
            match a {
                Arg::Pos(e) => pos.push(self.eval(e)?),
                Arg::Kw(name, e) => kw.push((name.clone(), self.eval(e)?)),
            }
        }
        Ok((pos, kw))
    }

    // ---- calls ---------------------------------------------------------------

    fn call(
        &mut self,
        name: &str,
        pos: Vec<NValue>,
        kw: Vec<(String, NValue)>,
        want: usize,
    ) -> R<Vec<NValue>> {
        if let Some(f) = self.funcs.get(name).cloned() {
            return self.call_user(&f, pos, want);
        }
        self.call_builtin(name, pos, kw, want)
    }

    pub(crate) fn call_user(&mut self, f: &FuncDef, args: Vec<NValue>, want: usize) -> R<Vec<NValue>> {
        if args.len() > f.params.len() {
            return err(format!(
                "{} takes {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            ));
        }
        let mut scope = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            scope.insert(p.clone(), a);
        }
        self.scopes.push(scope);
        let flow = self.exec_block(&f.body);
        let scope = self.scopes.pop().expect("pushed above");
        flow?;
        let mut outs = Vec::new();
        for o in f.outs.iter().take(want.max(1).min(f.outs.len().max(1))) {
            match scope.get(o) {
                Some(v) => outs.push(v.clone()),
                None => return err(format!("function {} did not set output {o}", f.name)),
            }
        }
        if outs.is_empty() {
            outs.push(NValue::V(Value::None));
        }
        Ok(outs)
    }

    pub(crate) fn call_builtin(
        &mut self,
        name: &str,
        mut pos: Vec<NValue>,
        kw: Vec<(String, NValue)>,
        _want: usize,
    ) -> R<Vec<NValue>> {
        let one = |v: NValue| Ok(vec![v]);
        let need_scalar = |v: &NValue, what: &str| -> R<f64> {
            v.as_scalar()
                .ok_or_else(|| NspError::new(format!("{what} must be a scalar")))
        };
        let need_str = |v: &NValue, what: &str| -> R<String> {
            v.as_str()
                .map(|s| s.to_string())
                .ok_or_else(|| NspError::new(format!("{what} must be a string")))
        };
        match name {
            // ---- core -------------------------------------------------------
            "list" => {
                let mut l = List::new();
                for v in pos {
                    l.add_last(v.to_value()?);
                }
                one(NValue::V(Value::List(l)))
            }
            "hash_create" => {
                let mut h = Hash::new();
                for (k, v) in kw {
                    h.set(&k, v.to_value()?);
                }
                one(NValue::V(Value::Hash(h)))
            }
            "rand" => {
                let (r, c) = match pos.len() {
                    0 => (1, 1),
                    1 => {
                        let n = need_scalar(&pos[0], "rand size")? as usize;
                        (n, n)
                    }
                    _ => (
                        need_scalar(&pos[0], "rand rows")? as usize,
                        need_scalar(&pos[1], "rand cols")? as usize,
                    ),
                };
                let data: Vec<f64> = (0..r * c).map(|_| self.rand()).collect();
                one(NValue::V(Value::Real(Matrix::from_col_major(r, c, data))))
            }
            "reseed" => {
                let s = need_scalar(
                    pos.first()
                        .ok_or_else(|| NspError::new("reseed needs a seed"))?,
                    "reseed seed",
                )?;
                self.reseed(s as u64);
                one(NValue::V(Value::None))
            }
            "size" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("size needs an argument"))?;
                let star = pos.get(1).and_then(|a| a.as_str()) == Some("*");
                match v {
                    NValue::V(Value::List(l)) => one(NValue::scalar(l.len() as f64)),
                    NValue::V(Value::Real(m)) => {
                        if star {
                            one(NValue::scalar(m.len() as f64))
                        } else {
                            Ok(vec![
                                NValue::scalar(m.rows() as f64),
                                NValue::scalar(m.cols() as f64),
                            ])
                        }
                    }
                    NValue::V(Value::Str(s)) => one(NValue::scalar((s.rows() * s.cols()) as f64)),
                    other => err(format!("size of {}", other.type_name())),
                }
            }
            "length" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("length needs an argument"))?;
                match v {
                    NValue::V(Value::List(l)) => one(NValue::scalar(l.len() as f64)),
                    NValue::V(Value::Real(m)) => one(NValue::scalar(m.len() as f64)),
                    NValue::V(Value::Str(s)) => one(NValue::scalar(
                        s.as_scalar().map(|x| x.chars().count()).unwrap_or(0) as f64,
                    )),
                    other => err(format!("length of {}", other.type_name())),
                }
            }
            "floor" | "ceil" | "abs" | "sqrt" | "exp" | "log" => {
                let x = need_scalar(
                    pos.first()
                        .ok_or_else(|| NspError::new(format!("{name} needs an argument")))?,
                    name,
                )?;
                let y = match name {
                    "floor" => x.floor(),
                    "ceil" => x.ceil(),
                    "abs" => x.abs(),
                    "sqrt" => x.sqrt(),
                    "exp" => x.exp(),
                    _ => x.ln(),
                };
                one(NValue::scalar(y))
            }
            "min" | "max" => {
                let a = need_scalar(&pos[0], name)?;
                let b = need_scalar(&pos[1], name)?;
                one(NValue::scalar(if name == "min" {
                    a.min(b)
                } else {
                    a.max(b)
                }))
            }
            "string" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("string needs an argument"))?;
                let s = match v {
                    NValue::V(Value::Str(s)) => {
                        s.as_scalar().map(|x| x.to_string()).unwrap_or_default()
                    }
                    NValue::V(Value::Real(m)) if m.is_scalar() => {
                        let x = m.get(0, 0);
                        if x.fract() == 0.0 && x.abs() < 1e15 {
                            format!("{}", x as i64)
                        } else {
                            format!("{x}")
                        }
                    }
                    other => format!("<{}>", other.type_name()),
                };
                one(NValue::string(s))
            }
            "disp" | "print" => {
                let text = pos
                    .iter()
                    .map(|v| match v {
                        NValue::V(val) => format!("{val}"),
                        other => format!("<{}>", other.type_name()),
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                if self.echo {
                    println!("{text}");
                }
                self.output.push(text);
                one(NValue::V(Value::None))
            }
            "exec" => {
                // Fig. 1: exec('src/loader.sce') — run a script file in
                // the current interpreter.
                let path = need_str(&pos[0], "exec path")?;
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| NspError::new(format!("exec {path}: {e}")))?;
                self.run(&src)?;
                one(NValue::V(Value::None))
            }
            "getenv" => {
                let var = need_str(&pos[0], "getenv variable")?;
                one(NValue::string(std::env::var(&var).unwrap_or_default()))
            }
            "error" => {
                let msg = pos
                    .first()
                    .and_then(|v| v.as_str())
                    .unwrap_or("error")
                    .to_string();
                err(msg)
            }
            "isempty" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("isempty needs an argument"))?;
                let empty = match v {
                    NValue::V(Value::Real(m)) => m.is_empty(),
                    NValue::V(Value::List(l)) => l.is_empty(),
                    NValue::V(Value::Str(s)) => s.as_scalar() == Some(""),
                    _ => false,
                };
                one(NValue::boolean(empty))
            }
            // ---- serialization toolbox (§3.2 / Fig. 2) ----------------------
            "serialize" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("serialize needs a value"))?;
                one(NValue::V(Value::Serial(xdrser::serialize(&v.to_value()?))))
            }
            "unserialize" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("unserialize needs a serial"))?;
                match v {
                    NValue::V(Value::Serial(s)) => {
                        let val =
                            xdrser::unserialize(s).map_err(|e| NspError::new(e.to_string()))?;
                        one(NValue::wrap(val))
                    }
                    other => err(format!("unserialize of {}", other.type_name())),
                }
            }
            "save" => {
                let path = need_str(&pos[0], "save path")?;
                let v = pos
                    .get(1)
                    .ok_or_else(|| NspError::new("save needs a value"))?;
                xdrser::save(&path, &v.to_value()?).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::None))
            }
            "load" => {
                let path = need_str(&pos[0], "load path")?;
                let v = xdrser::load(&path).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::wrap(v))
            }
            "sload" => {
                let path = need_str(&pos[0], "sload path")?;
                let s = xdrser::sload(&path).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::Serial(s)))
            }
            // ---- Premia toolbox (§3.3) ---------------------------------------
            "premia_create" => one(NValue::Premia(Rc::new(RefCell::new(PremiaObj::new())))),
            // ---- MPI toolbox (§3.2) -------------------------------------------
            "MPI_Init" => one(NValue::boolean(true)),
            "MPI_Initialized" => one(NValue::boolean(self.comm.is_some())),
            "mpicomm_create" => {
                let which = pos
                    .first()
                    .and_then(|v| v.as_str())
                    .unwrap_or("WORLD")
                    .to_string();
                one(NValue::string(format!("COMM:{which}")))
            }
            "mpiinfo_create" => one(NValue::string("INFO:NULL")),
            "MPI_Comm_rank" => one(NValue::scalar(self.comm()?.rank() as f64)),
            "MPI_Comm_size" => one(NValue::scalar(self.comm()?.size() as f64)),
            "MPI_Send_Obj" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("MPI_Send_Obj needs a value"))?
                    .to_value()?;
                let dest = need_scalar(&pos[1], "destination")? as i32;
                let tag = need_scalar(&pos[2], "tag")? as i32;
                self.comm()?
                    .send_obj(&v, dest, tag)
                    .map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::None))
            }
            "MPI_Recv_Obj" => {
                let src = need_scalar(&pos[0], "source")? as i32;
                let tag = need_scalar(&pos[1], "tag")? as i32;
                let (v, _st) = self
                    .comm()?
                    .recv_obj(src, tag)
                    .map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::wrap(v))
            }
            "MPI_Probe" => {
                let src = need_scalar(&pos[0], "source")? as i32;
                let tag = need_scalar(&pos[1], "tag")? as i32;
                let st = self
                    .comm()?
                    .probe(src, tag)
                    .map_err(|e| NspError::new(e.to_string()))?;
                one(status_value(st))
            }
            "MPI_Get_count" | "MPI_Get_elements" => {
                let stat = pos.first().ok_or_else(|| NspError::new("needs a status"))?;
                match stat {
                    NValue::V(Value::Hash(h)) => {
                        let count = h
                            .get("count")
                            .and_then(|v| v.as_scalar())
                            .ok_or_else(|| NspError::new("bad status object"))?;
                        one(NValue::scalar(count))
                    }
                    other => err(format!("bad status: {}", other.type_name())),
                }
            }
            "mpibuf_create" => {
                let n = need_scalar(&pos[0], "buffer size")? as usize;
                one(NValue::Buf(Rc::new(RefCell::new(MpiBuf::with_capacity(n)))))
            }
            "MPI_Recv" => {
                let buf = match pos.first() {
                    Some(NValue::Buf(b)) => Rc::clone(b),
                    _ => return err("MPI_Recv needs an mpibuf"),
                };
                let src = need_scalar(&pos[1], "source")? as i32;
                let tag = need_scalar(&pos[2], "tag")? as i32;
                let st = self
                    .comm()?
                    .recv_into(&mut buf.borrow_mut(), src, tag)
                    .map_err(|e| NspError::new(e.to_string()))?;
                one(status_value(st))
            }
            "MPI_Unpack" => {
                let buf = match pos.first() {
                    Some(NValue::Buf(b)) => Rc::clone(b),
                    _ => return err("MPI_Unpack needs an mpibuf"),
                };
                let v = self
                    .comm()?
                    .unpack(&buf.borrow())
                    .map_err(|e| NspError::new(e.to_string()))?;
                // Keep the raw value (a Serial stays a Serial), matching
                // the Fig. 4 slave that unserializes explicitly.
                one(NValue::V(v))
            }
            "MPI_Pack" => {
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("MPI_Pack needs a value"))?
                    .to_value()?;
                let buf = self.comm()?.pack(&v);
                one(NValue::Buf(Rc::new(RefCell::new(buf))))
            }
            "MPI_Send" => {
                let bytes: Vec<u8> = match pos.first() {
                    Some(NValue::Buf(b)) => b.borrow().bytes().to_vec(),
                    _ => return err("MPI_Send needs an mpibuf (use MPI_Pack first)"),
                };
                let dest = need_scalar(&pos[1], "destination")? as i32;
                let tag = need_scalar(&pos[2], "tag")? as i32;
                self.comm()?
                    .send(&bytes, dest, tag)
                    .map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::None))
            }
            "MPI_Barrier" => {
                self.comm()?.barrier();
                one(NValue::V(Value::None))
            }
            "MPI_Wtime" => one(NValue::scalar(self.comm()?.wtime())),
            _ => {
                let _ = &mut pos;
                err(format!("unknown function {name}"))
            }
        }
    }

    // ---- methods ---------------------------------------------------------------

    pub(crate) fn method(
        &mut self,
        base: NValue,
        name: &str,
        pos: Vec<NValue>,
        kw: Vec<(String, NValue)>,
    ) -> R<Vec<NValue>> {
        let one = |v: NValue| Ok(vec![v]);
        match (&base, name) {
            // ---- Premia object (§3.3) -------------------------------------
            (NValue::Premia(p), "set_asset") => {
                p.borrow_mut().asset = Some(kw_str(&kw, &pos)?);
                one(base)
            }
            (NValue::Premia(p), "set_model") => {
                let s = kw_str(&kw, &pos)?;
                p.borrow_mut().model =
                    Some(ModelSpec::by_name(&s).map_err(|e| NspError::new(e.to_string()))?);
                one(base)
            }
            (NValue::Premia(p), "set_option") => {
                let s = kw_str(&kw, &pos)?;
                p.borrow_mut().option =
                    Some(OptionSpec::by_name(&s).map_err(|e| NspError::new(e.to_string()))?);
                one(base)
            }
            (NValue::Premia(p), "set_method") => {
                let s = kw_str(&kw, &pos)?;
                let spec = MethodSpec::by_name(&s).map_err(|e| NspError::new(e.to_string()))?;
                p.borrow_mut().method = Some(tune_method(spec, &kw)?);
                one(base)
            }
            (NValue::Premia(p), "compute") => {
                p.borrow_mut().compute().map_err(NspError::new)?;
                one(base)
            }
            (NValue::Premia(p), "get_method_results") => {
                let b = p.borrow();
                let r = b
                    .result
                    .as_ref()
                    .ok_or_else(|| NspError::new("compute[] has not been called"))?;
                // The paper reads L(1)(3) as the price: outer list of
                // result groups, inner list (name, aux, value).
                let inner = Value::list(vec![
                    Value::string("Price"),
                    Value::scalar(r.std_error.unwrap_or(0.0)),
                    Value::scalar(r.price),
                ]);
                one(NValue::V(Value::list(vec![inner])))
            }
            // ---- generic value methods -------------------------------------
            (NValue::V(Value::List(_)), "add_last") => {
                // Lists are value types in our bridge: mutate through
                // reassignment is handled by the caller pattern
                // `res.add_last[...]` — we mutate a clone and write it
                // back is impossible here, so add_last returns the new
                // list; statement form updates the variable via special
                // handling in eval (see MethodCall on Ident below).
                let mut l = match base {
                    NValue::V(Value::List(l)) => l,
                    _ => unreachable!(),
                };
                let v = pos
                    .first()
                    .ok_or_else(|| NspError::new("add_last needs a value"))?;
                l.add_last(v.to_value()?);
                one(NValue::V(Value::List(l)))
            }
            (NValue::V(_), "equal") => {
                let other = pos
                    .first()
                    .ok_or_else(|| NspError::new("equal needs a value"))?;
                one(NValue::boolean(base.to_value()?.equal(&other.to_value()?)))
            }
            (NValue::Premia(_), "equal") => {
                let other = pos
                    .first()
                    .ok_or_else(|| NspError::new("equal needs a value"))?;
                one(NValue::boolean(base.to_value()?.equal(&other.to_value()?)))
            }
            (NValue::V(Value::Serial(s)), "unserialize") => {
                let v = xdrser::unserialize(s).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::wrap(v))
            }
            (NValue::V(Value::Serial(s)), "compress") => {
                let c = xdrser::compress_serial(s).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::Serial(c)))
            }
            (NValue::V(Value::Serial(s)), "uncompress") => {
                let c = xdrser::decompress_serial(s).map_err(|e| NspError::new(e.to_string()))?;
                one(NValue::V(Value::Serial(c)))
            }
            (b, m) => err(format!("{} has no method {m}", b.type_name())),
        }
    }
}

// ---- shared value semantics ------------------------------------------------
//
// These free functions are the single implementation of the language's value
// operations. Both engines (tree-walker and bytecode VM) call them, which is
// what makes results AND error messages bit-identical by construction.

/// Unary operator application.
pub(crate) fn unary_value(op: UnOp, v: &NValue) -> R<NValue> {
    match (op, v) {
        (UnOp::Neg, NValue::V(Value::Real(m))) => {
            let data = m.data().iter().map(|x| -x).collect();
            Ok(NValue::V(Value::Real(Matrix::from_col_major(
                m.rows(),
                m.cols(),
                data,
            ))))
        }
        (UnOp::Not, NValue::V(Value::Bool(b))) => {
            let data = b.data().iter().map(|x| !x).collect();
            Ok(NValue::V(Value::Bool(BoolMatrix::from_col_major(
                b.rows(),
                b.cols(),
                data,
            ))))
        }
        (op, v) => err(format!("cannot apply {op:?} to {}", v.type_name())),
    }
}

/// Binary operator application. `&&`/`||` are *eager*: both operands are
/// already evaluated by the time this runs, in both engines.
pub(crate) fn binary_value(op: BinOp, a: &NValue, b: &NValue) -> R<NValue> {
    use BinOp::*;
    // String concatenation and comparison.
    if let (Some(x), Some(y)) = (a.as_str(), b.as_str()) {
        return match op {
            Add => Ok(NValue::string(format!("{x}{y}"))),
            Eq => Ok(NValue::boolean(x == y)),
            Ne => Ok(NValue::boolean(x != y)),
            _ => err(format!("cannot apply {op:?} to strings")),
        };
    }
    // Boolean logic.
    if let (NValue::V(Value::Bool(x)), NValue::V(Value::Bool(y))) = (a, b) {
        if matches!(op, And | Or | Eq | Ne) {
            let xa = x.all();
            let ya = y.all();
            return Ok(NValue::boolean(match op {
                And => xa && ya,
                Or => xa || ya,
                Eq => xa == ya,
                Ne => xa != ya,
                _ => unreachable!(),
            }));
        }
    }
    // Numeric (scalar/matrix, elementwise with scalar broadcast).
    if let (NValue::V(Value::Real(ma)), NValue::V(Value::Real(mb))) = (a, b) {
        return numeric_binop(op, ma, mb);
    }
    // Equality of anything else.
    if matches!(op, Eq | Ne) {
        let va = a.to_value()?;
        let vb = b.to_value()?;
        let equal = va.equal(&vb);
        return Ok(NValue::boolean(if op == Eq { equal } else { !equal }));
    }
    err(format!(
        "cannot apply {op:?} to {} and {}",
        a.type_name(),
        b.type_name()
    ))
}

/// Postfix transpose.
pub(crate) fn transpose_value(v: &NValue) -> R<NValue> {
    match v {
        NValue::V(Value::Real(m)) => {
            let mut t = Matrix::zeros(m.cols(), m.rows());
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    t.set(c, r, m.get(r, c));
                }
            }
            Ok(NValue::V(Value::Real(t)))
        }
        // Transposing a list is the identity — Fig. 4 iterates
        // `Lpb(1:k)'`.
        NValue::V(Value::List(l)) => Ok(NValue::V(Value::List(l.clone()))),
        other => err(format!("cannot transpose {}", other.type_name())),
    }
}

/// `base(idx...)` read indexing (lists, matrices, hashes).
pub(crate) fn index_value(base: &NValue, idx: &[NValue]) -> R<NValue> {
    match base {
        NValue::V(Value::List(l)) => {
            if idx.len() != 1 {
                return err("lists take one index");
            }
            match &idx[0] {
                NValue::V(Value::Real(m)) if m.len() == 1 => {
                    let i = m.get_linear(0) as usize;
                    if i < 1 || i > l.len() {
                        return err(format!("list index {i} out of bounds ({})", l.len()));
                    }
                    Ok(NValue::wrap(l.get(i - 1).expect("bounds checked").clone()))
                }
                NValue::V(Value::Real(m)) => {
                    // Sublist selection: L(1:k).
                    let mut out = List::new();
                    for &x in m.data() {
                        let i = x as usize;
                        if i < 1 || i > l.len() {
                            return err(format!("list index {i} out of bounds"));
                        }
                        out.add_last(l.get(i - 1).expect("bounds checked").clone());
                    }
                    Ok(NValue::V(Value::List(out)))
                }
                other => err(format!("bad list index: {}", other.type_name())),
            }
        }
        NValue::V(Value::Real(m)) => match idx.len() {
            1 => match &idx[0] {
                NValue::V(Value::Real(im)) if im.len() == 1 => {
                    let i = im.get_linear(0) as usize;
                    if i < 1 || i > m.len() {
                        return err(format!("index {i} out of bounds"));
                    }
                    Ok(NValue::scalar(m.get_linear(i - 1)))
                }
                NValue::V(Value::Real(im)) => {
                    let mut data = Vec::with_capacity(im.len());
                    for &x in im.data() {
                        let i = x as usize;
                        if i < 1 || i > m.len() {
                            return err(format!("index {i} out of bounds"));
                        }
                        data.push(m.get_linear(i - 1));
                    }
                    Ok(NValue::V(Value::Real(Matrix::row(data))))
                }
                other => err(format!("bad matrix index: {}", other.type_name())),
            },
            2 => {
                let r = idx[0]
                    .as_scalar()
                    .ok_or_else(|| NspError::new("row index must be scalar"))?
                    as usize;
                let c = idx[1]
                    .as_scalar()
                    .ok_or_else(|| NspError::new("col index must be scalar"))?
                    as usize;
                if r < 1 || c < 1 || r > m.rows() || c > m.cols() {
                    return err("matrix index out of bounds");
                }
                Ok(NValue::scalar(m.get(r - 1, c - 1)))
            }
            _ => err("matrices take 1 or 2 indices"),
        },
        NValue::V(Value::Hash(h)) => {
            if idx.len() == 1 {
                if let Some(key) = idx[0].as_str() {
                    return match h.get(key) {
                        Some(v) => Ok(NValue::wrap(v.clone())),
                        None => err(format!("hash has no key {key}")),
                    };
                }
            }
            err("hash indices are strings")
        }
        other => err(format!("cannot index {}", other.type_name())),
    }
}

/// `base(idx...) = v` write indexing; takes the current container by value
/// and returns the updated one.
pub(crate) fn index_assign_value(current: NValue, idx: &[NValue], v: NValue) -> R<NValue> {
    match current {
        NValue::V(Value::List(mut l)) => {
            if idx.len() != 1 {
                return err("lists take one index");
            }
            // Range deletion: Lpb(1:k) = []
            if let NValue::V(Value::Real(m)) = &idx[0] {
                if m.len() > 1 {
                    if let NValue::V(val) = &v {
                        if val.is_empty_matrix() {
                            let mut positions: Vec<usize> =
                                m.data().iter().map(|&x| x as usize).collect();
                            positions.sort_unstable();
                            positions.dedup();
                            for p in positions.into_iter().rev() {
                                if p >= 1 && p <= l.len() {
                                    l.remove_range(p - 1, 1);
                                }
                            }
                            return Ok(NValue::V(Value::List(l)));
                        }
                    }
                    return err("list range assignment only supports deletion with []");
                }
            }
            let i = idx[0]
                .as_scalar()
                .ok_or_else(|| NspError::new("list index must be a scalar"))?
                as usize;
            if i < 1 {
                return err("list indices are 1-based");
            }
            // Deletion of a single element.
            if let NValue::V(val) = &v {
                if val.is_empty_matrix() && i <= l.len() {
                    l.remove_range(i - 1, 1);
                    return Ok(NValue::V(Value::List(l)));
                }
            }
            while l.len() < i {
                l.add_last(Value::None);
            }
            *l.get_mut(i - 1).expect("extended above") = v.to_value()?;
            Ok(NValue::V(Value::List(l)))
        }
        NValue::V(Value::Real(mut m)) => {
            let x = v
                .as_scalar()
                .ok_or_else(|| NspError::new("matrix assignment needs a scalar"))?;
            match idx.len() {
                1 => {
                    let i = idx[0]
                        .as_scalar()
                        .ok_or_else(|| NspError::new("index must be scalar"))?
                        as usize;
                    if i < 1 || i > m.len() {
                        return err(format!("index {i} out of bounds"));
                    }
                    m.data_mut()[i - 1] = x;
                }
                2 => {
                    let r = idx[0].as_scalar().unwrap_or(0.0) as usize;
                    let c = idx[1].as_scalar().unwrap_or(0.0) as usize;
                    if r < 1 || c < 1 || r > m.rows() || c > m.cols() {
                        return err("matrix index out of bounds");
                    }
                    m.set(r - 1, c - 1, x);
                }
                _ => return err("matrices take 1 or 2 indices"),
            }
            Ok(NValue::V(Value::Real(m)))
        }
        other => err(format!("cannot index-assign into {}", other.type_name())),
    }
}

/// `base.name` field read.
pub(crate) fn field_value(base: &NValue, name: &str) -> R<NValue> {
    match base {
        NValue::V(Value::Hash(h)) => match h.get(name) {
            Some(v) => Ok(NValue::wrap(v.clone())),
            None => err(format!("hash has no field {name}")),
        },
        other => err(format!("{} has no fields", other.type_name())),
    }
}

/// The item sequence a `for` loop iterates over (eager, like Nsp).
pub(crate) fn for_items_of(v: NValue) -> R<Vec<NValue>> {
    match v {
        NValue::V(Value::List(l)) => Ok(l.into_iter().map(NValue::wrap).collect()),
        NValue::V(Value::Real(m)) => {
            if m.rows() <= 1 || m.cols() == 1 {
                Ok(m.data().iter().map(|&x| NValue::scalar(x)).collect())
            } else {
                // Iterate columns as column vectors (Matlab semantics).
                let mut cols = Vec::with_capacity(m.cols());
                for c in 0..m.cols() {
                    let col: Vec<f64> = (0..m.rows()).map(|r| m.get(r, c)).collect();
                    cols.push(NValue::V(Value::Real(Matrix::col(col))));
                }
                Ok(cols)
            }
        }
        NValue::V(Value::Str(s)) => Ok(s.data().iter().map(|x| NValue::string(x.clone())).collect()),
        other => err(format!("cannot iterate over {}", other.type_name())),
    }
}

/// Assemble a matrix literal from its evaluated entries (row-major rows).
pub(crate) fn build_matrix(rows: &[Vec<NValue>]) -> R<NValue> {
    if rows.is_empty() {
        return Ok(NValue::V(Value::empty_matrix()));
    }
    // Support horizontal concatenation of row vectors/scalars within a
    // row, and string rows.
    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    let mut strings: Vec<String> = Vec::new();
    let mut is_string = false;
    for row in rows {
        let mut data = Vec::new();
        for v in row {
            match v {
                NValue::V(Value::Real(m)) => data.extend_from_slice(m.data()),
                NValue::V(Value::Str(s)) => {
                    is_string = true;
                    strings.extend(s.data().iter().cloned());
                }
                NValue::V(Value::Bool(b)) => data.extend(b.data().iter().map(|&x| x as u8 as f64)),
                other => {
                    return err(format!(
                        "matrix entries must be numeric, got {}",
                        other.type_name()
                    ))
                }
            }
        }
        all_rows.push(data);
    }
    if is_string {
        // A string row vector like ["-name", "nsp-child"].
        return Ok(NValue::V(Value::Str(StrMatrix::row(strings))));
    }
    let cols = all_rows[0].len();
    if all_rows.iter().any(|r| r.len() != cols) {
        return err("ragged matrix literal");
    }
    let rows_n = all_rows.len();
    let mut data = vec![0.0; rows_n * cols];
    for (r, row) in all_rows.iter().enumerate() {
        for (c, &x) in row.iter().enumerate() {
            data[c * rows_n + r] = x;
        }
    }
    Ok(NValue::V(Value::Real(Matrix::from_col_major(
        rows_n, cols, data,
    ))))
}

/// Build an `a:b[:c]` range from its evaluated bounds. Scalar checks run
/// after all operands are evaluated (lo, hi, then step — both engines
/// evaluate in that order).
pub(crate) fn range_value(lo: &NValue, hi: &NValue, step: Option<&NValue>) -> R<NValue> {
    let lo = lo
        .as_scalar()
        .ok_or_else(|| NspError::new("range bound must be scalar"))?;
    let hi = hi
        .as_scalar()
        .ok_or_else(|| NspError::new("range bound must be scalar"))?;
    let step = match step {
        Some(s) => s
            .as_scalar()
            .ok_or_else(|| NspError::new("range step must be scalar"))?,
        None => 1.0,
    };
    if step == 0.0 {
        return err("range step cannot be zero");
    }
    let mut data = Vec::new();
    let mut x = lo;
    if step > 0.0 {
        while x <= hi + 1e-12 {
            data.push(x);
            x += step;
        }
    } else {
        while x >= hi - 1e-12 {
            data.push(x);
            x += step;
        }
    }
    Ok(NValue::V(Value::Real(Matrix::row(data))))
}

/// Compact builtin table: the lowerer resolves callee names to dense ids
/// through this list at compile time, and the VM dispatches through
/// [`builtin_name`] — no per-call string allocation or hashing.
pub(crate) const BUILTIN_NAMES: &[&str] = &[
    "list",
    "hash_create",
    "rand",
    "reseed",
    "size",
    "length",
    "floor",
    "ceil",
    "abs",
    "sqrt",
    "exp",
    "log",
    "min",
    "max",
    "string",
    "disp",
    "print",
    "getenv",
    "error",
    "isempty",
    "exec",
    "serialize",
    "unserialize",
    "save",
    "load",
    "sload",
    "premia_create",
    "MPI_Init",
    "MPI_Initialized",
    "mpicomm_create",
    "mpiinfo_create",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Send_Obj",
    "MPI_Recv_Obj",
    "MPI_Probe",
    "MPI_Get_count",
    "MPI_Get_elements",
    "mpibuf_create",
    "MPI_Recv",
    "MPI_Unpack",
    "MPI_Pack",
    "MPI_Send",
    "MPI_Barrier",
    "MPI_Wtime",
];

/// Id of the `exec` builtin — the VM intercepts it so the inner script
/// shares the current frame (tree semantics: exec binds into the caller's
/// scope).
pub(crate) const BUILTIN_EXEC: u16 = 20;

/// Resolve a builtin name to its dense id (compile time only).
pub(crate) fn builtin_id(name: &str) -> Option<u16> {
    BUILTIN_NAMES.iter().position(|&b| b == name).map(|i| i as u16)
}

/// The static name for a builtin id (runtime dispatch, allocation-free).
pub(crate) fn builtin_name(id: u16) -> &'static str {
    BUILTIN_NAMES[id as usize]
}

/// Is `name` one of the builtin functions (used to allow bare calls like
/// `premia_create` without parentheses)?
fn is_builtin(name: &str) -> bool {
    builtin_id(name).is_some()
}

/// `P.set_xxx[str="..."]` keyword or single positional string.
fn kw_str(kw: &[(String, NValue)], pos: &[NValue]) -> R<String> {
    if let Some((_, v)) = kw.iter().find(|(k, _)| k == "str") {
        return v
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| NspError::new("str= expects a string"));
    }
    if let Some(v) = pos.first() {
        return v
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| NspError::new("expected a string argument"));
    }
    err("expected str=\"...\" argument")
}

/// Apply numeric keyword overrides from `set_method[...]` onto the spec
/// resolved by name, so scripts can drive a method round by round:
/// `P.set_method[str="MC_BSDE_LabartLelong", picard_rounds=1, y_prev=y]`.
/// Unknown keys are errors — a typo must not silently price the default
/// configuration.
fn tune_method(mut spec: MethodSpec, kw: &[(String, NValue)]) -> R<MethodSpec> {
    use MethodSpec::*;
    for (key, v) in kw {
        if key == "str" {
            continue;
        }
        let x = v
            .as_scalar()
            .ok_or_else(|| NspError::new(format!("{key}= expects a scalar")))?;
        let n = x as usize;
        match (&mut spec, key.as_str()) {
            (Pde { time_steps, .. }, "time_steps") => *time_steps = n,
            (Pde { space_steps, .. }, "space_steps") => *space_steps = n,
            (Tree { steps }, "steps") => *steps = n,
            (MonteCarlo { paths, .. } | QuasiMonteCarlo { paths }, "paths") => *paths = n,
            (MonteCarlo { time_steps, .. }, "time_steps") => *time_steps = n,
            (MonteCarlo { antithetic, .. }, "antithetic") => *antithetic = x != 0.0,
            (Lsm { paths, .. }, "paths") => *paths = n,
            (Lsm { exercise_dates, .. }, "exercise_dates") => *exercise_dates = n,
            (Lsm { basis_degree, .. }, "basis_degree") => *basis_degree = n,
            (Bsde { paths, .. }, "paths") => *paths = n,
            (Bsde { time_steps, .. }, "time_steps") => *time_steps = n,
            (Bsde { rate_spread, .. }, "rate_spread") => *rate_spread = x,
            (Bsde { picard_rounds, .. }, "picard_rounds") => *picard_rounds = n,
            (Bsde { y_prev, .. }, "y_prev") => *y_prev = x,
            (Xva { paths, .. }, "paths") => *paths = n,
            (Xva { time_steps, .. }, "time_steps") => *time_steps = n,
            (Xva { hazard, .. }, "hazard") => *hazard = x,
            (Xva { lgd, .. }, "lgd") => *lgd = x,
            (
                MonteCarlo { seed, .. }
                | Lsm { seed, .. }
                | Bsde { seed, .. }
                | Xva { seed, .. },
                "seed",
            ) => *seed = x as u64,
            _ => {
                return err(format!(
                    "method {} has no tunable parameter {key}",
                    spec.name()
                ))
            }
        }
    }
    Ok(spec)
}

fn status_value(st: minimpi::Status) -> NValue {
    let mut h = Hash::new();
    h.set("src", Value::scalar(st.src as f64));
    h.set("tag", Value::scalar(st.tag as f64));
    h.set("count", Value::scalar(st.count() as f64));
    NValue::V(Value::Hash(h))
}

fn numeric_binop(op: BinOp, a: &Matrix, b: &Matrix) -> R<NValue> {
    use BinOp::*;
    // Comparison of scalars returns a boolean.
    if a.is_scalar() && b.is_scalar() {
        let x = a.get(0, 0);
        let y = b.get(0, 0);
        return Ok(match op {
            Add => NValue::scalar(x + y),
            Sub => NValue::scalar(x - y),
            Mul => NValue::scalar(x * y),
            Div => NValue::scalar(x / y),
            Eq => NValue::boolean(x == y),
            Ne => NValue::boolean(x != y),
            Lt => NValue::boolean(x < y),
            Gt => NValue::boolean(x > y),
            Le => NValue::boolean(x <= y),
            Ge => NValue::boolean(x >= y),
            And | Or => return err("&&/|| need booleans"),
        });
    }
    // Elementwise with scalar broadcast.
    let (rows, cols) = if a.is_scalar() {
        (b.rows(), b.cols())
    } else {
        (a.rows(), a.cols())
    };
    if !a.is_scalar() && !b.is_scalar() && (a.rows() != b.rows() || a.cols() != b.cols()) {
        return err("shape mismatch in matrix operation");
    }
    let get = |m: &Matrix, i: usize| {
        if m.is_scalar() {
            m.get(0, 0)
        } else {
            m.get_linear(i)
        }
    };
    let n = rows * cols;
    match op {
        Add | Sub | Mul | Div => {
            let mut data = Vec::with_capacity(n);
            for i in 0..n {
                let x = get(a, i);
                let y = get(b, i);
                data.push(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y, // elementwise (the scripts never need matmul)
                    Div => x / y,
                    _ => unreachable!(),
                });
            }
            Ok(NValue::V(Value::Real(Matrix::from_col_major(
                rows, cols, data,
            ))))
        }
        Eq | Ne | Lt | Gt | Le | Ge => {
            let mut data = Vec::with_capacity(n);
            for i in 0..n {
                let x = get(a, i);
                let y = get(b, i);
                data.push(match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Gt => x > y,
                    Le => x <= y,
                    Ge => x >= y,
                    _ => unreachable!(),
                });
            }
            Ok(NValue::V(Value::Bool(BoolMatrix::from_col_major(
                rows, cols, data,
            ))))
        }
        And | Or => err("&&/|| need booleans"),
    }
}

impl Interp {
    /// Seed used by `rand` (deterministic per interpreter).
    pub fn reseed(&mut self, seed: u64) {
        self.rng_state = seed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_script;

    fn scalar(i: &Interp, name: &str) -> f64 {
        i.get_value(name).unwrap().as_scalar().unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let i = run_script("x = 1 + 2 * 3 - 4 / 2").unwrap();
        assert_eq!(scalar(&i, "x"), 5.0);
    }

    #[test]
    fn string_concatenation_like_fig1() {
        let i = run_script("cmd = 'exec(''src/loader.sce'');'\ncmd = cmd + 'MPI_Init();'").unwrap();
        assert_eq!(
            i.get_str("cmd").unwrap(),
            "exec('src/loader.sce');MPI_Init();"
        );
    }

    #[test]
    fn while_loop_with_break() {
        let src = "n = 0\nwhile %t then\n n = n + 1\n if n == 5 then break end\nend";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "n"), 5.0);
    }

    #[test]
    fn for_over_range() {
        let i = run_script("s = 0\nfor k = 1:10 do\n s = s + k\nend").unwrap();
        assert_eq!(scalar(&i, "s"), 55.0);
    }

    #[test]
    fn for_over_list_elements() {
        let src = "L = list(10, 20, 30)\ns = 0\nfor x = L do\n s = s + x\nend";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "s"), 60.0);
    }

    #[test]
    fn list_indexing_and_deletion() {
        let src = "L = list(1, 2, 3, 4, 5)\na = L(2)\nL(1:2) = []\nb = L(1)\nn = size(L, '*')";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "a"), 2.0);
        assert_eq!(scalar(&i, "b"), 3.0);
        assert_eq!(scalar(&i, "n"), 3.0);
    }

    #[test]
    fn nested_list_index_like_fig4() {
        // L(1)(3) — the slave result access pattern.
        let src = "L = list(list('Price', 0.1, 42.5))\np = L(1)(3)";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "p"), 42.5);
    }

    #[test]
    fn hash_field_auto_create_like_fig2() {
        let src = "H.A = rand(4,5)\nH.B = rand(4,1)\nn = size(H.A, '*')";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "n"), 20.0);
    }

    #[test]
    fn functions_with_multiple_outputs() {
        let src = r#"
function [sl, result] = receive_res(x)
  sl = x + 1
  result = x * 2
endfunction
[a, b] = receive_res(10)
"#;
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "a"), 11.0);
        assert_eq!(scalar(&i, "b"), 20.0);
    }

    #[test]
    fn function_scoping_is_local() {
        let src = r#"
x = 100
function y = f(a)
  x = 5
  y = a + x
endfunction
r = f(1)
"#;
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "r"), 6.0);
        assert_eq!(scalar(&i, "x"), 100.0, "global x must be untouched");
    }

    #[test]
    fn serialize_unserialize_round_trip() {
        let src = r#"
A = list('string', %t, rand(4,4))
S = serialize(A)
B = S.unserialize[]
ok = B.equal[A]
"#;
        let i = run_script(src).unwrap();
        assert_eq!(i.get_bool("ok"), Some(true));
    }

    #[test]
    fn compress_round_trip_like_paper() {
        let src = r#"
A = 1:100
S = serialize(A)
S1 = S.compress[]
A1 = S1.unserialize[]
ok = A1.equal[A]
"#;
        let i = run_script(src).unwrap();
        assert_eq!(i.get_bool("ok"), Some(true));
        // And compression shrinks the serial, as in Fig. 2's
        // 842 → 248 bytes example.
        let s = i.get_value("S").unwrap();
        let s1 = i.get_value("S1").unwrap();
        assert!(s1.as_serial().unwrap().len() < s.as_serial().unwrap().len());
    }

    #[test]
    fn save_sload_unserialize_like_fig2() {
        let dir = std::env::temp_dir().join("nsplang_sload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved.bin");
        let src = format!(
            r#"
H.A = rand(4,5)
H.B = rand(4,1)
save('{p}', H)
S = sload('{p}')
H1 = S.unserialize[]
ok = H1.equal[H]
"#,
            p = path.display()
        );
        let i = run_script(&src).unwrap();
        assert_eq!(i.get_bool("ok"), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn premia_workflow_like_section_3_3() {
        let src = r#"
P = premia_create()
P.set_asset[str="equity"]
P.set_model[str="BlackScholes1dim"]
P.set_option[str="CallEuro"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
"#;
        let i = run_script(src).unwrap();
        let price = scalar(&i, "price");
        assert!((price - 10.4506).abs() < 1e-3, "price {price}");
    }

    #[test]
    fn premia_save_load_round_trip() {
        let dir = std::env::temp_dir().join("nsplang_premia_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fic");
        let src = format!(
            r#"
P = premia_create()
P.set_asset[str="equity"]
P.set_model[str="Heston1dim"]
P.set_option[str="PutAmer"]
P.set_method[str="MC_AM_Alfonsi_LongstaffSchwartz"]
save('{p}', P)
Q = load('{p}')
ok = Q.equal[P]
"#,
            p = path.display()
        );
        let i = run_script(&src).unwrap();
        assert_eq!(i.get_bool("ok"), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undefined_variable_is_error() {
        assert!(run_script("y = nosuchvar + 1").is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(run_script("y = frobnicate(1)").is_err());
    }

    #[test]
    fn disp_captures_output() {
        let i = run_script("disp('hello')").unwrap();
        assert_eq!(i.output.len(), 1);
        assert!(i.output[0].contains("hello"));
    }

    #[test]
    fn comparison_chain_in_if() {
        let src = "x = 3\nif x <> 0 then\n y = 1\nelse\n y = 2\nend";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "y"), 1.0);
    }

    #[test]
    fn matrix_literals_and_indexing() {
        let src = "m = [1, 2; 3, 4]\na = m(2, 1)\nb = m(4)";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "a"), 3.0);
        assert_eq!(scalar(&i, "b"), 4.0); // column-major linear index
    }

    #[test]
    fn transpose_of_row_vector() {
        let src = "r = 1:3\nc = r'\n[rows, cols] = size(c)";
        let i = run_script(src).unwrap();
        assert_eq!(scalar(&i, "rows"), 3.0);
        assert_eq!(scalar(&i, "cols"), 1.0);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut a = Interp::new();
        a.reseed(1);
        a.run("x = rand(2,2)").unwrap();
        let mut b = Interp::new();
        b.reseed(1);
        b.run("x = rand(2,2)").unwrap();
        assert_eq!(a.get_value("x"), b.get_value("x"));
    }
}

#[cfg(test)]
mod exec_tests {
    use crate::run_script;

    #[test]
    fn exec_runs_a_script_file() {
        let dir = std::env::temp_dir().join("nsplang_exec");
        std::fs::create_dir_all(&dir).unwrap();
        let lib = dir.join("loader.sce");
        std::fs::write(
            &lib,
            "function y = twice(x)\n y = 2 * x\nendfunction\nbase = 21\n",
        )
        .unwrap();
        let src = format!("exec('{}')\nz = twice(base)", lib.display());
        let i = run_script(&src).unwrap();
        assert_eq!(i.get_scalar("z"), Some(42.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exec_missing_file_is_error() {
        assert!(run_script("exec('/no/such/file.sce')").is_err());
    }
}
