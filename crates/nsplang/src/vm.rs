//! The register bytecode VM.
//!
//! [`run_vm`] parses and lowers a script ([`crate::lower`]) and executes the
//! resulting [`Chunk`] on a flat register frame. Semantics are shared with
//! the tree-walker by construction: both engines call the same value helpers
//! (`binary_value`, `index_value`, …), builtin table, method dispatch, and
//! RNG, so variable bindings, draw sequences, and error messages are
//! bit-identical (asserted by `tests/nsp_scripts.rs`).
//!
//! Registers hold an [`RVal`]: either a boxed [`NValue`] or an **unboxed**
//! scalar (`f64` / `bool`). Every nspval scalar is a heap-allocated 1×1
//! matrix, so the tree-walker pays one allocation per arithmetic node; the
//! VM keeps scalars as immediates and materialises the 1×1 matrix only at
//! engine boundaries (calls, indexing, scope flush). Materialisation is
//! loss-free — `RVal::F(x)` round-trips to exactly `NValue::scalar(x)` —
//! so unboxing is invisible to scripts and to the equivalence battery.
//!
//! Hot-path discipline: the dispatch loop below (bracketed by `HASH-FREE`
//! markers, grep-gated by `scripts/ci.sh`) touches only `Vec`-indexed state — registers, constants, interned names.
//! Name hashing survives only on cold paths (dynamic-scope fallback, call
//! setup), mirroring the ALLOC-FREE markers of the SIMD pricing kernels.

use crate::ast::{BinOp, UnOp};
use crate::interp::{
    binary_value, build_matrix, builtin_id, builtin_name, field_value, for_items_of,
    index_assign_value, index_value, range_value, transpose_value, unary_value, Interp, NValue,
    NspError, BUILTIN_EXEC,
};
use crate::lower::{lower_function, lower_program, lower_seeded};
use crate::opcodes::{Chunk, Op, Proto, Reg, NO_REG, NO_TABLE};
use crate::parser::parse_program;
use nspval::{Hash, Value};
use std::rc::Rc;

type R<T> = Result<T, NspError>;

fn err<T>(msg: impl Into<String>) -> R<T> {
    Err(NspError::new(msg))
}

/// A register value: a boxed [`NValue`] or an unboxed scalar immediate.
///
/// The scalar variants carry exactly the information of a 1×1 real/bool
/// matrix, so converting back ([`RVal::nv`]) reconstructs a bit-identical
/// [`NValue`]; the dispatch loop's scalar fast paths replicate the scalar
/// arms of `binary_value`/`unary_value`/`truthy` (same results, same error
/// strings) without touching the allocator.
#[derive(Debug, Clone)]
enum RVal {
    /// A boxed value (matrices, strings, lists, objects, …).
    N(NValue),
    /// An unboxed 1×1 real.
    F(f64),
    /// An unboxed 1×1 boolean.
    B(bool),
}

impl RVal {
    /// Box a value, unboxing 1×1 reals/booleans on the way in.
    #[inline]
    fn from_nv(v: NValue) -> RVal {
        match v {
            NValue::V(Value::Real(ref m)) if m.is_scalar() => RVal::F(m.get(0, 0)),
            NValue::V(Value::Bool(ref b)) if b.is_scalar() => RVal::B(b.get(0, 0)),
            v => RVal::N(v),
        }
    }

    /// Materialise into an owned [`NValue`] (loss-free).
    #[inline]
    fn nv(self) -> NValue {
        match self {
            RVal::N(v) => v,
            RVal::F(x) => NValue::scalar(x),
            RVal::B(b) => NValue::boolean(b),
        }
    }

    /// Materialise a clone.
    #[inline]
    fn to_nv(&self) -> NValue {
        match self {
            RVal::N(v) => v.clone(),
            RVal::F(x) => NValue::scalar(*x),
            RVal::B(b) => NValue::boolean(*b),
        }
    }

    /// The scalar-real content, unboxed or boxed.
    #[inline]
    fn as_num(&self) -> Option<f64> {
        match self {
            RVal::F(x) => Some(*x),
            RVal::N(NValue::V(Value::Real(m))) if m.is_scalar() => Some(m.get(0, 0)),
            _ => None,
        }
    }

    /// The scalar-boolean content, unboxed or boxed.
    #[inline]
    fn as_bool(&self) -> Option<bool> {
        match self {
            RVal::B(b) => Some(*b),
            RVal::N(NValue::V(Value::Bool(m))) if m.is_scalar() => Some(m.get(0, 0)),
            _ => None,
        }
    }
}

/// The scalar-real arm of `binary_value` on immediates: identical results
/// and error string to `numeric_binop`'s `is_scalar` path.
#[inline]
fn scalar_bin(op: BinOp, x: f64, y: f64) -> R<RVal> {
    use BinOp::*;
    Ok(match op {
        Add => RVal::F(x + y),
        Sub => RVal::F(x - y),
        Mul => RVal::F(x * y),
        Div => RVal::F(x / y),
        Eq => RVal::B(x == y),
        Ne => RVal::B(x != y),
        Lt => RVal::B(x < y),
        Gt => RVal::B(x > y),
        Le => RVal::B(x <= y),
        Ge => RVal::B(x >= y),
        And | Or => return err("&&/|| need booleans"),
    })
}

/// One execution frame: registers plus the names of the named slots
/// (`None` for temporaries). The name table drives the dynamic-scope
/// fallback and the final flush of top-level bindings into the global scope.
pub(crate) struct Frame {
    regs: Vec<Option<RVal>>,
    names: Vec<Option<Rc<str>>>,
}

impl Frame {
    fn for_chunk(chunk: &Chunk) -> Frame {
        let n = chunk.nregs as usize;
        let mut f = Frame {
            regs: vec![None; n],
            names: vec![None; n],
        };
        f.name_locals(chunk);
        f
    }

    /// Grow an existing frame for an `exec`-lowered chunk.
    fn extend_for(&mut self, chunk: &Chunk) {
        let n = chunk.nregs as usize;
        if n > self.regs.len() {
            self.regs.resize(n, None);
            self.names.resize(n, None);
        }
        self.name_locals(chunk);
    }

    fn name_locals(&mut self, chunk: &Chunk) {
        for &(slot, name) in &chunk.locals {
            self.names[slot as usize] = Some(chunk.names[name as usize].clone());
        }
    }

    /// Find `name` among this frame's bound named slots.
    fn lookup(&self, name: &str) -> Option<NValue> {
        for (i, n) in self.names.iter().enumerate() {
            if let Some(n) = n {
                if &**n == name {
                    if let Some(v) = self.regs[i].as_ref() {
                        return Some(v.to_nv());
                    }
                }
            }
        }
        None
    }
}

/// Parse, lower, and execute a script; top-level bindings are flushed to the
/// interpreter's current scope afterwards (also on error, mirroring the
/// tree-walker's incremental binding).
pub(crate) fn run_vm(interp: &mut Interp, src: &str) -> R<()> {
    let prog = parse_program(src)?;
    let chunk = lower_program(&prog);
    let mut frame = Frame::for_chunk(&chunk);
    let res = run_frame(interp, &chunk, &mut frame, &[]);
    flush_frame(interp, &mut frame);
    res
}

fn flush_frame(interp: &mut Interp, frame: &mut Frame) {
    let scope = interp.scopes.last_mut().expect("at least the global scope");
    for (i, name) in frame.names.iter().enumerate() {
        if let Some(name) = name {
            if let Some(v) = frame.regs[i].take() {
                scope.insert(name.to_string(), v.nv());
            }
        }
    }
}

/// Execute a chunk on a frame. `parents` are the frames of enclosing calls,
/// innermost last (the dynamic scope chain between this frame and the
/// interpreter's global scope).
fn run_frame(interp: &mut Interp, chunk: &Chunk, frame: &mut Frame, parents: &[&Frame]) -> R<()> {
    let ops = &chunk.ops[..];
    let mut pc = 0usize;
    // Active `for` iterators, innermost last (items reversed: pop = next).
    let mut iters: Vec<Vec<NValue>> = Vec::new();
    // HASH-FREE-BEGIN: script dispatch loop. Registers, constants, and
    // jump targets are Vec-indexed; no name lookup happens on these paths,
    // and the scalar fast paths (Bin/Un/JumpIfFalse on RVal immediates)
    // never touch the allocator. Cold helpers (dynamic resolve, calls)
    // live below the end marker.
    while pc < ops.len() {
        let step: R<usize> = match ops[pc] {
            Op::Const { dst, idx } => {
                frame.regs[dst as usize] = Some(load_const(&chunk.consts[idx as usize]));
                Ok(pc + 1)
            }
            Op::Copy { dst, src } => {
                let v = match frame.regs[src as usize] {
                    Some(ref v) => Ok(v.clone()),
                    None => load_slow(interp, frame, parents, frame.names[src as usize].clone())
                        .map(RVal::from_nv),
                };
                v.map(|v| {
                    frame.regs[dst as usize] = Some(v);
                    pc + 1
                })
            }
            Op::Take { dst, src } => {
                frame.regs[dst as usize] = frame.regs[src as usize].take();
                Ok(pc + 1)
            }
            Op::LoadDyn { dst, name } => {
                load_slow(interp, frame, parents, Some(chunk.names[name as usize].clone())).map(
                    |v| {
                        frame.regs[dst as usize] = Some(RVal::from_nv(v));
                        pc + 1
                    },
                )
            }
            Op::IdentMulti {
                dst,
                slot,
                name,
                want,
            } => ident_multi(interp, chunk, frame, parents, dst, slot, name, want)
                .map(|_| pc + 1),
            Op::Bin { op, dst, a, b } => {
                // Scalar fast path: both operands are immediates (or boxed
                // 1×1s) — pure register arithmetic, no allocation.
                let fast = match (&frame.regs[a as usize], &frame.regs[b as usize]) {
                    (Some(x), Some(y)) => match (x.as_num(), y.as_num()) {
                        (Some(x), Some(y)) => Some(scalar_bin(op, x, y)),
                        _ => match (x.as_bool(), y.as_bool()) {
                            (Some(x), Some(y))
                                if matches!(
                                    op,
                                    BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne
                                ) =>
                            {
                                Some(Ok(RVal::B(match op {
                                    BinOp::And => x && y,
                                    BinOp::Or => x || y,
                                    BinOp::Eq => x == y,
                                    _ => x != y,
                                })))
                            }
                            _ => None,
                        },
                    },
                    _ => None,
                };
                let res = match fast {
                    Some(r) => r,
                    None => {
                        let va = take_nv(frame, a);
                        let vb = take_nv(frame, b);
                        binary_value(op, &va, &vb).map(RVal::from_nv)
                    }
                };
                res.map(|v| {
                    frame.regs[dst as usize] = Some(v);
                    pc + 1
                })
            }
            Op::Un { op, dst, src } => {
                let fast = frame.regs[src as usize].as_ref().and_then(|v| match op {
                    UnOp::Neg => v.as_num().map(|x| RVal::F(-x)),
                    UnOp::Not => v.as_bool().map(|b| RVal::B(!b)),
                });
                let res = match fast {
                    Some(v) => Ok(v),
                    None => {
                        let v = take_nv(frame, src);
                        unary_value(op, &v).map(RVal::from_nv)
                    }
                };
                res.map(|v| {
                    frame.regs[dst as usize] = Some(v);
                    pc + 1
                })
            }
            Op::Range { dst, lo, hi, step } => {
                let vlo = take_nv(frame, lo);
                let vhi = take_nv(frame, hi);
                let vstep = if step == NO_REG {
                    None
                } else {
                    Some(take_nv(frame, step))
                };
                range_value(&vlo, &vhi, vstep.as_ref()).map(|v| {
                    frame.regs[dst as usize] = Some(RVal::N(v));
                    pc + 1
                })
            }
            Op::Matrix { dst, shape, base } => {
                let mut rows = Vec::with_capacity(chunk.shapes[shape as usize].len());
                let mut at = base;
                for &width in &chunk.shapes[shape as usize] {
                    let mut row = Vec::with_capacity(width as usize);
                    for _ in 0..width {
                        row.push(take_nv(frame, at));
                        at += 1;
                    }
                    rows.push(row);
                }
                build_matrix(&rows).map(|v| {
                    frame.regs[dst as usize] = Some(RVal::from_nv(v));
                    pc + 1
                })
            }
            Op::Transpose { dst, src } => {
                let v = take_nv(frame, src);
                transpose_value(&v).map(|v| {
                    frame.regs[dst as usize] = Some(RVal::from_nv(v));
                    pc + 1
                })
            }
            Op::Index { dst, base, idx, n } => {
                let b = take_nv(frame, base);
                let mut iv = Vec::with_capacity(n as usize);
                for i in 0..n {
                    iv.push(take_nv(frame, idx + i));
                }
                index_value(&b, &iv).map(|v| {
                    frame.regs[dst as usize] = Some(RVal::from_nv(v));
                    pc + 1
                })
            }
            Op::Field { dst, base, name } => {
                let b = take_nv(frame, base);
                field_value(&b, &chunk.names[name as usize]).map(|v| {
                    frame.regs[dst as usize] = Some(RVal::from_nv(v));
                    pc + 1
                })
            }
            Op::Apply {
                dst,
                name,
                slot,
                builtin,
                base,
                argc,
                kwt,
                want,
            } => apply_op(
                interp, chunk, frame, parents, dst, name, slot, builtin, base, argc, kwt, want,
            )
            .map(|_| pc + 1),
            Op::Method {
                dst,
                name,
                obj,
                base,
                argc,
                kwt,
                want,
                wb,
            } => method_op(
                interp, chunk, frame, dst, name, obj, base, argc, kwt, want, wb,
            )
            .map(|_| pc + 1),
            Op::IndexAsg {
                slot,
                name,
                idx,
                n,
                src,
            } => index_asg(interp, chunk, frame, parents, slot, name, idx, n, src)
                .map(|_| pc + 1),
            Op::FieldAsg {
                slot,
                name,
                field,
                src,
            } => field_asg(interp, chunk, frame, parents, slot, name, field, src)
                .map(|_| pc + 1),
            Op::DefFunc { def } => {
                def_func(interp, chunk, def);
                Ok(pc + 1)
            }
            Op::Jump { to } => Ok(to as usize),
            Op::JumpIfFalse { cond, to } => {
                // Scalar conditions branch on the immediate; `truthy` on a
                // 1×1 real is `x != 0.0`, on a 1×1 bool the bool itself.
                match frame.regs[cond as usize] {
                    Some(RVal::B(b)) => Ok(if b { pc + 1 } else { to as usize }),
                    Some(RVal::F(x)) => Ok(if x != 0.0 { pc + 1 } else { to as usize }),
                    _ => {
                        let c = take_nv(frame, cond);
                        c.truthy()
                            .map(|t| if t { pc + 1 } else { to as usize })
                    }
                }
            }
            Op::ForPrep { iter } => {
                let v = take_nv(frame, iter);
                for_items_of(v).map(|mut items| {
                    items.reverse();
                    iters.push(items);
                    pc + 1
                })
            }
            Op::ForNext { var, end } => {
                let it = iters.last_mut().expect("ForNext inside a loop");
                match it.pop() {
                    Some(item) => {
                        frame.regs[var as usize] = Some(RVal::from_nv(item));
                        Ok(pc + 1)
                    }
                    None => {
                        iters.pop();
                        Ok(end as usize)
                    }
                }
            }
            Op::ExitLoop { drop, to } => {
                for _ in 0..drop {
                    iters.pop();
                }
                Ok(to as usize)
            }
            Op::Trap { msg } => err(chunk.msgs[msg as usize].clone()),
        };
        match step {
            Ok(next) => pc = next,
            Err(e) => return Err(e.with_span(chunk.spans[pc])),
        }
    }
    // HASH-FREE-END
    Ok(())
}

/// Load a constant, unboxing scalar literals so hot loops never clone a
/// heap matrix for `1` or `0.0`.
#[inline]
fn load_const(c: &NValue) -> RVal {
    match c {
        NValue::V(Value::Real(m)) if m.is_scalar() => RVal::F(m.get(0, 0)),
        NValue::V(Value::Bool(b)) if b.is_scalar() => RVal::B(b.get(0, 0)),
        c => RVal::N(c.clone()),
    }
}

/// Take a bound operand register and materialise it (temporaries are always
/// written by a preceding op before being consumed).
#[inline]
fn take_nv(frame: &mut Frame, r: Reg) -> NValue {
    frame.regs[r as usize]
        .take()
        .expect("operand register bound")
        .nv()
}

// ---- dynamic resolution (cold paths) ----------------------------------------

/// Variable-only resolution through the dynamic scope chain: this frame's
/// named slots, enclosing frames (innermost first), then interpreter scopes.
fn resolve_var(interp: &Interp, frame: &Frame, parents: &[&Frame], name: &str) -> Option<NValue> {
    if let Some(v) = frame.lookup(name) {
        return Some(v);
    }
    for p in parents.iter().rev() {
        if let Some(v) = p.lookup(name) {
            return Some(v);
        }
    }
    interp.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
}

/// Full identifier resolution for reads: variable, else zero-argument call
/// (user function, then builtin), else "undefined variable" — the same
/// order as the tree-walker's `Expr::Ident` evaluation.
fn resolve_ident(
    interp: &mut Interp,
    frame: &Frame,
    parents: &[&Frame],
    name: &str,
    want: usize,
) -> R<Vec<NValue>> {
    if let Some(v) = resolve_var(interp, frame, parents, name) {
        return Ok(vec![v]);
    }
    if let Some(f) = interp.funcs.get(name).cloned() {
        return call_user(interp, frame, parents, &f, Vec::new(), want);
    }
    if builtin_id(name).is_some() {
        return interp.call_builtin(name, Vec::new(), Vec::new(), want);
    }
    err(format!("undefined variable {name}"))
}

fn load_slow(
    interp: &mut Interp,
    frame: &Frame,
    parents: &[&Frame],
    name: Option<Rc<str>>,
) -> R<NValue> {
    let name = name.expect("unbound register read is a named slot");
    let mut res = resolve_ident(interp, frame, parents, &name, 1)?;
    Ok(res.remove(0))
}

// ---- calls ------------------------------------------------------------------

fn gather_args(
    chunk: &Chunk,
    frame: &mut Frame,
    base: Reg,
    argc: u16,
    kwt: u16,
) -> (Vec<NValue>, Vec<(String, NValue)>) {
    let mut pos = Vec::with_capacity(argc as usize);
    let mut kw = Vec::new();
    if kwt == NO_TABLE {
        for i in 0..argc {
            pos.push(take_nv(frame, base + i));
        }
    } else {
        let table = &chunk.kw_tables[kwt as usize];
        for i in 0..argc {
            let v = take_nv(frame, base + i);
            match table.iter().find(|(p, _)| *p == i) {
                Some((_, nid)) => kw.push((chunk.names[*nid as usize].to_string(), v)),
                None => pos.push(v),
            }
        }
    }
    (pos, kw)
}

/// Write a call's results to `dst..dst+want`, enforcing the multi-assignment
/// arity error with the tree-walker's exact message.
fn write_results(frame: &mut Frame, dst: Reg, want: u16, results: Vec<NValue>) -> R<()> {
    if results.len() < want as usize {
        return err(format!(
            "expected {} return values, got {}",
            want,
            results.len()
        ));
    }
    for (i, v) in results.into_iter().take(want as usize).enumerate() {
        frame.regs[dst as usize + i] = Some(RVal::from_nv(v));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_op(
    interp: &mut Interp,
    chunk: &Chunk,
    frame: &mut Frame,
    parents: &[&Frame],
    dst: Reg,
    name: u32,
    slot: Reg,
    builtin: u16,
    base: Reg,
    argc: u16,
    kwt: u16,
    want: u16,
) -> R<()> {
    let (pos, kw) = gather_args(chunk, frame, base, argc, kwt);
    // Runtime var-vs-call split, like the tree-walker's `Expr::Apply`.
    // A bound slot indexes in place — no clone of the container, matching
    // the tree-walker's by-reference `index_value(base, &idx)`.
    if slot != NO_REG && frame.regs[slot as usize].is_some() {
        if !kw.is_empty() {
            return err("unexpected keyword argument");
        }
        let res = {
            let rv = frame.regs[slot as usize].as_ref().expect("checked above");
            match rv {
                RVal::N(v) => index_value(v, &pos)?,
                imm => index_value(&imm.to_nv(), &pos)?,
            }
        };
        return write_results(frame, dst, want, vec![res]);
    }
    let nm = chunk.names[name as usize].clone();
    let var = resolve_var(interp, frame, parents, &nm);
    if let Some(v) = var {
        if !kw.is_empty() {
            return err("unexpected keyword argument");
        }
        let res = index_value(&v, &pos)?;
        return write_results(frame, dst, want, vec![res]);
    }
    let results = call_by_name(interp, frame, parents, &nm, builtin, pos, kw, want as usize)?;
    write_results(frame, dst, want, results)
}

#[allow(clippy::too_many_arguments)]
fn call_by_name(
    interp: &mut Interp,
    frame: &mut Frame,
    parents: &[&Frame],
    name: &str,
    builtin: u16,
    pos: Vec<NValue>,
    kw: Vec<(String, NValue)>,
    want: usize,
) -> R<Vec<NValue>> {
    if let Some(f) = interp.funcs.get(name).cloned() {
        return call_user(interp, frame, parents, &f, pos, want);
    }
    if builtin == BUILTIN_EXEC {
        return exec_in_frame(interp, frame, parents, pos);
    }
    if builtin != NO_TABLE {
        return interp.call_builtin(builtin_name(builtin), pos, kw, want);
    }
    // Not a builtin: shares the tree-walker's "unknown function" arm.
    interp.call_builtin(name, pos, kw, want)
}

/// Compiled-function cache: keyed by name, revalidated against the live
/// `funcs` binding by `Rc` identity so redefinition recompiles.
fn proto_for(interp: &mut Interp, f: &Rc<crate::ast::FuncDef>) -> Rc<Proto> {
    if let Some((def, proto)) = interp.vm_protos.get(&f.name) {
        if Rc::ptr_eq(def, f) {
            return proto.clone();
        }
    }
    let proto = Rc::new(lower_function(f));
    interp
        .vm_protos
        .insert(f.name.clone(), (f.clone(), proto.clone()));
    proto
}

fn call_user(
    interp: &mut Interp,
    frame: &Frame,
    parents: &[&Frame],
    f: &Rc<crate::ast::FuncDef>,
    args: Vec<NValue>,
    want: usize,
) -> R<Vec<NValue>> {
    if args.len() > f.params.len() {
        return err(format!(
            "{} takes {} arguments, got {}",
            f.name,
            f.params.len(),
            args.len()
        ));
    }
    let proto = proto_for(interp, f);
    let mut child = Frame::for_chunk(&proto.chunk);
    for (i, a) in args.into_iter().enumerate() {
        child.regs[proto.param_slots[i] as usize] = Some(RVal::from_nv(a));
    }
    {
        let mut np: Vec<&Frame> = Vec::with_capacity(parents.len() + 1);
        np.extend_from_slice(parents);
        np.push(frame);
        run_frame(interp, &proto.chunk, &mut child, &np)?;
    }
    let mut outs = Vec::new();
    let n_out = want.max(1).min(f.outs.len().max(1));
    for (k, o) in f.outs.iter().take(n_out).enumerate() {
        match child.regs[proto.out_slots[k] as usize].take() {
            Some(v) => outs.push(v.nv()),
            None => return err(format!("function {} did not set output {o}", f.name)),
        }
    }
    if outs.is_empty() {
        outs.push(NValue::V(Value::None));
    }
    Ok(outs)
}

/// The `exec` builtin on the VM engine: lower the file's program *into the
/// current frame* (seeded with its named slots) and run it there, so the
/// script binds variables in the caller's scope exactly like the
/// tree-walker's `self.run` on the current scope stack.
fn exec_in_frame(
    interp: &mut Interp,
    frame: &mut Frame,
    parents: &[&Frame],
    pos: Vec<NValue>,
) -> R<Vec<NValue>> {
    let path = pos[0]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| NspError::new("exec path must be a string"))?;
    let src = std::fs::read_to_string(&path)
        .map_err(|e| NspError::new(format!("exec {path}: {e}")))?;
    let prog = parse_program(&src)?;
    let seeds: Vec<(Rc<str>, Reg)> = frame
        .names
        .iter()
        .enumerate()
        .filter_map(|(i, n)| n.clone().map(|n| (n, i as Reg)))
        .collect();
    let chunk = lower_seeded(&prog, &seeds, frame.regs.len() as Reg);
    frame.extend_for(&chunk);
    run_frame(interp, &chunk, frame, parents)?;
    Ok(vec![NValue::V(Value::None)])
}

#[allow(clippy::too_many_arguments)]
fn method_op(
    interp: &mut Interp,
    chunk: &Chunk,
    frame: &mut Frame,
    dst: Reg,
    name: u32,
    obj: Reg,
    base: Reg,
    argc: u16,
    kwt: u16,
    want: u16,
    wb: Reg,
) -> R<()> {
    let b = take_nv(frame, obj);
    let (pos, kw) = gather_args(chunk, frame, base, argc, kwt);
    let nm = chunk.names[name as usize].clone();
    let results = interp.method(b, &nm, pos, kw)?;
    if wb != NO_REG {
        // Value-semantics mutators (add_last) write back to the receiver.
        frame.regs[wb as usize] = Some(RVal::from_nv(results[0].clone()));
    }
    write_results(frame, dst, want, results)
}

#[allow(clippy::too_many_arguments)]
fn ident_multi(
    interp: &mut Interp,
    chunk: &Chunk,
    frame: &mut Frame,
    parents: &[&Frame],
    dst: Reg,
    slot: Reg,
    name: u32,
    want: u16,
) -> R<()> {
    let nm = chunk.names[name as usize].clone();
    let results = match slot {
        s if s != NO_REG && frame.regs[s as usize].is_some() => {
            vec![frame.regs[s as usize]
                .as_ref()
                .expect("checked above")
                .to_nv()]
        }
        _ => resolve_ident(interp, frame, parents, &nm, want as usize)?,
    };
    write_results(frame, dst, want, results)
}

#[allow(clippy::too_many_arguments)]
fn index_asg(
    interp: &mut Interp,
    chunk: &Chunk,
    frame: &mut Frame,
    parents: &[&Frame],
    slot: Reg,
    name: u32,
    idx: Reg,
    n: u16,
    src: Reg,
) -> R<()> {
    let mut iv = Vec::with_capacity(n as usize);
    for i in 0..n {
        iv.push(take_nv(frame, idx + i));
    }
    let nm = chunk.names[name as usize].clone();
    let current = match frame.regs[slot as usize] {
        Some(ref v) => v.to_nv(),
        None => resolve_var(interp, frame, parents, &nm)
            .ok_or_else(|| NspError::new(format!("undefined variable {nm}")))?,
    };
    let v = take_nv(frame, src);
    let updated = index_assign_value(current, &iv, v)?;
    frame.regs[slot as usize] = Some(RVal::from_nv(updated));
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn field_asg(
    interp: &mut Interp,
    chunk: &Chunk,
    frame: &mut Frame,
    parents: &[&Frame],
    slot: Reg,
    name: u32,
    field: u32,
    src: Reg,
) -> R<()> {
    let nm = chunk.names[name as usize].clone();
    let current = match frame.regs[slot as usize] {
        Some(ref v) => Some(v.to_nv()),
        None => resolve_var(interp, frame, parents, &nm),
    };
    let mut hash = match current {
        Some(NValue::V(Value::Hash(h))) => h,
        None => Hash::new(), // auto-create, like Nsp's H.A = ...
        Some(other) => {
            return err(format!("cannot set field on {}", other.type_name()));
        }
    };
    let v = take_nv(frame, src);
    hash.set(&chunk.names[field as usize], v.to_value()?);
    frame.regs[slot as usize] = Some(RVal::N(NValue::V(Value::Hash(hash))));
    Ok(())
}

fn def_func(interp: &mut Interp, chunk: &Chunk, def: u16) {
    let f = chunk.defs[def as usize].clone();
    interp.funcs.insert(f.name.clone(), f);
}
