//! Recursive-descent / Pratt parser for the mini-Nsp language.

use crate::ast::{Arg, BinOp, Expr, FuncDef, Spanned, Stmt, Target, UnOp};
use crate::lexer::{lex, LexError, Pos, Tok};

/// Parse error with a 1-based `line:col` position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Source position of the offending token.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: format!("lex error: {}", e.message),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> Pos {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, p)| *p)
            .unwrap_or(Pos::NONE)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.here(),
            message: msg.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {:?}", self.peek())))
        }
    }

    fn skip_separators(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline) | Some(Tok::Semi)) {
            self.pos += 1;
        }
    }

    /// Skip newlines only (inside parenthesised constructs).
    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline)) {
            self.pos += 1;
        }
    }

    // ---- statements --------------------------------------------------------

    fn parse_block(&mut self, terminators: &[Tok]) -> Result<Vec<Spanned>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_separators();
            match self.peek() {
                None => break,
                Some(t) if terminators.contains(t) => break,
                _ => stmts.push(self.parse_stmt()?),
            }
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Spanned, ParseError> {
        let pos = self.here();
        let kind = self.parse_stmt_kind()?;
        Ok(Spanned { pos, kind })
    }

    fn parse_stmt_kind(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::If) => self.parse_if(),
            Some(Tok::While) => self.parse_while(),
            Some(Tok::For) => self.parse_for(),
            Some(Tok::Break) => {
                self.next();
                Ok(Stmt::Break)
            }
            Some(Tok::Continue) => {
                self.next();
                Ok(Stmt::Continue)
            }
            Some(Tok::Return) => {
                self.next();
                Ok(Stmt::Return)
            }
            Some(Tok::Function) => self.parse_function(),
            Some(Tok::LBracket) => self.parse_multi_assign_or_expr(),
            _ => self.parse_assign_or_expr(),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::If)?;
        let mut arms = Vec::new();
        let cond = self.parse_expr()?;
        self.eat(&Tok::Then);
        let body = self.parse_block(&[Tok::Else, Tok::Elseif, Tok::End])?;
        arms.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            if self.eat(&Tok::Elseif) {
                let c = self.parse_expr()?;
                self.eat(&Tok::Then);
                let b = self.parse_block(&[Tok::Else, Tok::Elseif, Tok::End])?;
                arms.push((c, b));
            } else if self.eat(&Tok::Else) {
                else_body = self.parse_block(&[Tok::End])?;
                self.expect(&Tok::End)?;
                break;
            } else {
                self.expect(&Tok::End)?;
                break;
            }
        }
        Ok(Stmt::If { arms, else_body })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::While)?;
        let cond = self.parse_expr()?;
        // Nsp accepts both `while c then` and `while c do`.
        let _ = self.eat(&Tok::Then) || self.eat(&Tok::Do);
        let body = self.parse_block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok(Stmt::While { cond, body })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::For)?;
        let var = match self.next() {
            Some(Tok::Ident(name)) => name,
            other => return Err(self.err(format!("expected loop variable, found {other:?}"))),
        };
        self.expect(&Tok::Assign)?;
        let iter = self.parse_expr()?;
        let _ = self.eat(&Tok::Do) || self.eat(&Tok::Then);
        let body = self.parse_block(&[Tok::End])?;
        self.expect(&Tok::End)?;
        Ok(Stmt::For { var, iter, body })
    }

    fn parse_function(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::Function)?;
        // Forms: function [a,b] = name(params) | function a = name(params)
        //        | function name(params)
        let mut outs = Vec::new();
        let name;
        if self.eat(&Tok::LBracket) {
            loop {
                match self.next() {
                    Some(Tok::Ident(o)) => outs.push(o),
                    Some(Tok::RBracket) => break,
                    Some(Tok::Comma) => {}
                    other => return Err(self.err(format!("bad function outputs: {other:?}"))),
                }
            }
            if !self.eat(&Tok::RBracket) && outs.is_empty() {
                return Err(self.err("empty function output list"));
            }
            self.expect(&Tok::Assign)?;
            name = match self.next() {
                Some(Tok::Ident(n)) => n,
                other => return Err(self.err(format!("expected function name: {other:?}"))),
            };
        } else {
            let first = match self.next() {
                Some(Tok::Ident(n)) => n,
                other => return Err(self.err(format!("expected function name: {other:?}"))),
            };
            if self.eat(&Tok::Assign) {
                outs.push(first);
                name = match self.next() {
                    Some(Tok::Ident(n)) => n,
                    other => return Err(self.err(format!("expected function name: {other:?}"))),
                };
            } else {
                name = first;
            }
        }
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                self.skip_newlines();
                match self.next() {
                    Some(Tok::Ident(p)) => params.push(p),
                    Some(Tok::RParen) => break,
                    Some(Tok::Comma) => {}
                    other => return Err(self.err(format!("bad parameter list: {other:?}"))),
                }
            }
        }
        let body = self.parse_block(&[Tok::EndFunction])?;
        self.expect(&Tok::EndFunction)?;
        Ok(Stmt::FuncDef(FuncDef {
            name,
            params,
            outs,
            body,
        }))
    }

    /// `[a, b] = f(...)` multi-assignment — or a matrix-literal expression
    /// statement (rare but legal).
    fn parse_multi_assign_or_expr(&mut self) -> Result<Stmt, ParseError> {
        let save = self.pos;
        // Try multi-assign: [ident, ident, ...] = expr
        self.expect(&Tok::LBracket)?;
        let mut targets = Vec::new();
        let mut ok = true;
        loop {
            match self.next() {
                Some(Tok::Ident(n)) => {
                    targets.push(Target::Ident(n));
                    match self.next() {
                        Some(Tok::Comma) => {}
                        Some(Tok::RBracket) => break,
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                Some(Tok::RBracket) => break,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && self.eat(&Tok::Assign) && !targets.is_empty() {
            let rhs = self.parse_expr()?;
            return Ok(Stmt::Assign(targets, rhs));
        }
        // Not a multi-assign — reparse as expression.
        self.pos = save;
        let e = self.parse_expr()?;
        Ok(Stmt::Expr(e))
    }

    fn parse_assign_or_expr(&mut self) -> Result<Stmt, ParseError> {
        let save = self.pos;
        let expr = self.parse_expr()?;
        if self.eat(&Tok::Assign) {
            // Convert the parsed expression into an assignment target.
            let target =
                expr_to_target(&expr).ok_or_else(|| self.err("invalid assignment target"))?;
            let rhs = self.parse_expr()?;
            return Ok(Stmt::Assign(vec![target], rhs));
        }
        let _ = save;
        Ok(Stmt::Expr(expr))
    }

    // ---- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Tok::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_comparison()?;
        while self.eat(&Tok::And) {
            let rhs = self.parse_comparison()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_range()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.parse_range()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_range(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        if self.eat(&Tok::Colon) {
            let mid = self.parse_additive()?;
            if self.eat(&Tok::Colon) {
                let hi = self.parse_additive()?;
                return Ok(Expr::Range(
                    Box::new(lhs),
                    Some(Box::new(mid)),
                    Box::new(hi),
                ));
            }
            return Ok(Expr::Range(Box::new(lhs), None, Box::new(mid)));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Not) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Tok::LParen) => {
                    self.next();
                    let args = self.parse_args(&Tok::RParen)?;
                    e = Expr::Apply(Box::new(e), args);
                }
                Some(Tok::Dot) => {
                    self.next();
                    let name = match self.next() {
                        Some(Tok::Ident(n)) => n,
                        other => {
                            return Err(self.err(format!("expected field name, got {other:?}")))
                        }
                    };
                    if self.eat(&Tok::LBracket) {
                        let args = self.parse_args(&Tok::RBracket)?;
                        e = Expr::MethodCall(Box::new(e), name, args);
                    } else {
                        e = Expr::Field(Box::new(e), name);
                    }
                }
                Some(Tok::Quote) => {
                    self.next();
                    e = Expr::Transpose(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self, close: &Tok) -> Result<Vec<Arg>, ParseError> {
        let mut args = Vec::new();
        self.skip_newlines();
        if self.eat(close) {
            return Ok(args);
        }
        loop {
            self.skip_newlines();
            // Keyword argument: ident = expr (lookahead).
            if let (Some(Tok::Ident(name)), Some(Tok::Assign)) = (
                self.toks.get(self.pos).map(|(t, _)| t.clone()).as_ref(),
                self.toks.get(self.pos + 1).map(|(t, _)| t),
            ) {
                let name = name.clone();
                self.pos += 2;
                let v = self.parse_expr()?;
                args.push(Arg::Kw(name, v));
            } else {
                args.push(Arg::Pos(self.parse_expr()?));
            }
            self.skip_newlines();
            if self.eat(&Tok::Comma) {
                continue;
            }
            self.expect(close)?;
            break;
        }
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::True) => Ok(Expr::Bool(true)),
            Some(Tok::False) => Ok(Expr::Bool(false)),
            Some(Tok::Ident(n)) => Ok(Expr::Ident(n)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                // Matrix literal: rows separated by ; or newline, entries
                // by ,.
                let mut rows: Vec<Vec<Expr>> = Vec::new();
                let mut row: Vec<Expr> = Vec::new();
                loop {
                    match self.peek() {
                        Some(Tok::RBracket) => {
                            self.next();
                            break;
                        }
                        Some(Tok::Semi) | Some(Tok::Newline) => {
                            self.next();
                            if !row.is_empty() {
                                rows.push(std::mem::take(&mut row));
                            }
                        }
                        Some(Tok::Comma) => {
                            self.next();
                        }
                        None => return Err(self.err("unterminated matrix literal")),
                        _ => row.push(self.parse_expr()?),
                    }
                }
                if !row.is_empty() {
                    rows.push(row);
                }
                Ok(Expr::Matrix(rows))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

/// Convert an already-parsed expression into an assignment target.
fn expr_to_target(e: &Expr) -> Option<Target> {
    match e {
        Expr::Ident(n) => Some(Target::Ident(n.clone())),
        Expr::Apply(inner, args) => match inner.as_ref() {
            Expr::Ident(n) => Some(Target::Index(n.clone(), args.clone())),
            _ => None,
        },
        Expr::Field(inner, name) => {
            let base = expr_to_target(inner)?;
            Some(Target::Field(Box::new(base), name.clone()))
        }
        _ => None,
    }
}

/// Parse a full program into position-annotated statements.
pub fn parse_program(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let stmts = p.parse_block(&[])?;
    if p.pos < p.toks.len() {
        return Err(p.err(format!("trailing input: {:?}", p.peek())));
    }
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_assignment() {
        let prog = parse_program("x = 1 + 2 * 3").unwrap();
        assert_eq!(prog.len(), 1);
        match &prog[0].kind {
            Stmt::Assign(targets, Expr::Binary(BinOp::Add, _, _)) => {
                assert_eq!(targets, &vec![Target::Ident("x".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_assignment() {
        let prog = parse_program("[a, b] = f(1)").unwrap();
        match &prog[0].kind {
            Stmt::Assign(targets, Expr::Apply(_, _)) => assert_eq!(targets.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn indexed_assignment_like_fig4() {
        let prog = parse_program("Lpb(1:k-1) = []").unwrap();
        match &prog[0].kind {
            Stmt::Assign(targets, Expr::Matrix(rows)) => {
                assert!(rows.is_empty());
                assert!(matches!(targets[0], Target::Index(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn field_assignment() {
        let prog = parse_program("H.A = rand(4,5)").unwrap();
        match &prog[0].kind {
            Stmt::Assign(targets, _) => {
                assert!(matches!(targets[0], Target::Field(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_call_with_kwargs() {
        let prog = parse_program("P.set_asset[str=\"equity\"]").unwrap();
        match &prog[0].kind {
            Stmt::Expr(Expr::MethodCall(_, name, args)) => {
                assert_eq!(name, "set_asset");
                assert!(
                    matches!(&args[0], Arg::Kw(k, Expr::Str(v)) if k == "str" && v == "equity")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elseif_else() {
        let src = "if a == 1 then\n x=1\nelseif a == 2 then\n x=2\nelse\n x=3\nend";
        let prog = parse_program(src).unwrap();
        match &prog[0].kind {
            Stmt::If { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_true_break() {
        let src = "while %t then\n  break\nend";
        let prog = parse_program(src).unwrap();
        match &prog[0].kind {
            Stmt::While { body, .. } => assert_eq!(body[0].kind, Stmt::Break),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_over_transposed_slice() {
        let src = "for pb = Lpb(1:n)' do\n  x = pb\nend";
        let prog = parse_program(src).unwrap();
        match &prog[0].kind {
            Stmt::For { var, iter, .. } => {
                assert_eq!(var, "pb");
                assert!(matches!(iter, Expr::Transpose(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_definition() {
        let src = "function [sl, result] = receive_res ()\n sl = 1\n result = 2\nendfunction";
        let prog = parse_program(src).unwrap();
        match &prog[0].kind {
            Stmt::FuncDef(f) => {
                assert_eq!(f.name, "receive_res");
                assert_eq!(f.outs, vec!["sl", "result"]);
                assert!(f.params.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn matrix_literal_rows() {
        let prog = parse_program("m = [1, 2; 3, 4]").unwrap();
        match &prog[0].kind {
            Stmt::Assign(_, Expr::Matrix(rows)) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_with_step() {
        let prog = parse_program("r = 0:0.5:2").unwrap();
        match &prog[0].kind {
            Stmt::Assign(_, Expr::Range(_, Some(_), _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fig4_master_fragment_parses() {
        let src = r#"
Nt = size(Lpb, '*');
nb_per_node = floor(Nt / (mpi_size-1));
slv = 1;
for pb = Lpb(1:mpi_size-1)' do
  send_premia_pb(pb, slv); slv = slv + 1;
end
res = list();
Lpb(1:mpi_size-1) = [];
"#;
        assert!(parse_program(src).is_ok(), "{:?}", parse_program(src));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_program("x = 1 )").is_err());
    }
}
