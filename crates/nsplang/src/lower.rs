//! Lowering: mini-Nsp AST → register bytecode ([`crate::opcodes`]).
//!
//! The lowerer is a single pass over the statement list preceded by a local
//! scan: every name the block *assigns* (assignment targets, `for` loop
//! variables, `add_last` receivers, function parameters and outputs) gets a
//! dedicated frame slot, so the VM reads and writes locals by index instead
//! of hashing names. Names that are only read compile to `LoadDyn` (or a
//! `Copy` from a slot that falls back to the dynamic chain when unbound),
//! preserving the tree-walker's dynamic scoping.
//!
//! Lowering itself never fails: statically detectable runtime errors
//! (`break` outside a loop, keyword arguments in index position, nested
//! field assignment) compile to [`Op::Trap`] at the position the
//! tree-walker would raise them, so both engines report identical errors.

use crate::ast::{Arg, Expr, FuncDef, Spanned, Stmt, Target};
use crate::interp::{builtin_id, NValue};
use crate::lexer::Pos;
use crate::opcodes::{Chunk, Op, Proto, Reg, NO_REG, NO_TABLE};
use std::collections::HashMap;
use std::rc::Rc;

/// Lower a parsed program to a chunk executed on a fresh frame.
pub fn lower_program(prog: &[Spanned]) -> Chunk {
    Lowerer::new(&[], 0, false).lower(prog)
}

/// Lower a program into an existing frame (the `exec` builtin): `seeds` maps
/// the frame's already-named slots, `base` is the frame's current register
/// count; new locals are appended densely from `base`.
pub(crate) fn lower_seeded(prog: &[Spanned], seeds: &[(Rc<str>, Reg)], base: Reg) -> Chunk {
    Lowerer::new(seeds, base, false).lower(prog)
}

/// Compile a user function body. Parameters take the first slots, declared
/// outputs the following ones (`Proto::out_slots`).
pub(crate) fn lower_function(f: &Rc<FuncDef>) -> Proto {
    let mut lw = Lowerer::new(&[], 0, true);
    let param_slots: Vec<Reg> = f.params.iter().map(|p| lw.local(p)).collect();
    let out_slots: Vec<Reg> = f.outs.iter().map(|o| lw.local(o)).collect();
    let chunk = lw.lower(&f.body);
    Proto {
        def: f.clone(),
        param_slots,
        out_slots,
        chunk,
    }
}

/// Constant-pool key: scalars by bit pattern, so `-0.0`/`NaN` literals
/// intern consistently without `f64: Eq`.
#[derive(Hash, PartialEq, Eq)]
enum CKey {
    Num(u64),
    Str(String),
    Bool(bool),
}

struct LoopCtx {
    is_for: bool,
    start: usize,
    breaks: Vec<usize>,
}

struct Lowerer {
    ops: Vec<Op>,
    spans: Vec<Pos>,
    consts: Vec<NValue>,
    const_map: HashMap<CKey, u16>,
    names: Vec<Rc<str>>,
    name_map: HashMap<String, u32>,
    local_map: HashMap<String, Reg>,
    locals: Vec<(Reg, u32)>,
    next_local: Reg,
    first_temp: Reg,
    next_reg: Reg,
    max_reg: Reg,
    kw_tables: Vec<Vec<(u16, u32)>>,
    shapes: Vec<Vec<u16>>,
    msgs: Vec<String>,
    msg_map: HashMap<String, u16>,
    defs: Vec<Rc<FuncDef>>,
    loops: Vec<LoopCtx>,
    pending_end: Vec<usize>,
    in_function: bool,
    cur_pos: Pos,
}

impl Lowerer {
    fn new(seeds: &[(Rc<str>, Reg)], base: Reg, in_function: bool) -> Self {
        let mut lw = Lowerer {
            ops: Vec::new(),
            spans: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            names: Vec::new(),
            name_map: HashMap::new(),
            local_map: HashMap::new(),
            locals: Vec::new(),
            next_local: base,
            first_temp: base,
            next_reg: base,
            max_reg: base,
            kw_tables: Vec::new(),
            shapes: Vec::new(),
            msgs: Vec::new(),
            msg_map: HashMap::new(),
            defs: Vec::new(),
            loops: Vec::new(),
            pending_end: Vec::new(),
            in_function,
            cur_pos: Pos::NONE,
        };
        for (name, slot) in seeds {
            lw.name(name);
            lw.local_map.insert(name.to_string(), *slot);
        }
        lw
    }

    fn lower(mut self, stmts: &[Spanned]) -> Chunk {
        scan_stmts(stmts, &mut |name| {
            self.local(name);
        });
        self.first_temp = self.next_local;
        self.next_reg = self.first_temp;
        self.max_reg = self.max_reg.max(self.first_temp);
        for s in stmts {
            self.stmt(s);
        }
        let end = self.ops.len();
        for at in std::mem::take(&mut self.pending_end) {
            self.patch(at, end);
        }
        Chunk {
            ops: self.ops,
            spans: self.spans,
            consts: self.consts,
            names: self.names,
            locals: self.locals,
            nregs: self.max_reg,
            kw_tables: self.kw_tables,
            shapes: self.shapes,
            msgs: self.msgs,
            defs: self.defs,
        }
    }

    // ---- tables -------------------------------------------------------------

    fn name(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(Rc::from(name));
        self.name_map.insert(name.to_string(), id);
        id
    }

    /// The slot of a named local, registering it on first sight.
    fn local(&mut self, name: &str) -> Reg {
        if let Some(&slot) = self.local_map.get(name) {
            return slot;
        }
        let slot = self.next_local;
        self.next_local += 1;
        let id = self.name(name);
        self.locals.push((slot, id));
        self.local_map.insert(name.to_string(), slot);
        self.max_reg = self.max_reg.max(self.next_local);
        slot
    }

    fn slot_of(&self, name: &str) -> Option<Reg> {
        self.local_map.get(name).copied()
    }

    fn konst(&mut self, key: CKey, make: impl FnOnce() -> NValue) -> u16 {
        if let Some(&idx) = self.const_map.get(&key) {
            return idx;
        }
        let idx = self.consts.len() as u16;
        self.consts.push(make());
        self.const_map.insert(key, idx);
        idx
    }

    fn msg(&mut self, m: impl Into<String>) -> u16 {
        let m = m.into();
        if let Some(&idx) = self.msg_map.get(&m) {
            return idx;
        }
        let idx = self.msgs.len() as u16;
        self.msgs.push(m.clone());
        self.msg_map.insert(m, idx);
        idx
    }

    // ---- emission -----------------------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.spans.push(self.cur_pos);
        self.ops.len() - 1
    }

    fn emit_at(&mut self, op: Op, pos: Pos) -> usize {
        self.ops.push(op);
        self.spans.push(pos);
        self.ops.len() - 1
    }

    fn trap(&mut self, m: impl Into<String>) {
        let msg = self.msg(m);
        self.emit(Op::Trap { msg });
    }

    fn patch(&mut self, at: usize, to: usize) {
        let to = to as u32;
        match &mut self.ops[at] {
            Op::Jump { to: t }
            | Op::JumpIfFalse { to: t, .. }
            | Op::ForNext { end: t, .. }
            | Op::ExitLoop { to: t, .. } => *t = to,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    // ---- statements ---------------------------------------------------------

    fn stmt(&mut self, s: &Spanned) {
        self.cur_pos = s.pos;
        self.next_reg = self.first_temp;
        match &s.kind {
            Stmt::Expr(e) => {
                let t = self.alloc();
                self.expr_at(e, t);
            }
            Stmt::Assign(targets, rhs) => {
                if targets.len() == 1 {
                    self.assign_single(&targets[0], rhs);
                } else {
                    self.assign_multi(targets, rhs);
                }
            }
            Stmt::If { arms, else_body } => {
                let mut to_end = Vec::new();
                for (cond, body) in arms {
                    self.cur_pos = s.pos;
                    self.next_reg = self.first_temp;
                    let t = self.alloc();
                    self.expr_at(cond, t);
                    let jf = self.emit(Op::JumpIfFalse { cond: t, to: 0 });
                    self.block(body);
                    to_end.push(self.emit(Op::Jump { to: 0 }));
                    let next = self.ops.len();
                    self.patch(jf, next);
                }
                self.block(else_body);
                let end = self.ops.len();
                for at in to_end {
                    self.patch(at, end);
                }
            }
            Stmt::While { cond, body } => {
                let start = self.ops.len();
                self.cur_pos = s.pos;
                self.next_reg = self.first_temp;
                let t = self.alloc();
                self.expr_at(cond, t);
                let jf = self.emit(Op::JumpIfFalse { cond: t, to: 0 });
                self.loops.push(LoopCtx {
                    is_for: false,
                    start,
                    breaks: Vec::new(),
                });
                self.block(body);
                self.cur_pos = s.pos;
                self.emit(Op::Jump { to: start as u32 });
                let end = self.ops.len();
                self.patch(jf, end);
                let ctx = self.loops.pop().expect("pushed above");
                for at in ctx.breaks {
                    self.patch(at, end);
                }
            }
            Stmt::For { var, iter, body } => {
                let slot = self.local(var);
                let t = self.alloc();
                self.expr_at(iter, t);
                self.emit(Op::ForPrep { iter: t });
                let start = self.ops.len();
                let fnext = self.emit(Op::ForNext {
                    var: slot,
                    end: 0,
                });
                self.loops.push(LoopCtx {
                    is_for: true,
                    start,
                    breaks: Vec::new(),
                });
                self.block(body);
                self.cur_pos = s.pos;
                self.emit(Op::Jump { to: start as u32 });
                let end = self.ops.len();
                self.patch(fnext, end);
                let ctx = self.loops.pop().expect("pushed above");
                for at in ctx.breaks {
                    self.patch(at, end);
                }
            }
            Stmt::Break => match self.loops.last() {
                Some(ctx) => {
                    let drop = if ctx.is_for { 1 } else { 0 };
                    let at = self.emit(Op::ExitLoop { drop, to: 0 });
                    self.loops
                        .last_mut()
                        .expect("checked above")
                        .breaks
                        .push(at);
                }
                None => self.flow_escape("break outside loop"),
            },
            Stmt::Continue => match self.loops.last() {
                Some(ctx) => {
                    let to = ctx.start as u32;
                    self.emit(Op::Jump { to });
                }
                None => self.flow_escape("continue outside loop"),
            },
            Stmt::Return => {
                let drop = self.loops.iter().filter(|c| c.is_for).count() as u16;
                let at = self.emit(Op::ExitLoop { drop, to: 0 });
                self.pending_end.push(at);
            }
            Stmt::FuncDef(f) => {
                let def = self.defs.len() as u16;
                self.defs.push(Rc::new(f.clone()));
                self.emit(Op::DefFunc { def });
            }
        }
    }

    /// `break`/`continue` with no enclosing loop: at top level the
    /// tree-walker raises a span-less error from `run()`; inside a function
    /// body the flow value unwinds to `call_user`, which treats it like
    /// falling off the end.
    fn flow_escape(&mut self, msg: &str) {
        if self.in_function {
            let drop = self.loops.iter().filter(|c| c.is_for).count() as u16;
            let at = self.emit(Op::ExitLoop { drop, to: 0 });
            self.pending_end.push(at);
        } else {
            let m = self.msg(msg);
            self.emit_at(Op::Trap { msg: m }, Pos::NONE);
        }
    }

    fn block(&mut self, stmts: &[Spanned]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn assign_single(&mut self, target: &Target, rhs: &Expr) {
        match target {
            Target::Ident(name) => {
                let slot = self.local(name);
                self.expr_at(rhs, slot);
            }
            Target::Index(name, args) => {
                let slot = self.local(name);
                let name_id = self.name(name);
                let tv = self.alloc();
                self.expr_at(rhs, tv);
                let idx = self.next_reg;
                let mut n = 0u16;
                for a in args {
                    match a {
                        Arg::Pos(e) => {
                            let t = self.alloc();
                            self.expr_at(e, t);
                            n += 1;
                        }
                        Arg::Kw(_, _) => {
                            self.trap("keyword in index");
                            return;
                        }
                    }
                }
                self.emit(Op::IndexAsg {
                    slot,
                    name: name_id,
                    idx,
                    n,
                    src: tv,
                });
            }
            Target::Field(base, field) => {
                let tv = self.alloc();
                self.expr_at(rhs, tv);
                match base.as_ref() {
                    Target::Ident(name) => {
                        let slot = self.local(name);
                        let name_id = self.name(name);
                        let field_id = self.name(field);
                        self.emit(Op::FieldAsg {
                            slot,
                            name: name_id,
                            field: field_id,
                            src: tv,
                        });
                    }
                    _ => self.trap("nested field assignment not supported"),
                }
            }
        }
    }

    fn assign_multi(&mut self, targets: &[Target], rhs: &Expr) {
        let want = targets.len() as u16;
        let dst = self.next_reg;
        // Reserve the destination block, then compile the producer.
        for _ in 0..want {
            self.alloc();
        }
        match rhs {
            Expr::Apply(callee, args) => match callee.as_ref() {
                Expr::Ident(name) => self.apply_ident(name, args, dst, want),
                other => {
                    // Indexing always yields one value; the tree-walker
                    // errors after evaluating it.
                    if !self.index_expr(other, args, dst) {
                        return;
                    }
                    self.trap(format!("expected {want} return values, got 1"));
                    return;
                }
            },
            Expr::MethodCall(base, name, args) => {
                if !self.method_call(base, name, args, dst, want) {
                    return;
                }
            }
            Expr::Ident(name) => {
                let slot = self.slot_of(name).unwrap_or(NO_REG);
                let name_id = self.name(name);
                self.emit(Op::IdentMulti {
                    dst,
                    slot,
                    name: name_id,
                    want,
                });
            }
            other => {
                self.expr_at(other, dst);
                self.trap(format!("expected {want} return values, got 1"));
                return;
            }
        }
        // Assign left to right, like the tree-walker.
        for (i, t) in targets.iter().enumerate() {
            let src = dst + i as Reg;
            match t {
                Target::Ident(name) => {
                    let slot = self.local(name);
                    self.emit(Op::Take { dst: slot, src });
                }
                Target::Index(name, args) => {
                    let slot = self.local(name);
                    let name_id = self.name(name);
                    let idx = self.next_reg;
                    let mut n = 0u16;
                    let mut ok = true;
                    for a in args {
                        match a {
                            Arg::Pos(e) => {
                                let t = self.alloc();
                                self.expr_at(e, t);
                                n += 1;
                            }
                            Arg::Kw(_, _) => {
                                self.trap("keyword in index");
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        return;
                    }
                    self.emit(Op::IndexAsg {
                        slot,
                        name: name_id,
                        idx,
                        n,
                        src,
                    });
                    self.next_reg = idx;
                }
                Target::Field(base, field) => match base.as_ref() {
                    Target::Ident(name) => {
                        let slot = self.local(name);
                        let name_id = self.name(name);
                        let field_id = self.name(field);
                        self.emit(Op::FieldAsg {
                            slot,
                            name: name_id,
                            field: field_id,
                            src,
                        });
                    }
                    _ => {
                        self.trap("nested field assignment not supported");
                        return;
                    }
                },
            }
        }
    }

    // ---- expressions --------------------------------------------------------

    /// Compile `e` so its value lands in `dst`. Sub-expression temporaries
    /// live strictly above `dst` (and above the named-local region) and are
    /// released on return, which keeps sibling operands in contiguous
    /// registers for the call ops.
    fn expr_at(&mut self, e: &Expr, dst: Reg) {
        let floor = (dst + 1).max(self.first_temp).max(self.next_reg);
        self.next_reg = floor;
        self.max_reg = self.max_reg.max(floor);
        self.expr_inner(e, dst);
        self.next_reg = floor;
    }

    fn expr_inner(&mut self, e: &Expr, dst: Reg) {
        match e {
            Expr::Num(v) => {
                let idx = self.konst(CKey::Num(v.to_bits()), || NValue::scalar(*v));
                self.emit(Op::Const { dst, idx });
            }
            Expr::Str(s) => {
                let idx = self.konst(CKey::Str(s.clone()), || NValue::string(s.clone()));
                self.emit(Op::Const { dst, idx });
            }
            Expr::Bool(b) => {
                let idx = self.konst(CKey::Bool(*b), || NValue::boolean(*b));
                self.emit(Op::Const { dst, idx });
            }
            Expr::Ident(name) => match self.slot_of(name) {
                Some(slot) => {
                    self.emit(Op::Copy { dst, src: slot });
                }
                None => {
                    let id = self.name(name);
                    self.emit(Op::LoadDyn { dst, name: id });
                }
            },
            Expr::Matrix(rows) => {
                let base = self.next_reg;
                let mut shape = Vec::with_capacity(rows.len());
                for row in rows {
                    shape.push(row.len() as u16);
                    for entry in row {
                        let t = self.alloc();
                        self.expr_at(entry, t);
                    }
                }
                let sid = self.shapes.len() as u16;
                self.shapes.push(shape);
                self.emit(Op::Matrix {
                    dst,
                    shape: sid,
                    base,
                });
            }
            Expr::Range(lo, step, hi) => {
                let tlo = self.alloc();
                self.expr_at(lo, tlo);
                let thi = self.alloc();
                self.expr_at(hi, thi);
                let tstep = match step {
                    Some(s) => {
                        let t = self.alloc();
                        self.expr_at(s, t);
                        t
                    }
                    None => NO_REG,
                };
                self.emit(Op::Range {
                    dst,
                    lo: tlo,
                    hi: thi,
                    step: tstep,
                });
            }
            Expr::Unary(op, inner) => {
                let t = self.alloc();
                self.expr_at(inner, t);
                self.emit(Op::Un {
                    op: *op,
                    dst,
                    src: t,
                });
            }
            Expr::Binary(op, a, b) => {
                let ta = self.alloc();
                self.expr_at(a, ta);
                let tb = self.alloc();
                self.expr_at(b, tb);
                self.emit(Op::Bin {
                    op: *op,
                    dst,
                    a: ta,
                    b: tb,
                });
            }
            Expr::Apply(callee, args) => match callee.as_ref() {
                Expr::Ident(name) => self.apply_ident(name, args, dst, 1),
                other => {
                    self.index_expr(other, args, dst);
                }
            },
            Expr::Field(base, name) => {
                let tb = self.alloc();
                self.expr_at(base, tb);
                let id = self.name(name);
                self.emit(Op::Field {
                    dst,
                    base: tb,
                    name: id,
                });
            }
            Expr::MethodCall(base, name, args) => {
                self.method_call(base, name, args, dst, 1);
            }
            Expr::Transpose(inner) => {
                let t = self.alloc();
                self.expr_at(inner, t);
                self.emit(Op::Transpose { dst, src: t });
            }
        }
    }

    /// Compile arguments (keywords allowed) into contiguous registers in
    /// source order; returns `(base, argc, kw table)`.
    fn call_args(&mut self, args: &[Arg]) -> (Reg, u16, u16) {
        let base = self.next_reg;
        let mut kw = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let t = self.alloc();
            match a {
                Arg::Pos(e) => self.expr_at(e, t),
                Arg::Kw(name, e) => {
                    let id = self.name(name);
                    kw.push((i as u16, id));
                    self.expr_at(e, t);
                }
            }
        }
        let kwt = if kw.is_empty() {
            NO_TABLE
        } else {
            let id = self.kw_tables.len() as u16;
            self.kw_tables.push(kw);
            id
        };
        (base, args.len() as u16, kwt)
    }

    fn apply_ident(&mut self, name: &str, args: &[Arg], dst: Reg, want: u16) {
        let (base, argc, kwt) = self.call_args(args);
        let slot = self.slot_of(name).unwrap_or(NO_REG);
        let builtin = builtin_id(name).unwrap_or(NO_TABLE);
        let name_id = self.name(name);
        self.emit(Op::Apply {
            dst,
            name: name_id,
            slot,
            builtin,
            base,
            argc,
            kwt,
            want,
        });
    }

    /// Index the value of an arbitrary callee expression. Returns `false`
    /// when a keyword argument forced a trap (stream ends there).
    fn index_expr(&mut self, callee: &Expr, args: &[Arg], dst: Reg) -> bool {
        let tb = self.alloc();
        self.expr_at(callee, tb);
        let idx = self.next_reg;
        let mut n = 0u16;
        for a in args {
            match a {
                Arg::Pos(e) => {
                    let t = self.alloc();
                    self.expr_at(e, t);
                    n += 1;
                }
                Arg::Kw(_, _) => {
                    self.trap("unexpected keyword argument");
                    return false;
                }
            }
        }
        self.emit(Op::Index {
            dst,
            base: tb,
            idx,
            n,
        });
        true
    }

    /// Compile a bracket-method call; returns `false` if lowering trapped.
    fn method_call(
        &mut self,
        base: &Expr,
        name: &str,
        args: &[Arg],
        dst: Reg,
        want: u16,
    ) -> bool {
        let tb = self.alloc();
        self.expr_at(base, tb);
        let (abase, argc, kwt) = self.call_args(args);
        let wb = if name == "add_last" {
            match base {
                Expr::Ident(v) => self.slot_of(v).unwrap_or(NO_REG),
                _ => NO_REG,
            }
        } else {
            NO_REG
        };
        let name_id = self.name(name);
        self.emit(Op::Method {
            dst,
            name: name_id,
            obj: tb,
            base: abase,
            argc,
            kwt,
            want,
            wb,
        });
        true
    }
}

// ---- local scan -------------------------------------------------------------

/// Visit, in source order, every name a block binds: assignment target
/// roots, `for` variables, and `add_last` receivers (written back by the
/// method-call rule). Nested function bodies compile separately and are
/// skipped.
fn scan_stmts(stmts: &[Spanned], f: &mut impl FnMut(&str)) {
    for s in stmts {
        match &s.kind {
            Stmt::Assign(targets, rhs) => {
                for t in targets {
                    scan_target(t, f);
                }
                scan_expr(rhs, f);
                for t in targets {
                    if let Target::Index(_, args) = t {
                        scan_args(args, f);
                    }
                }
            }
            Stmt::Expr(e) => scan_expr(e, f),
            Stmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    scan_expr(cond, f);
                    scan_stmts(body, f);
                }
                scan_stmts(else_body, f);
            }
            Stmt::While { cond, body } => {
                scan_expr(cond, f);
                scan_stmts(body, f);
            }
            Stmt::For { var, iter, body } => {
                f(var);
                scan_expr(iter, f);
                scan_stmts(body, f);
            }
            Stmt::Break | Stmt::Continue | Stmt::Return | Stmt::FuncDef(_) => {}
        }
    }
}

fn scan_target(t: &Target, f: &mut impl FnMut(&str)) {
    match t {
        Target::Ident(name) | Target::Index(name, _) => f(name),
        Target::Field(base, _) => scan_target(base, f),
    }
}

fn scan_args(args: &[Arg], f: &mut impl FnMut(&str)) {
    for a in args {
        match a {
            Arg::Pos(e) | Arg::Kw(_, e) => scan_expr(e, f),
        }
    }
}

fn scan_expr(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Num(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Ident(_) => {}
        Expr::Matrix(rows) => {
            for row in rows {
                for entry in row {
                    scan_expr(entry, f);
                }
            }
        }
        Expr::Range(lo, step, hi) => {
            scan_expr(lo, f);
            if let Some(s) = step {
                scan_expr(s, f);
            }
            scan_expr(hi, f);
        }
        Expr::Unary(_, inner) | Expr::Transpose(inner) => scan_expr(inner, f),
        Expr::Binary(_, a, b) => {
            scan_expr(a, f);
            scan_expr(b, f);
        }
        Expr::Apply(callee, args) => {
            scan_expr(callee, f);
            scan_args(args, f);
        }
        Expr::Field(base, _) => scan_expr(base, f),
        Expr::MethodCall(base, name, args) => {
            // `L.add_last[x]` writes the result back into `L`.
            if name == "add_last" {
                if let Expr::Ident(v) = base.as_ref() {
                    f(v);
                }
            }
            scan_expr(base, f);
            scan_args(args, f);
        }
    }
}
