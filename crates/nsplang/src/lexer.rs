//! Tokenizer for the mini-Nsp language.
//!
//! The one genuinely tricky piece of Matlab-family lexing is the quote
//! character: `'` opens a string *except* immediately after an
//! identifier, number, `)`, `]` or `'`, where it is the postfix transpose
//! operator (`Lpb'`). We use the classic "previous significant token"
//! disambiguation.
//!
//! Every token carries a [`Pos`] (1-based line and column of its first
//! character) so parse and runtime errors can point at the offending
//! source location.

use std::fmt;

/// A 1-based source position (line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters) within the line.
    pub col: u32,
}

impl Pos {
    /// Sentinel "no position" value (line 0).
    pub const NONE: Pos = Pos { line: 0, col: 0 };

    /// Whether this is a real position (line numbers are 1-based).
    pub fn is_some(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token of the mini-Nsp language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Num(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `%t`.
    True,
    /// `%f`.
    False,
    /// `if` keyword.
    If,
    /// `then` keyword.
    Then,
    /// `else` keyword.
    Else,
    /// `elseif` keyword.
    Elseif,
    /// `end` keyword.
    End,
    /// `while` keyword.
    While,
    /// `for` keyword.
    For,
    /// `do` keyword.
    Do,
    /// `break` keyword.
    Break,
    /// `continue` keyword.
    Continue,
    /// `return` keyword.
    Return,
    /// `function` keyword.
    Function,
    /// `endfunction` keyword.
    EndFunction,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;` (statement separator).
    Semi,
    /// End of line (statement separator).
    Newline,
    /// `.` (field access / method call).
    Dot,
    /// `=` (assignment).
    Assign,
    /// `==`.
    Eq,
    /// `<>` or `~=`.
    Ne,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `:` (range).
    Colon,
    /// Postfix transpose `'`.
    Quote,
    /// `&&` or `&`.
    And,
    /// `||` or `|`.
    Or,
    /// `~` (logical not).
    Not,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Lexing error with a 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Position of the offending character.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "if" => Tok::If,
        "then" => Tok::Then,
        "else" => Tok::Else,
        "elseif" => Tok::Elseif,
        "end" => Tok::End,
        "while" => Tok::While,
        "for" => Tok::For,
        "do" => Tok::Do,
        "break" => Tok::Break,
        "continue" => Tok::Continue,
        "return" => Tok::Return,
        "function" => Tok::Function,
        "endfunction" => Tok::EndFunction,
        _ => return None,
    })
}

/// Can the previous token end an expression (so `'` means transpose)?
fn ends_expression(tok: Option<&Tok>) -> bool {
    matches!(
        tok,
        Some(Tok::Ident(_))
            | Some(Tok::Num(_))
            | Some(Tok::RParen)
            | Some(Tok::RBracket)
            | Some(Tok::Quote)
            | Some(Tok::True)
            | Some(Tok::False)
    )
}

/// Tokenize a source string. Comments run from `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<(Tok, Pos)>, LexError> {
    let mut out: Vec<(Tok, Pos)> = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    // Char index of the first character of the current line; columns are
    // 1-based offsets from it.
    let mut line_start = 0usize;
    let n = bytes.len();

    let err = |pos: Pos, msg: &str| LexError {
        pos,
        message: msg.to_string(),
    };

    while i < n {
        let c = bytes[i];
        let tp = Pos {
            line,
            col: (i - line_start + 1) as u32,
        };
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '\n' => {
                out.push((Tok::Newline, tp));
                line += 1;
                i += 1;
                line_start = i;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '%' => {
                // %t / %f boolean literals.
                if i + 1 < n && (bytes[i + 1] == 't' || bytes[i + 1] == 'f') {
                    out.push((
                        if bytes[i + 1] == 't' {
                            Tok::True
                        } else {
                            Tok::False
                        },
                        tp,
                    ));
                    i += 2;
                } else {
                    return Err(err(tp, "unknown % literal"));
                }
            }
            '\'' | '"' => {
                let is_transpose = c == '\'' && ends_expression(out.last().map(|(t, _)| t));
                if is_transpose {
                    out.push((Tok::Quote, tp));
                    i += 1;
                } else {
                    // String literal; '' (resp. "") escapes the delimiter.
                    let delim = c;
                    let mut s = String::new();
                    i += 1;
                    loop {
                        if i >= n {
                            return Err(err(tp, "unterminated string"));
                        }
                        if bytes[i] == delim {
                            if i + 1 < n && bytes[i + 1] == delim {
                                s.push(delim);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        } else {
                            if bytes[i] == '\n' {
                                line += 1;
                                line_start = i + 1;
                            }
                            s.push(bytes[i]);
                            i += 1;
                        }
                    }
                    out.push((Tok::Str(s), tp));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    // Don't swallow the dot of `1.foo` field access or `1.e5`.
                    if bytes[i] == '.'
                        && i + 1 < n
                        && !bytes[i + 1].is_ascii_digit()
                        && bytes[i + 1] != 'e'
                        && bytes[i + 1] != 'E'
                    {
                        break;
                    }
                    i += 1;
                }
                // Exponent.
                if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == '+' || bytes[j] == '-') {
                        j += 1;
                    }
                    if j < n && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let v = text
                    .parse::<f64>()
                    .map_err(|_| err(tp, &format!("bad number {text}")))?;
                out.push((Tok::Num(v), tp));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                out.push((keyword(&word).unwrap_or(Tok::Ident(word)), tp));
            }
            '(' => {
                out.push((Tok::LParen, tp));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, tp));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, tp));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, tp));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, tp));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, tp));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, tp));
                i += 1;
            }
            '+' => {
                out.push((Tok::Plus, tp));
                i += 1;
            }
            '-' => {
                out.push((Tok::Minus, tp));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, tp));
                i += 1;
            }
            '/' => {
                out.push((Tok::Slash, tp));
                i += 1;
            }
            ':' => {
                out.push((Tok::Colon, tp));
                i += 1;
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push((Tok::Eq, tp));
                    i += 2;
                } else {
                    out.push((Tok::Assign, tp));
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    out.push((Tok::Ne, tp));
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    out.push((Tok::Le, tp));
                    i += 2;
                } else {
                    out.push((Tok::Lt, tp));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push((Tok::Ge, tp));
                    i += 2;
                } else {
                    out.push((Tok::Gt, tp));
                    i += 1;
                }
            }
            '~' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push((Tok::Ne, tp));
                    i += 2;
                } else {
                    out.push((Tok::Not, tp));
                    i += 1;
                }
            }
            '&' => {
                i += if i + 1 < n && bytes[i + 1] == '&' {
                    2
                } else {
                    1
                };
                out.push((Tok::And, tp));
            }
            '|' => {
                i += if i + 1 < n && bytes[i + 1] == '|' {
                    2
                } else {
                    1
                };
                out.push((Tok::Or, tp));
            }
            other => {
                return Err(err(tp, &format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn numbers_and_ops() {
        assert_eq!(
            toks("x = 1.5 + 2e3"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(1.5),
                Tok::Plus,
                Tok::Num(2000.0)
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert_eq!(toks("\"equity\""), vec![Tok::Str("equity".into())]);
    }

    #[test]
    fn transpose_vs_string() {
        // After an identifier, ' is transpose; at expression start it is
        // a string opener.
        assert_eq!(toks("Lpb'"), vec![Tok::Ident("Lpb".into()), Tok::Quote]);
        assert_eq!(
            toks("x = 'str'"),
            vec![Tok::Ident("x".into()), Tok::Assign, Tok::Str("str".into())]
        );
        // After ) too.
        assert_eq!(
            toks("f(x)'"),
            vec![
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Quote
            ]
        );
    }

    #[test]
    fn booleans_and_keywords() {
        assert_eq!(
            toks("while %t then break end"),
            vec![Tok::While, Tok::True, Tok::Then, Tok::Break, Tok::End]
        );
    }

    #[test]
    fn comments_and_newlines() {
        assert_eq!(
            toks("a = 1 // comment\nb = 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Num(1.0),
                Tok::Newline,
                Tok::Ident("b".into()),
                Tok::Assign,
                Tok::Num(2.0)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <> b == c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
                Tok::Eq,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into())
            ]
        );
    }

    #[test]
    fn paper_snippet_lexes() {
        let src =
            "if mpi_rank <> 0 // Slave part\n  name = MPI_Recv_Obj(0,TAG,MPI_COMM_WORLD);\nend";
        assert!(lex(src).is_ok());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("x = 'oops").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let lexed = lex("a=1\nb=2\nc=3").unwrap();
        let last = lexed.last().unwrap();
        assert_eq!(last.1, Pos { line: 3, col: 3 });
    }

    #[test]
    fn columns_tracked() {
        let lexed = lex("ab = 12\n  cd = 3").unwrap();
        // `ab` at 1:1, `=` at 1:4, `12` at 1:6; `cd` at 2:3.
        assert_eq!(lexed[0].1, Pos { line: 1, col: 1 });
        assert_eq!(lexed[1].1, Pos { line: 1, col: 4 });
        assert_eq!(lexed[2].1, Pos { line: 1, col: 6 });
        assert_eq!(lexed[4].1, Pos { line: 2, col: 3 });
    }

    #[test]
    fn lex_error_carries_position() {
        let e = lex("x = 1\ny = @").unwrap_err();
        assert_eq!(e.pos, Pos { line: 2, col: 5 });
    }
}
