//! Abstract syntax tree of the mini-Nsp language.

pub use crate::lexer::Pos;

/// A statement together with the source position of its first token.
///
/// Both engines use the position to attach a `line:col` span to runtime
/// errors raised while executing the statement (innermost statement wins).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// Position of the statement's first token.
    pub pos: Pos,
    /// The statement itself.
    pub kind: Stmt,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// `%t` / `%f`.
    Bool(bool),
    /// Variable or function reference.
    Ident(String),
    /// `[a, b; c, d]` matrix literal (rows of expressions); `[]` is the
    /// empty matrix.
    Matrix(Vec<Vec<Expr>>),
    /// `a:b` (and `a:b:c` step ranges).
    Range(Box<Expr>, Option<Box<Expr>>, Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `f(args)` — resolved at evaluation to a call (function name) or an
    /// indexing operation (variable). Arguments may be keyword pairs.
    Apply(Box<Expr>, Vec<Arg>),
    /// `expr.field`
    Field(Box<Expr>, String),
    /// `expr.method[args]` — Nsp bracket-method call.
    MethodCall(Box<Expr>, String, Vec<Arg>),
    /// Postfix transpose `expr'`.
    Transpose(Box<Expr>),
}

/// A call argument: positional or keyword (`str="equity"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Positional argument.
    Pos(Expr),
    /// Keyword argument (`str="equity"`).
    Kw(String, Expr),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // arithmetic/comparison names are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `x = …`
    Ident(String),
    /// `x(indices) = …` (e.g. `Lpb(1:k) = []`).
    Index(String, Vec<Arg>),
    /// `H.A = …`
    Field(Box<Target>, String),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = expr` or `[t1, t2] = expr`.
    Assign(Vec<Target>, Expr),
    /// Bare expression (call for side effects).
    Expr(Expr),
    /// `if … elseif … else … end`.
    If {
        /// (condition, body) pairs: `if`/`elseif` arms.
        arms: Vec<(Expr, Vec<Spanned>)>,
        /// The `else` body (empty when absent).
        else_body: Vec<Spanned>,
    },
    /// `while cond then/do … end`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Spanned>,
    },
    /// `for var = iter do … end`.
    For {
        /// Loop variable name.
        var: String,
        /// Iterated expression (range, list, matrix).
        iter: Expr,
        /// Loop body.
        body: Vec<Spanned>,
    },
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `return`.
    Return,
    /// Function definition.
    FuncDef(FuncDef),
}

/// `function [o1, o2] = name(p1, p2) … endfunction`
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Output variable names (`[o1, o2] = name(...)`).
    pub outs: Vec<String>,
    /// Function body.
    pub body: Vec<Spanned>,
}
