//! Register bytecode for the mini-Nsp VM.
//!
//! A [`Chunk`] is the unit of compiled code: a flat `Vec<Op>` plus the side
//! tables the ops index into (constant pool, interned names, keyword-argument
//! tables, matrix shapes, trap messages, nested function definitions) and a
//! parallel `Vec<Pos>` of source spans for error reporting.
//!
//! The calling convention is register-based and contiguous (Lua-style):
//! every expression operand is evaluated into a frame register; call ops name
//! a base register and an argument count, and multi-value results are written
//! to `dst..dst+want`. Named locals occupy dedicated slots resolved at lower
//! time, so the dispatch loop never touches a hash map (see `vm.rs`, which
//! grep-gates this in CI).

use crate::ast::{BinOp, FuncDef, UnOp};
use crate::interp::NValue;
use crate::lexer::Pos;
use std::rc::Rc;

/// A register index within a frame.
pub type Reg = u16;

/// Sentinel register meaning "absent" (no step expression, no slot, …).
pub const NO_REG: Reg = u16::MAX;

/// Sentinel side-table index meaning "absent" (no keyword args, …).
pub const NO_TABLE: u16 = u16::MAX;

/// One VM instruction. Registers are frame-relative; `name` fields index
/// [`Chunk::names`]; other `u16` fields index the chunk side tables.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names follow one scheme: dst/src/base/argc/…
pub enum Op {
    /// `regs[dst] = consts[idx].clone()`.
    Const { dst: Reg, idx: u16 },
    /// `regs[dst] = regs[src].clone()`; an unbound `src` slot falls back to
    /// the dynamic scope chain (outer frames, globals, bare builtin call).
    Copy { dst: Reg, src: Reg },
    /// `regs[dst] = regs[src].take()` — move a bound temporary.
    Take { dst: Reg, src: Reg },
    /// Read an identifier that has no local slot in this chunk.
    LoadDyn { dst: Reg, name: u32 },
    /// Multi-value read of a bare identifier (multi-assignment RHS).
    IdentMulti { dst: Reg, slot: Reg, name: u32, want: u16 },
    /// Binary operator over two registers.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// Unary operator.
    Un { op: UnOp, dst: Reg, src: Reg },
    /// `lo:hi` / `lo:step:hi` range (step == `NO_REG` → 1.0).
    Range { dst: Reg, lo: Reg, hi: Reg, step: Reg },
    /// Matrix literal: entries are in `base..`, row widths in
    /// `shapes[shape]`.
    Matrix { dst: Reg, shape: u16, base: Reg },
    /// Postfix transpose.
    Transpose { dst: Reg, src: Reg },
    /// Index the value in `base` with `n` index registers at `idx..`.
    Index { dst: Reg, base: Reg, idx: Reg, n: u16 },
    /// Field read `base.name`.
    Field { dst: Reg, base: Reg, name: u32 },
    /// `name(args)` — resolved at runtime to variable indexing or a call
    /// (user function first, then the builtin table), exactly like the
    /// tree-walker. Arguments are in `base..base+argc` in source order;
    /// `kwt` marks which are keywords. `slot`/`builtin` are compile-time
    /// resolutions (`NO_REG`/`NO_TABLE` when absent).
    Apply {
        dst: Reg,
        name: u32,
        slot: Reg,
        builtin: u16,
        base: Reg,
        argc: u16,
        kwt: u16,
        want: u16,
    },
    /// `obj.name[args]` bracket-method call; `wb != NO_REG` writes the first
    /// result back to that slot (the `add_last` receiver pattern).
    Method {
        dst: Reg,
        name: u32,
        obj: Reg,
        base: Reg,
        argc: u16,
        kwt: u16,
        want: u16,
        wb: Reg,
    },
    /// `name(idx...) = src` write indexing into local `slot`.
    IndexAsg { slot: Reg, name: u32, idx: Reg, n: u16, src: Reg },
    /// `name.field = src` with hash auto-create, into local `slot`.
    FieldAsg { slot: Reg, name: u32, field: u32, src: Reg },
    /// Define `defs[def]` as a user function (`interp.funcs`).
    DefFunc { def: u16 },
    /// Unconditional jump.
    Jump { to: u32 },
    /// Jump when the condition register is falsy (`truthy()` errors on
    /// non-plain values, same as the tree-walker).
    JumpIfFalse { cond: Reg, to: u32 },
    /// Start a `for` loop over the value in `iter` (pushes an iterator).
    ForPrep { iter: Reg },
    /// Advance the innermost iterator into `var`, or pop it and jump `end`.
    ForNext { var: Reg, end: u32 },
    /// Pop `drop` active iterators, then jump (break/continue/return).
    ExitLoop { drop: u16, to: u32 },
    /// Raise `msgs[msg]` as a runtime error.
    Trap { msg: u16 },
}

/// A compiled program fragment plus its side tables.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Source position per op (parallel to `ops`; `Pos::NONE` = no span).
    pub spans: Vec<Pos>,
    /// Interned constant pool (deduplicated literals).
    pub consts: Vec<NValue>,
    /// Interned identifier names.
    pub names: Vec<Rc<str>>,
    /// Named local slots introduced by this chunk: `(slot, name index)`.
    pub locals: Vec<(Reg, u32)>,
    /// Total frame size (named locals + temporaries).
    pub nregs: u16,
    /// Keyword-argument tables: `(argument position, name index)` pairs.
    pub kw_tables: Vec<Vec<(u16, u32)>>,
    /// Matrix literal shapes: entry count per row.
    pub shapes: Vec<Vec<u16>>,
    /// Trap messages.
    pub msgs: Vec<String>,
    /// Function definitions appearing in this chunk.
    pub defs: Vec<Rc<FuncDef>>,
}

/// A compiled user function: the definition (for arity/outs and identity)
/// plus its body chunk. Parameters occupy the first local slots, output
/// variables the following ones.
#[derive(Debug, Clone)]
pub struct Proto {
    /// The source definition this proto was compiled from (cache identity).
    pub def: Rc<FuncDef>,
    /// Slots of the declared parameters, in declaration order.
    pub param_slots: Vec<Reg>,
    /// Slots of the declared output variables, in declaration order.
    pub out_slots: Vec<Reg>,
    /// The compiled body.
    pub chunk: Chunk,
}
