//! Toolbox objects: the `PremiaModel` class exposed to scripts (§3.3).

use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem, PricingResult};

/// The interpreter-level `PremiaModel` instance: built incrementally by
/// `P.set_asset[...]` / `set_model` / `set_option` / `set_method`, then
/// `P.compute[]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PremiaObj {
    /// Asset class (`"equity"` / `"rates"`), set by `set_asset`.
    pub asset: Option<String>,
    /// Model choice, set by `set_model`.
    pub model: Option<ModelSpec>,
    /// Product choice, set by `set_option`.
    pub option: Option<OptionSpec>,
    /// Method choice, set by `set_method`.
    pub method: Option<MethodSpec>,
    /// Result of the last `compute[]`, if any.
    pub result: Option<PricingResult>,
}

impl PremiaObj {
    /// `premia_create()`: an empty instance awaiting its setters.
    pub fn new() -> Self {
        PremiaObj::default()
    }

    /// A fully specified object becomes a `PremiaProblem`.
    pub fn to_problem(&self) -> Result<PremiaProblem, String> {
        Ok(PremiaProblem {
            asset: self
                .asset
                .clone()
                .ok_or_else(|| "PremiaModel: asset not set".to_string())?,
            model: self
                .model
                .clone()
                .ok_or_else(|| "PremiaModel: model not set".to_string())?,
            option: self
                .option
                .clone()
                .ok_or_else(|| "PremiaModel: option not set".to_string())?,
            method: self
                .method
                .clone()
                .ok_or_else(|| "PremiaModel: method not set".to_string())?,
        })
    }

    /// Rehydrate from a decoded `PremiaProblem` (the slave-side path).
    pub fn from_problem(p: PremiaProblem) -> Self {
        PremiaObj {
            asset: Some(p.asset.clone()),
            model: Some(p.model.clone()),
            option: Some(p.option.clone()),
            method: Some(p.method.clone()),
            result: None,
        }
    }

    /// `P.compute[]`.
    pub fn compute(&mut self) -> Result<&PricingResult, String> {
        let problem = self.to_problem()?;
        let r = problem.compute().map_err(|e| e.to_string())?;
        self.result = Some(r);
        Ok(self.result.as_ref().expect("just set"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_build_like_section_3_3() {
        let mut p = PremiaObj::new();
        assert!(p.to_problem().is_err());
        p.asset = Some("equity".into());
        p.model = Some(ModelSpec::by_name("BlackScholes1dim").unwrap());
        p.option = Some(OptionSpec::by_name("CallEuro").unwrap());
        assert!(p.to_problem().is_err()); // method missing
        p.method = Some(MethodSpec::by_name("CF").unwrap());
        let problem = p.to_problem().unwrap();
        assert_eq!(problem.label(), "BlackScholes1dim/CallEuro/CF");
        let r = p.compute().unwrap();
        assert!((r.price - 10.4506).abs() < 1e-3);
        assert!(p.result.is_some());
    }

    #[test]
    fn round_trip_through_problem() {
        let problem =
            PremiaProblem::create("Heston1dim", "PutAmer", "MC_AM_LongstaffSchwartz").unwrap();
        let obj = PremiaObj::from_problem(problem.clone());
        assert_eq!(obj.to_problem().unwrap(), problem);
    }
}
