//! Criterion micro-benchmarks of script dispatch: the AST tree-walker
//! versus the register bytecode VM on three microscripts that isolate the
//! interpreter costs the VM attacks — scalar-loop arithmetic (slot-resolved
//! locals, unboxed immediates), list building (`add_last` writeback), and
//! bracket-method calls — plus the lowering pass itself, to show compile
//! cost stays far below one execution.

use criterion::{criterion_group, criterion_main, Criterion};
use nsplang::{lower::lower_program, parse_program, Engine, Interp};
use std::hint::black_box;

/// Pure scalar arithmetic and branches in a `while` loop: the
/// dispatch-bound shape of the Fig. 4 driver's inner work.
const SCALAR_LOOP: &str = "\
s = 0.0\n\
i = 1\n\
while i <= 2000 do\n\
  if s > 100.0 then\n\
    s = s - 100.0\n\
  end\n\
  s = s + i * 0.5\n\
  i = i + 1\n\
end\n";

/// Grow a list and read it back by index — value-semantics writeback.
const LIST_BUILD: &str = "\
L = list()\n\
for k = 1:100 do\n\
  L.add_last[k * 2.0]\n\
end\n\
s = 0.0\n\
for k = 1:100 do\n\
  s = s + L(k)\n\
end\n";

/// User-function call overhead: frames, argument binding, output slots.
const METHOD_CALL: &str = "\
function [r] = f(x, y)\n\
  r = x + y * 2.0\n\
endfunction\n\
s = 0.0\n\
for k = 1:500 do\n\
  s = s + f(k, s)\n\
end\n";

fn run(engine: Engine, src: &str) {
    let mut interp = Interp::with_engine(engine);
    interp.run(black_box(src)).expect("benchmark script runs");
    black_box(interp.get_scalar("s"));
}

fn bench_dispatch(c: &mut Criterion) {
    for (name, src) in [
        ("scalar_loop", SCALAR_LOOP),
        ("list_build", LIST_BUILD),
        ("method_call", METHOD_CALL),
    ] {
        c.bench_function(&format!("tree_{name}"), |b| {
            b.iter(|| run(Engine::Tree, src))
        });
        c.bench_function(&format!("vm_{name}"), |b| b.iter(|| run(Engine::Vm, src)));
    }

    // The compile side of the VM engine: parse once, lower repeatedly.
    let prog = parse_program(SCALAR_LOOP).expect("benchmark script parses");
    c.bench_function("lower_scalar_loop", |b| {
        b.iter(|| black_box(lower_program(black_box(&prog))))
    });
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
