//! A pure, transport-free Robin Hood scheduler state machine.
//!
//! The paper's Fig. 4/5 master is *one* algorithm — feed every slave a
//! job, refeed each slave on every answer, stop with an empty name —
//! yet the repository grew four live implementations of it (plain,
//! supervised, batched, hierarchical) plus a fifth re-derivation inside
//! the cluster simulator. This crate isolates the scheduling
//! *decisions* from every transport: [`Scheduler::on`] consumes an
//! [`Event`] (something the outside world observed) and returns the
//! [`Action`]s the master must take, with no clocks, threads, sockets
//! or files anywhere inside.
//!
//! The same state machine drives:
//!
//! * the live `minimpi` farm masters (plain, supervised, batched, and
//!   each hierarchy sub-master), which translate wire messages into
//!   events and actions into sends; and
//! * the discrete-event cluster simulator, which feeds the identical
//!   events with simulated timestamps.
//!
//! Because every decision is recorded in an optional [`Trace`] that
//! contains **no timestamps**, a live run and a simulated run of the
//! same workload produce byte-identical decision traces — the property
//! `tests/sched_parity.rs` locks down.
//!
//! Supervision semantics (deadlines, bounded retries with exponential
//! backoff, first-answer dedup, dead-slave burial, all-slaves-dead
//! abort) are lifted verbatim from the former `farm::supervisor`
//! master; dispatch *order* is a pluggable [`DispatchPolicy`] (FIFO, or
//! cost-model longest-processing-time).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

/// Something the outside world observed and reports to the scheduler.
///
/// Slaves are identified by abstract ids `1..=slaves`; drivers map them
/// to MPI ranks (or simulated lanes) however they like. Jobs are dense
/// indices `0..jobs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A slave is up and can be fed. Drivers feed this once per slave,
    /// in ascending order, before anything else ("priming").
    SlaveReady {
        /// Slave id, `1..=slaves`.
        slave: usize,
    },
    /// A slave answered a job (for batched dispatch: the *first* job of
    /// the batch identifies the whole batch).
    Answer {
        /// The answered job.
        job: usize,
        /// The answering slave.
        slave: usize,
    },
    /// A slave reported that it could not complete a job
    /// (supervised mode only).
    Failure {
        /// The failed job.
        job: usize,
        /// The reporting slave.
        slave: usize,
    },
    /// A clock tick: sweep in-flight jobs for expired deadlines
    /// (supervised mode only; a no-op in plain mode).
    Deadline,
    /// The driver detected that a slave died (supervised mode only).
    SlaveDead {
        /// The dead slave.
        slave: usize,
    },
    /// A previously emitted [`Action::Dispatch`] could not be delivered
    /// because the target slave is gone (supervised mode only). The
    /// scheduler reverses the optimistic dispatch — the attempt is not
    /// counted — and buries the slave.
    SendFailed {
        /// The job whose dispatch failed.
        job: usize,
        /// The unreachable slave.
        slave: usize,
    },
}

/// What the master must do in response to an [`Event`].
///
/// Actions are emitted in execution order; drivers handle them
/// sequentially. A failed `Dispatch` send must be reported back via
/// [`Event::SendFailed`] *immediately* (before handling the remaining
/// actions) so live and simulated drivers stay in lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Send jobs `job .. job + batch` to `slave`.
    Dispatch {
        /// First job of the batch.
        job: usize,
        /// Target slave.
        slave: usize,
        /// Number of consecutive jobs in this dispatch (1 unless
        /// batching is on).
        batch: usize,
    },
    /// Send the empty-name stop sentinel to `slave`.
    Stop {
        /// Slave to stop.
        slave: usize,
    },
    /// Record the answer for `job` from `slave` as the accepted result
    /// (duplicates from retries never produce an `Accept`).
    Accept {
        /// The accepted job.
        job: usize,
        /// The slave whose answer won.
        slave: usize,
    },
    /// `job`'s deadline on `slave` expired; the slave is considered
    /// free again and the job will be retried or abandoned.
    Expire {
        /// The expired job.
        job: usize,
        /// The slave it was in flight on.
        slave: usize,
    },
    /// `job` went back on the queue (after a failure, an expired
    /// deadline, or a burial) with its retry backoff applied.
    Requeue {
        /// The requeued job.
        job: usize,
    },
    /// `slave` is dead: stop dispatching to it forever.
    Bury {
        /// The buried slave.
        slave: usize,
    },
    /// Every slave is dead with work remaining; the run is aborted.
    AllSlavesDead,
    /// All work is finished (or abandoned within budget); the run is
    /// complete and every live slave has been stopped.
    Finish,
}

/// The order in which queued jobs are handed to free slaves.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchPolicy {
    /// First-in, first-out: jobs go out in index order (the paper's
    /// Fig. 4 master).
    Fifo,
    /// Longest-processing-time-first: jobs are ordered by descending
    /// predicted cost (ties keep index order), the classic makespan
    /// heuristic for the end-of-run straggler tail. Costs come from a
    /// calibrated `farm::calibrate::CostModel`.
    Lpt {
        /// Predicted cost per job, indexed by job id; must have exactly
        /// `jobs` entries.
        costs: Vec<f64>,
    },
    /// Priority classes: jobs go out in ascending class (0 = most
    /// urgent), stable index order within a class. This is the serving
    /// session's per-priority dispatch order — a batch mixing urgent
    /// and background requests drains the urgent jobs first.
    Priority {
        /// Priority class per job, indexed by job id; must have exactly
        /// `jobs` entries.
        class: Vec<u8>,
    },
}

/// Supervision parameters, lifted verbatim from the former
/// `farm::supervisor::MasterState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Per-dispatch deadline: a job in flight longer than this is
    /// presumed lost and requeued.
    pub deadline_ns: u64,
    /// Total dispatch budget per job; once `attempts == max_attempts`
    /// the job is abandoned as permanently failed.
    pub max_attempts: u32,
    /// Base retry backoff; attempt `n` is delayed by
    /// `backoff_base_ns << min(n - 1, 16)`.
    pub backoff_base_ns: u64,
}

/// Static description of one farm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Number of jobs (`0..jobs`).
    pub jobs: usize,
    /// Number of slaves (`1..=slaves`).
    pub slaves: usize,
    /// Jobs per dispatch (plain mode only; must be 1 under
    /// supervision, and batching requires FIFO order).
    pub batch: usize,
    /// Dispatch order.
    pub policy: DispatchPolicy,
    /// `Some` enables supervised mode (deadlines, retries, burial);
    /// `None` is the trusting Fig. 4 master.
    pub supervision: Option<Supervision>,
    /// `Some(r)` declares staged rounds: `r[job]` is the round the job
    /// belongs to, and no job of round `k` may be dispatched while an
    /// earlier round still has unfinished work. This is the
    /// cross-round-dependency shape of Picard-iterated BSDE workloads
    /// (Labart–Lelong): round `k + 1`'s jobs are built from round `k`'s
    /// answers, so the scheduler must hold them back until the barrier
    /// clears. `None` (the default) is the historical flat job set.
    pub rounds: Option<Vec<usize>>,
    /// Record a decision [`Trace`].
    pub record_trace: bool,
}

impl SchedConfig {
    /// A plain FIFO config with no supervision, batch 1, no trace.
    pub fn plain(jobs: usize, slaves: usize) -> Self {
        SchedConfig {
            jobs,
            slaves,
            batch: 1,
            policy: DispatchPolicy::Fifo,
            supervision: None,
            rounds: None,
            record_trace: false,
        }
    }

    /// Set the batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Set the dispatch policy.
    pub fn policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable supervision.
    pub fn supervised(mut self, sup: Supervision) -> Self {
        self.supervision = Some(sup);
        self
    }

    /// Declare staged rounds: `rounds[job]` is the job's round index.
    pub fn rounds(mut self, rounds: Vec<usize>) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Record the decision trace.
    pub fn record_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// A rejected [`SchedConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// `slaves == 0`.
    NoSlaves,
    /// `batch == 0`.
    NoBatch,
    /// Batched dispatch requires FIFO order (batches are contiguous
    /// index ranges).
    BatchNeedsFifo,
    /// Batched dispatch is incompatible with supervision (per-job
    /// deadlines and retries assume one job per dispatch).
    BatchNeedsPlain,
    /// An LPT cost vector whose length does not match `jobs`.
    LptLen {
        /// Provided cost entries.
        costs: usize,
        /// Jobs in the run.
        jobs: usize,
    },
    /// A priority class vector whose length does not match `jobs`.
    PriorityLen {
        /// Provided class entries.
        classes: usize,
        /// Jobs in the run.
        jobs: usize,
    },
    /// `max_attempts == 0` can never dispatch anything.
    ZeroAttempts,
    /// A rounds vector whose length does not match `jobs`.
    RoundsLen {
        /// Provided round entries.
        rounds: usize,
        /// Jobs in the run.
        jobs: usize,
    },
    /// Staged rounds are incompatible with batched dispatch (batches
    /// are contiguous index ranges; a batch could straddle a barrier).
    RoundsNeedUnitBatch,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoSlaves => write!(f, "scheduler needs at least one slave"),
            SchedError::NoBatch => write!(f, "batch size must be at least 1"),
            SchedError::BatchNeedsFifo => {
                write!(f, "batched dispatch requires the FIFO policy")
            }
            SchedError::BatchNeedsPlain => {
                write!(f, "batched dispatch is incompatible with supervision")
            }
            SchedError::LptLen { costs, jobs } => {
                write!(f, "LPT cost vector has {costs} entries for {jobs} jobs")
            }
            SchedError::PriorityLen { classes, jobs } => {
                write!(
                    f,
                    "priority class vector has {classes} entries for {jobs} jobs"
                )
            }
            SchedError::ZeroAttempts => write!(f, "max_attempts must be at least 1"),
            SchedError::RoundsLen { rounds, jobs } => {
                write!(f, "rounds vector has {rounds} entries for {jobs} jobs")
            }
            SchedError::RoundsNeedUnitBatch => {
                write!(f, "staged rounds require batch size 1")
            }
        }
    }
}

impl std::error::Error for SchedError {}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// One `event -> actions` decision, with no timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The consumed event.
    pub event: Event,
    /// The emitted actions (never empty: decision-free events are not
    /// recorded).
    pub actions: Vec<Action>,
}

/// The serializable decision log of one run: every event that produced
/// at least one action, in order, with the actions it produced.
///
/// Because entries carry no clock values, a live farm and a simulated
/// farm that observe the same logical event sequence render the same
/// bytes — the parity invariant of `tests/sched_parity.rs`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The recorded decisions.
    pub entries: Vec<TraceEntry>,
}

fn render_event(ev: &Event, out: &mut String) {
    use std::fmt::Write;
    match *ev {
        Event::SlaveReady { slave } => write!(out, "ready({slave})"),
        Event::Answer { job, slave } => write!(out, "answer({job},{slave})"),
        Event::Failure { job, slave } => write!(out, "failure({job},{slave})"),
        Event::Deadline => write!(out, "deadline"),
        Event::SlaveDead { slave } => write!(out, "dead({slave})"),
        Event::SendFailed { job, slave } => write!(out, "sendfail({job},{slave})"),
    }
    .expect("writing to String cannot fail");
}

fn render_action(a: &Action, out: &mut String) {
    use std::fmt::Write;
    match *a {
        Action::Dispatch { job, slave, batch } => {
            if batch == 1 {
                write!(out, "dispatch({job}->{slave})")
            } else {
                write!(out, "dispatch({job}..{}->{slave})", job + batch)
            }
        }
        Action::Stop { slave } => write!(out, "stop({slave})"),
        Action::Accept { job, slave } => write!(out, "accept({job},{slave})"),
        Action::Expire { job, slave } => write!(out, "expire({job},{slave})"),
        Action::Requeue { job } => write!(out, "requeue({job})"),
        Action::Bury { slave } => write!(out, "bury({slave})"),
        Action::AllSlavesDead => write!(out, "abort"),
        Action::Finish => write!(out, "finish"),
    }
    .expect("writing to String cannot fail");
}

impl Trace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical text form, one `event -> action action ...` line per
    /// entry. Byte-comparable across live and simulated runs.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            render_event(&e.event, &mut s);
            s.push_str(" ->");
            for a in &e.actions {
                s.push(' ');
                render_action(a, &mut s);
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlaveState {
    Idle,
    Busy,
    Stopped,
    Dead,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    job: usize,
    /// Jobs in this dispatch (`job .. job + batch`); always 1 under
    /// supervision.
    batch: usize,
    /// The `not_before` the job was popped with (restored verbatim if
    /// the dispatch send fails).
    not_before_ns: u64,
    deadline_ns: u64,
}

/// The deterministic Robin Hood master, as a pure state machine.
///
/// Feed it [`Event`]s via [`Scheduler::on`]; execute the returned
/// [`Action`]s in order. Every event handler ends with an implicit
/// dispatch pass (feed every free slave) and a finish check, so the
/// returned action list is always complete — there is no separate
/// "tick" entry point to call.
#[derive(Debug, Clone)]
pub struct Scheduler {
    jobs: usize,
    slaves: usize,
    batch: usize,
    supervision: Option<Supervision>,
    /// (job, not_before_ns) in dispatch order.
    queue: VecDeque<(usize, u64)>,
    /// Slave `s` has sent [`Event::SlaveReady`]; index 0 unused.
    ready: Vec<bool>,
    state: Vec<SlaveState>,
    inflight: Vec<Option<Inflight>>,
    attempts: Vec<u32>,
    done: Vec<bool>,
    failed: Vec<bool>,
    /// `Some(round_of)` when staged rounds are declared.
    round_of: Option<Vec<usize>>,
    /// Unfinished jobs per round (staged mode only).
    pending_per_round: Vec<usize>,
    /// First round with pending work; `pending_per_round.len()` once
    /// every round is drained.
    cur_round: usize,
    retries: u64,
    /// Plain mode: dispatches in flight (batches, not jobs).
    outstanding: usize,
    ready_seen: usize,
    finished: bool,
    aborted: bool,
    trace: Option<Trace>,
}

impl Scheduler {
    /// Build a scheduler for one run, validating the configuration.
    pub fn new(cfg: SchedConfig) -> Result<Scheduler, SchedError> {
        if cfg.slaves == 0 {
            return Err(SchedError::NoSlaves);
        }
        if cfg.batch == 0 {
            return Err(SchedError::NoBatch);
        }
        if cfg.batch > 1 {
            if cfg.supervision.is_some() {
                return Err(SchedError::BatchNeedsPlain);
            }
            if !matches!(cfg.policy, DispatchPolicy::Fifo) {
                return Err(SchedError::BatchNeedsFifo);
            }
        }
        if let Some(sup) = &cfg.supervision {
            if sup.max_attempts == 0 {
                return Err(SchedError::ZeroAttempts);
            }
        }
        if let Some(rounds) = &cfg.rounds {
            if rounds.len() != cfg.jobs {
                return Err(SchedError::RoundsLen {
                    rounds: rounds.len(),
                    jobs: cfg.jobs,
                });
            }
            if cfg.batch > 1 {
                return Err(SchedError::RoundsNeedUnitBatch);
            }
        }
        let order: Vec<usize> = match &cfg.policy {
            DispatchPolicy::Fifo => (0..cfg.jobs).collect(),
            DispatchPolicy::Lpt { costs } => {
                if costs.len() != cfg.jobs {
                    return Err(SchedError::LptLen {
                        costs: costs.len(),
                        jobs: cfg.jobs,
                    });
                }
                let mut idx: Vec<usize> = (0..cfg.jobs).collect();
                // Descending cost; stable, so ties keep index order.
                idx.sort_by(|&a, &b| {
                    costs[b]
                        .partial_cmp(&costs[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                idx
            }
            DispatchPolicy::Priority { class } => {
                if class.len() != cfg.jobs {
                    return Err(SchedError::PriorityLen {
                        classes: class.len(),
                        jobs: cfg.jobs,
                    });
                }
                let mut idx: Vec<usize> = (0..cfg.jobs).collect();
                // Ascending class; stable, so FIFO within a class.
                idx.sort_by_key(|&j| class[j]);
                idx
            }
        };
        // Staged rounds: round-major queue order, policy order within a
        // round (the sort is stable), plus per-round pending counters.
        let (order, pending_per_round) = if let Some(rounds) = &cfg.rounds {
            let mut idx = order;
            idx.sort_by_key(|&j| rounds[j]);
            let n_rounds = rounds.iter().map(|&r| r + 1).max().unwrap_or(0);
            let mut pending = vec![0usize; n_rounds];
            for &r in rounds {
                pending[r] += 1;
            }
            (idx, pending)
        } else {
            (order, Vec::new())
        };
        // Skip rounds that were declared empty.
        let mut cur_round = 0;
        while cur_round < pending_per_round.len() && pending_per_round[cur_round] == 0 {
            cur_round += 1;
        }
        Ok(Scheduler {
            jobs: cfg.jobs,
            slaves: cfg.slaves,
            batch: cfg.batch,
            supervision: cfg.supervision,
            queue: order.into_iter().map(|j| (j, 0)).collect(),
            ready: vec![false; cfg.slaves + 1],
            state: vec![SlaveState::Idle; cfg.slaves + 1],
            inflight: vec![None; cfg.slaves + 1],
            attempts: vec![0; cfg.jobs],
            done: vec![false; cfg.jobs],
            failed: vec![false; cfg.jobs],
            round_of: cfg.rounds,
            pending_per_round,
            cur_round,
            retries: 0,
            outstanding: 0,
            ready_seen: 0,
            finished: false,
            aborted: false,
            trace: cfg.record_trace.then(Trace::default),
        })
    }

    // -- queries ----------------------------------------------------------

    /// All work dispatched and answered (or abandoned) and every live
    /// slave stopped; [`Action::Finish`] has been emitted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Every slave died with work remaining; [`Action::AllSlavesDead`]
    /// has been emitted.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Finished or aborted: the scheduler accepts no further events.
    pub fn is_terminal(&self) -> bool {
        self.finished || self.aborted
    }

    /// Has `slave` been buried?
    pub fn is_dead(&self, slave: usize) -> bool {
        slave <= self.slaves && self.state[slave] == SlaveState::Dead
    }

    /// Jobs with an accepted answer.
    pub fn done_count(&self) -> usize {
        self.done.iter().filter(|d| **d).count()
    }

    /// Jobs neither answered nor permanently failed.
    pub fn unfinished(&self) -> usize {
        (0..self.jobs)
            .filter(|&j| !self.done[j] && !self.failed[j])
            .count()
    }

    /// Total requeues performed (the retry counter of the old
    /// supervised master).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Jobs abandoned after exhausting their attempt budget, ascending.
    pub fn failed_jobs(&self) -> Vec<usize> {
        (0..self.jobs).filter(|&j| self.failed[j]).collect()
    }

    /// Buried slaves, ascending.
    pub fn dead_slaves(&self) -> Vec<usize> {
        (1..=self.slaves)
            .filter(|&s| self.state[s] == SlaveState::Dead)
            .collect()
    }

    /// The first round with unfinished work, or `None` when rounds are
    /// not declared or every round is drained.
    pub fn current_round(&self) -> Option<usize> {
        self.round_of.as_ref()?;
        (self.cur_round < self.pending_per_round.len()).then_some(self.cur_round)
    }

    /// Rounds fully drained so far (staged mode only; `None` when the
    /// run is flat).
    pub fn rounds_drained(&self) -> Option<usize> {
        self.round_of.as_ref().map(|_| self.cur_round)
    }

    /// The recorded decision trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take ownership of the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    // -- the state machine ------------------------------------------------

    /// Consume one event at (monotonic, driver-supplied) time `now_ns`
    /// and return the actions the master must take, in order.
    ///
    /// `now_ns` feeds deadlines and retry backoffs only; it is never
    /// recorded in the trace. Terminal schedulers ([`Self::is_terminal`])
    /// return no actions. Unknown slaves, repeated events and
    /// supervision-only events in plain mode are ignored.
    pub fn on(&mut self, event: Event, now_ns: u64) -> Vec<Action> {
        if self.is_terminal() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let supervised = self.supervision.is_some();
        match event {
            Event::SlaveReady { slave } => {
                if self.valid_slave(slave) && !self.ready[slave] {
                    self.ready[slave] = true;
                    self.ready_seen += 1;
                }
            }
            Event::Answer { job, slave } => {
                if !self.valid_slave(slave) {
                    return Vec::new();
                }
                if supervised {
                    // Free the slave only when the answer matches what
                    // it was sent (stale answers after an expiry must
                    // not free a slave that is busy with another job).
                    if self.state[slave] == SlaveState::Busy
                        && self.inflight[slave].map(|i| i.job) == Some(job)
                    {
                        self.state[slave] = SlaveState::Idle;
                        self.inflight[slave] = None;
                    }
                    // First answer wins; duplicates are dropped.
                    if job < self.jobs && !self.done[job] && !self.failed[job] {
                        self.mark_done(job);
                        out.push(Action::Accept { job, slave });
                    }
                } else if self.state[slave] == SlaveState::Busy {
                    let inf = self.inflight[slave].take();
                    self.state[slave] = SlaveState::Idle;
                    self.outstanding -= 1;
                    // The whole batch answered together.
                    if let Some(inf) = inf {
                        for j in inf.job..(inf.job + inf.batch).min(self.jobs) {
                            self.mark_done(j);
                        }
                    }
                    out.push(Action::Accept { job, slave });
                }
            }
            Event::Failure { job, slave } => {
                if !(supervised && self.valid_slave(slave)) {
                    return Vec::new();
                }
                if self.state[slave] == SlaveState::Busy
                    && self.inflight[slave].map(|i| i.job) == Some(job)
                {
                    self.state[slave] = SlaveState::Idle;
                    self.inflight[slave] = None;
                }
                if job < self.jobs {
                    self.requeue(job, now_ns, &mut out);
                }
            }
            Event::Deadline => {
                if supervised {
                    for slave in 1..=self.slaves {
                        let Some(inf) = self.inflight[slave] else {
                            continue;
                        };
                        if now_ns >= inf.deadline_ns {
                            self.inflight[slave] = None;
                            self.state[slave] = SlaveState::Idle;
                            out.push(Action::Expire {
                                job: inf.job,
                                slave,
                            });
                            self.requeue(inf.job, now_ns, &mut out);
                        }
                    }
                }
            }
            Event::SlaveDead { slave } => {
                if !(supervised && self.valid_slave(slave)) || self.state[slave] == SlaveState::Dead
                {
                    return Vec::new();
                }
                self.bury(slave, now_ns, &mut out);
                if self.abort_check(&mut out) {
                    self.record(event, &out);
                    return out;
                }
            }
            Event::SendFailed { job, slave } => {
                if !(supervised && self.valid_slave(slave)) {
                    return Vec::new();
                }
                // Reverse the optimistic dispatch: the attempt is not
                // counted and the job goes back to the *front* of the
                // queue with its original not-before, exactly like the
                // old master's deferred list.
                if let Some(inf) = self.inflight[slave].take() {
                    debug_assert_eq!(inf.job, job);
                    self.attempts[inf.job] = self.attempts[inf.job].saturating_sub(1);
                    self.queue.push_front((inf.job, inf.not_before_ns));
                }
                if self.state[slave] != SlaveState::Dead {
                    self.state[slave] = SlaveState::Dead;
                    out.push(Action::Bury { slave });
                }
                if self.abort_check(&mut out) {
                    self.record(event, &out);
                    return out;
                }
            }
        }
        self.dispatch_pass(now_ns, &mut out);
        self.finish_check(&mut out);
        self.record(event, &out);
        out
    }

    fn valid_slave(&self, slave: usize) -> bool {
        (1..=self.slaves).contains(&slave)
    }

    fn alive_count(&self) -> usize {
        (1..=self.slaves)
            .filter(|&s| self.state[s] != SlaveState::Dead)
            .count()
    }

    /// Mark `job` answered and advance the round barrier.
    fn mark_done(&mut self, job: usize) {
        if !self.done[job] {
            self.done[job] = true;
            self.settle_round(job);
        }
    }

    /// Mark `job` permanently failed and advance the round barrier (an
    /// abandoned job must not wedge the rounds behind it forever).
    fn mark_failed(&mut self, job: usize) {
        if !self.failed[job] {
            self.failed[job] = true;
            self.settle_round(job);
        }
    }

    fn settle_round(&mut self, job: usize) {
        if let Some(rounds) = &self.round_of {
            let r = rounds[job];
            self.pending_per_round[r] -= 1;
            while self.cur_round < self.pending_per_round.len()
                && self.pending_per_round[self.cur_round] == 0
            {
                self.cur_round += 1;
            }
        }
    }

    /// Is `job` held back by the round barrier?
    fn round_blocked(&self, job: usize) -> bool {
        match &self.round_of {
            Some(rounds) => rounds[job] > self.cur_round,
            None => false,
        }
    }

    /// Requeue `job` within its attempt budget (verbatim the old
    /// `MasterState::requeue`): exhausting the budget marks it
    /// permanently failed, otherwise it rejoins the back of the queue
    /// with exponential backoff and a [`Action::Requeue`] is emitted.
    fn requeue(&mut self, job: usize, now_ns: u64, out: &mut Vec<Action>) {
        let sup = self.supervision.expect("requeue is supervised-only");
        if self.done[job] || self.failed[job] {
            return;
        }
        if self.attempts[job] >= sup.max_attempts {
            self.mark_failed(job);
            return;
        }
        self.retries += 1;
        let exp = self.attempts[job].saturating_sub(1).min(16);
        let backoff = sup.backoff_base_ns.saturating_mul(1u64 << exp);
        self.queue.push_back((job, now_ns.saturating_add(backoff)));
        out.push(Action::Requeue { job });
    }

    /// Bury `slave`, requeueing whatever it had in flight.
    fn bury(&mut self, slave: usize, now_ns: u64, out: &mut Vec<Action>) {
        self.state[slave] = SlaveState::Dead;
        out.push(Action::Bury { slave });
        if let Some(inf) = self.inflight[slave].take() {
            self.requeue(inf.job, now_ns, out);
        }
    }

    /// Abort when no slave is left alive with work remaining.
    fn abort_check(&mut self, out: &mut Vec<Action>) -> bool {
        if self.alive_count() == 0 && self.unfinished() > 0 {
            self.aborted = true;
            out.push(Action::AllSlavesDead);
            true
        } else {
            false
        }
    }

    /// The queue position of the next dispatchable job: the first entry
    /// that is neither settled nor held back by the round barrier
    /// (settled entries ahead of it are dropped on the way). Without
    /// rounds this only ever looks at the front — the historical
    /// behaviour, byte-for-byte.
    fn next_dispatchable(&mut self) -> Option<usize> {
        let mut i = 0;
        while i < self.queue.len() {
            let (job, _) = self.queue[i];
            if self.done[job] || self.failed[job] {
                self.queue.remove(i);
                continue;
            }
            if self.round_blocked(job) {
                i += 1;
                continue;
            }
            return Some(i);
        }
        None
    }

    /// Feed every free slave (the implicit tail of every event).
    fn dispatch_pass(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        if let Some(sup) = self.supervision {
            while let Some(i) = self.next_dispatchable() {
                let (job, not_before) = self.queue[i];
                // An embargoed retry blocks the pass (strict order
                // within the unlocked rounds, exactly as the flat
                // master treats its queue front).
                if not_before > now_ns {
                    break;
                }
                let Some(slave) = self.free_slave() else {
                    break;
                };
                self.queue.remove(i);
                self.attempts[job] += 1;
                self.state[slave] = SlaveState::Busy;
                self.inflight[slave] = Some(Inflight {
                    job,
                    batch: 1,
                    not_before_ns: not_before,
                    deadline_ns: now_ns.saturating_add(sup.deadline_ns),
                });
                out.push(Action::Dispatch {
                    job,
                    slave,
                    batch: 1,
                });
            }
        } else {
            while let Some(slave) = self.free_slave() {
                if let Some(i) = self.next_dispatchable() {
                    let (first, _) = self.queue.remove(i).expect("index in range");
                    // Batching is FIFO-only and flat-only (validated),
                    // so any batch tail continues from the queue front.
                    let mut n = 1;
                    while n < self.batch {
                        match self.queue.pop_front() {
                            Some((j, _)) => {
                                // FIFO-only batching keeps ranges contiguous.
                                debug_assert_eq!(j, first + n);
                                n += 1;
                            }
                            None => break,
                        }
                    }
                    self.state[slave] = SlaveState::Busy;
                    self.inflight[slave] = Some(Inflight {
                        job: first,
                        batch: n,
                        not_before_ns: 0,
                        deadline_ns: u64::MAX,
                    });
                    self.outstanding += 1;
                    out.push(Action::Dispatch {
                        job: first,
                        slave,
                        batch: n,
                    });
                } else if self.queue.is_empty() {
                    self.state[slave] = SlaveState::Stopped;
                    out.push(Action::Stop { slave });
                } else {
                    // Jobs remain but every one is behind the round
                    // barrier: leave the slave idle — an answer from a
                    // busy slave will unlock the next round and feed it.
                    break;
                }
            }
        }
    }

    /// The lowest ready, idle slave.
    fn free_slave(&self) -> Option<usize> {
        (1..=self.slaves).find(|&s| self.ready[s] && self.state[s] == SlaveState::Idle)
    }

    /// Emit `Stop`s and `Finish` when the run is complete.
    fn finish_check(&mut self, out: &mut Vec<Action>) {
        if self.is_terminal() {
            return;
        }
        if self.supervision.is_some() {
            if self.unfinished() == 0 {
                // The old supervised shutdown: stop every non-dead
                // slave, in rank order (idle or not — slaves that never
                // saw a job still need the sentinel).
                for slave in 1..=self.slaves {
                    if self.state[slave] != SlaveState::Dead
                        && self.state[slave] != SlaveState::Stopped
                    {
                        self.state[slave] = SlaveState::Stopped;
                        out.push(Action::Stop { slave });
                    }
                }
                self.finished = true;
                out.push(Action::Finish);
            }
        } else if self.ready_seen == self.slaves && self.outstanding == 0 && self.queue.is_empty() {
            self.finished = true;
            out.push(Action::Finish);
        }
    }

    fn record(&mut self, event: Event, actions: &[Action]) {
        if actions.is_empty() {
            return;
        }
        if let Some(trace) = &mut self.trace {
            trace.entries.push(TraceEntry {
                event,
                actions: actions.to_vec(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn sup() -> Supervision {
        Supervision {
            deadline_ns: 200_000_000,
            max_attempts: 4,
            backoff_base_ns: 5_000_000,
        }
    }

    /// Feed `SlaveReady` for every slave, collecting actions.
    fn prime(s: &mut Scheduler, slaves: usize) -> Vec<Action> {
        let mut out = Vec::new();
        for k in 1..=slaves {
            out.extend(s.on(Event::SlaveReady { slave: k }, 0));
        }
        out
    }

    #[test]
    fn plain_fifo_runs_the_fig4_protocol() {
        let mut s = Scheduler::new(SchedConfig::plain(3, 2).record_trace()).unwrap();
        assert_eq!(
            prime(&mut s, 2),
            vec![
                Action::Dispatch {
                    job: 0,
                    slave: 1,
                    batch: 1
                },
                Action::Dispatch {
                    job: 1,
                    slave: 2,
                    batch: 1
                },
            ]
        );
        assert_eq!(
            s.on(Event::Answer { job: 0, slave: 1 }, 0),
            vec![
                Action::Accept { job: 0, slave: 1 },
                Action::Dispatch {
                    job: 2,
                    slave: 1,
                    batch: 1
                },
            ]
        );
        assert_eq!(
            s.on(Event::Answer { job: 1, slave: 2 }, 0),
            vec![
                Action::Accept { job: 1, slave: 2 },
                Action::Stop { slave: 2 }
            ]
        );
        assert_eq!(
            s.on(Event::Answer { job: 2, slave: 1 }, 0),
            vec![
                Action::Accept { job: 2, slave: 1 },
                Action::Stop { slave: 1 },
                Action::Finish,
            ]
        );
        assert!(s.finished());
        assert_eq!(s.done_count(), 3);
        let trace = s.take_trace().unwrap();
        assert_eq!(
            trace.render(),
            "ready(1) -> dispatch(0->1)\n\
             ready(2) -> dispatch(1->2)\n\
             answer(0,1) -> accept(0,1) dispatch(2->1)\n\
             answer(1,2) -> accept(1,2) stop(2)\n\
             answer(2,1) -> accept(2,1) stop(1) finish\n"
        );
    }

    #[test]
    fn plain_with_no_jobs_stops_everyone_then_finishes() {
        let mut s = Scheduler::new(SchedConfig::plain(0, 3)).unwrap();
        assert_eq!(
            s.on(Event::SlaveReady { slave: 1 }, 0),
            vec![Action::Stop { slave: 1 }]
        );
        assert_eq!(
            s.on(Event::SlaveReady { slave: 2 }, 0),
            vec![Action::Stop { slave: 2 }]
        );
        assert_eq!(
            s.on(Event::SlaveReady { slave: 3 }, 0),
            vec![Action::Stop { slave: 3 }, Action::Finish]
        );
    }

    #[test]
    fn batching_dispatches_contiguous_ranges() {
        let mut s = Scheduler::new(SchedConfig::plain(5, 2).batch(2)).unwrap();
        assert_eq!(
            prime(&mut s, 2),
            vec![
                Action::Dispatch {
                    job: 0,
                    slave: 1,
                    batch: 2
                },
                Action::Dispatch {
                    job: 2,
                    slave: 2,
                    batch: 2
                },
            ]
        );
        // The tail batch is short.
        assert_eq!(
            s.on(Event::Answer { job: 0, slave: 1 }, 0),
            vec![
                Action::Accept { job: 0, slave: 1 },
                Action::Dispatch {
                    job: 4,
                    slave: 1,
                    batch: 1
                },
            ]
        );
        assert_eq!(
            s.on(Event::Answer { job: 2, slave: 2 }, 0),
            vec![
                Action::Accept { job: 2, slave: 2 },
                Action::Stop { slave: 2 }
            ]
        );
        assert_eq!(
            s.on(Event::Answer { job: 4, slave: 1 }, 0),
            vec![
                Action::Accept { job: 4, slave: 1 },
                Action::Stop { slave: 1 },
                Action::Finish,
            ]
        );
    }

    #[test]
    fn lpt_orders_by_descending_cost_with_stable_ties() {
        let cfg = SchedConfig::plain(4, 1).policy(DispatchPolicy::Lpt {
            costs: vec![1.0, 3.0, 3.0, 2.0],
        });
        let mut s = Scheduler::new(cfg).unwrap();
        let mut order = Vec::new();
        let mut acts = prime(&mut s, 1);
        loop {
            let mut answered = None;
            for a in &acts {
                if let Action::Dispatch { job, slave, .. } = *a {
                    order.push(job);
                    answered = Some((job, slave));
                }
            }
            match answered {
                Some((job, slave)) => acts = s.on(Event::Answer { job, slave }, 0),
                None => break,
            }
        }
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert!(s.finished());
    }

    #[test]
    fn priority_orders_by_ascending_class_fifo_within() {
        let cfg = SchedConfig::plain(5, 1).policy(DispatchPolicy::Priority {
            class: vec![2, 0, 1, 0, 2],
        });
        let mut s = Scheduler::new(cfg).unwrap();
        let mut order = Vec::new();
        let mut acts = prime(&mut s, 1);
        loop {
            let mut answered = None;
            for a in &acts {
                if let Action::Dispatch { job, slave, .. } = *a {
                    order.push(job);
                    answered = Some((job, slave));
                }
            }
            match answered {
                Some((job, slave)) => acts = s.on(Event::Answer { job, slave }, 0),
                None => break,
            }
        }
        // Class 0 jobs first in index order, then class 1, then class 2.
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
        assert!(s.finished());
    }

    #[test]
    fn priority_uniform_classes_match_fifo() {
        for jobs in [0usize, 1, 4, 7] {
            let fifo = SchedConfig::plain(jobs, 2);
            let prio = SchedConfig::plain(jobs, 2).policy(DispatchPolicy::Priority {
                class: vec![3; jobs],
            });
            let mut a = Scheduler::new(fifo).unwrap();
            let mut b = Scheduler::new(prio).unwrap();
            for slave in 1..=2 {
                assert_eq!(
                    a.on(Event::SlaveReady { slave }, 0),
                    b.on(Event::SlaveReady { slave }, 0)
                );
            }
        }
    }

    #[test]
    fn priority_class_length_is_validated() {
        assert_eq!(
            Scheduler::new(
                SchedConfig::plain(3, 1).policy(DispatchPolicy::Priority { class: vec![0] })
            )
            .unwrap_err(),
            SchedError::PriorityLen {
                classes: 1,
                jobs: 3
            }
        );
        assert_eq!(
            Scheduler::new(
                SchedConfig::plain(2, 1)
                    .batch(2)
                    .policy(DispatchPolicy::Priority { class: vec![0, 1] })
            )
            .unwrap_err(),
            SchedError::BatchNeedsFifo
        );
    }

    #[test]
    fn supervised_requeues_on_failure_with_backoff() {
        let cfg = SchedConfig::plain(2, 1).supervised(sup());
        let mut s = Scheduler::new(cfg).unwrap();
        assert_eq!(
            prime(&mut s, 1),
            vec![Action::Dispatch {
                job: 0,
                slave: 1,
                batch: 1
            }]
        );
        // Failure requeues job 0 to the *back*, so job 1 (now at the
        // front) goes out to the freed slave in the same decision.
        assert_eq!(
            s.on(Event::Failure { job: 0, slave: 1 }, 1_000),
            vec![
                Action::Requeue { job: 0 },
                Action::Dispatch {
                    job: 1,
                    slave: 1,
                    batch: 1
                },
            ]
        );
        assert_eq!(s.retries(), 1);
        // Job 1 answers before job 0's backoff elapses: the retry is
        // embargoed, so the slave sits idle.
        assert_eq!(
            s.on(Event::Answer { job: 1, slave: 1 }, 2_000),
            vec![Action::Accept { job: 1, slave: 1 }]
        );
        assert_eq!(s.on(Event::Deadline, 2_500), vec![]);
        // After the backoff the job goes out again.
        let later = 1_000 + sup().backoff_base_ns + 1;
        assert_eq!(
            s.on(Event::Deadline, later),
            vec![Action::Dispatch {
                job: 0,
                slave: 1,
                batch: 1
            }]
        );
    }

    #[test]
    fn supervised_deadline_expires_and_exhausts_the_budget() {
        let cfg = SchedConfig::plain(1, 1).supervised(Supervision {
            deadline_ns: 100,
            max_attempts: 2,
            backoff_base_ns: 0,
        });
        let mut s = Scheduler::new(cfg).unwrap();
        assert_eq!(
            prime(&mut s, 1),
            vec![Action::Dispatch {
                job: 0,
                slave: 1,
                batch: 1
            }]
        );
        // First expiry: requeue + immediate redispatch (zero backoff).
        assert_eq!(
            s.on(Event::Deadline, 150),
            vec![
                Action::Expire { job: 0, slave: 1 },
                Action::Requeue { job: 0 },
                Action::Dispatch {
                    job: 0,
                    slave: 1,
                    batch: 1
                },
            ]
        );
        // Second expiry: the budget (2 attempts) is spent — the job is
        // abandoned and the run finishes.
        assert_eq!(
            s.on(Event::Deadline, 300),
            vec![
                Action::Expire { job: 0, slave: 1 },
                Action::Stop { slave: 1 },
                Action::Finish,
            ]
        );
        assert_eq!(s.failed_jobs(), vec![0]);
        assert_eq!(s.retries(), 1);
    }

    #[test]
    fn duplicate_answers_are_deduplicated() {
        let cfg = SchedConfig::plain(2, 2).supervised(sup());
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 2);
        // Deadline expires job 0 on slave 1, which gets redispatched to
        // slave 1 again (lowest idle).
        let acts = s.on(Event::Deadline, sup().deadline_ns + 1);
        assert!(acts.contains(&Action::Expire { job: 0, slave: 1 }));
        // The original (late) answer arrives from slave 1 — accepted,
        // it was first.
        let acts = s.on(Event::Answer { job: 0, slave: 1 }, sup().deadline_ns + 2);
        assert!(acts.contains(&Action::Accept { job: 0, slave: 1 }));
        // The retry's answer is a duplicate: no second accept.
        let acts = s.on(Event::Answer { job: 0, slave: 1 }, sup().deadline_ns + 3);
        assert!(!acts
            .iter()
            .any(|a| matches!(a, Action::Accept { job: 0, .. })));
        assert_eq!(s.done_count(), 1);
    }

    #[test]
    fn burial_requeues_inflight_and_last_death_aborts() {
        let cfg = SchedConfig::plain(3, 2).supervised(sup());
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 2);
        let acts = s.on(Event::SlaveDead { slave: 1 }, 10);
        assert_eq!(
            acts,
            vec![Action::Bury { slave: 1 }, Action::Requeue { job: 0 }]
        );
        assert_eq!(s.dead_slaves(), vec![1]);
        let acts = s.on(Event::SlaveDead { slave: 2 }, 20);
        assert_eq!(
            acts,
            vec![
                Action::Bury { slave: 2 },
                Action::Requeue { job: 1 },
                Action::AllSlavesDead,
            ]
        );
        assert!(s.aborted());
        assert_eq!(s.unfinished(), 3);
        // Terminal: no further decisions.
        assert_eq!(s.on(Event::Deadline, 30), vec![]);
    }

    #[test]
    fn send_failure_reverses_the_attempt_and_front_requeues() {
        let cfg = SchedConfig::plain(2, 2).supervised(sup());
        let mut s = Scheduler::new(cfg).unwrap();
        // Only slave 1 is up; both jobs would go to it one at a time.
        let acts = s.on(Event::SlaveReady { slave: 1 }, 0);
        assert_eq!(
            acts,
            vec![Action::Dispatch {
                job: 0,
                slave: 1,
                batch: 1
            }]
        );
        // The send bounced: bury slave 1; job 0 keeps queue priority
        // and its attempt is uncounted.
        let acts = s.on(Event::SendFailed { job: 0, slave: 1 }, 5);
        assert_eq!(acts, vec![Action::Bury { slave: 1 }]);
        assert_eq!(s.retries(), 0);
        // Slave 2 comes up and gets job 0 *first* (front requeue), with
        // its full attempt budget intact.
        let acts = s.on(Event::SlaveReady { slave: 2 }, 10);
        assert_eq!(
            acts,
            vec![Action::Dispatch {
                job: 0,
                slave: 2,
                batch: 1
            }]
        );
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert_eq!(
            Scheduler::new(SchedConfig::plain(1, 0)).unwrap_err(),
            SchedError::NoSlaves
        );
        assert_eq!(
            Scheduler::new(SchedConfig::plain(1, 1).batch(0)).unwrap_err(),
            SchedError::NoBatch
        );
        assert_eq!(
            Scheduler::new(SchedConfig::plain(1, 1).batch(2).supervised(sup())).unwrap_err(),
            SchedError::BatchNeedsPlain
        );
        assert_eq!(
            Scheduler::new(
                SchedConfig::plain(2, 1)
                    .batch(2)
                    .policy(DispatchPolicy::Lpt {
                        costs: vec![1.0, 2.0]
                    })
            )
            .unwrap_err(),
            SchedError::BatchNeedsFifo
        );
        assert_eq!(
            Scheduler::new(
                SchedConfig::plain(2, 1).policy(DispatchPolicy::Lpt { costs: vec![1.0] })
            )
            .unwrap_err(),
            SchedError::LptLen { costs: 1, jobs: 2 }
        );
        assert_eq!(
            Scheduler::new(SchedConfig::plain(1, 1).supervised(Supervision {
                deadline_ns: 1,
                max_attempts: 0,
                backoff_base_ns: 0,
            }))
            .unwrap_err(),
            SchedError::ZeroAttempts
        );
    }

    /// Drive a scheduler to termination answering every dispatch in
    /// emission order, returning the dispatch order observed.
    fn drain(s: &mut Scheduler, slaves: usize) -> Vec<usize> {
        let mut order = Vec::new();
        let mut pending: VecDeque<(usize, usize)> = VecDeque::new();
        let mut acts = prime(s, slaves);
        loop {
            for a in &acts {
                if let Action::Dispatch { job, slave, .. } = *a {
                    order.push(job);
                    pending.push_back((job, slave));
                }
            }
            match pending.pop_front() {
                Some((job, slave)) => acts = s.on(Event::Answer { job, slave }, 0),
                None => break,
            }
        }
        order
    }

    #[test]
    fn uniform_rounds_match_the_flat_machine_byte_for_byte() {
        for jobs in [0usize, 1, 3, 7] {
            for supervised in [false, true] {
                let mut flat = SchedConfig::plain(jobs, 2).record_trace();
                let mut staged = SchedConfig::plain(jobs, 2)
                    .rounds(vec![0; jobs])
                    .record_trace();
                if supervised {
                    flat = flat.supervised(sup());
                    staged = staged.supervised(sup());
                }
                let mut a = Scheduler::new(flat).unwrap();
                let mut b = Scheduler::new(staged).unwrap();
                assert_eq!(drain(&mut a, 2), drain(&mut b, 2));
                assert!(a.finished() && b.finished());
                assert_eq!(
                    a.take_trace().unwrap().render(),
                    b.take_trace().unwrap().render()
                );
                assert_eq!(b.rounds_drained(), Some(if jobs == 0 { 0 } else { 1 }));
            }
        }
    }

    #[test]
    fn round_barrier_holds_jobs_until_the_previous_round_drains() {
        let cfg = SchedConfig::plain(4, 2)
            .rounds(vec![0, 0, 1, 1])
            .record_trace();
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 2);
        assert_eq!(s.current_round(), Some(0));
        // Job 0 answers; round 0 still has job 1 in flight, so slave 1
        // idles instead of receiving a round-1 job.
        assert_eq!(
            s.on(Event::Answer { job: 0, slave: 1 }, 0),
            vec![Action::Accept { job: 0, slave: 1 }]
        );
        assert_eq!(s.current_round(), Some(0));
        // Job 1 answers: the barrier clears, both round-1 jobs go out.
        assert_eq!(
            s.on(Event::Answer { job: 1, slave: 2 }, 0),
            vec![
                Action::Accept { job: 1, slave: 2 },
                Action::Dispatch {
                    job: 2,
                    slave: 1,
                    batch: 1
                },
                Action::Dispatch {
                    job: 3,
                    slave: 2,
                    batch: 1
                },
            ]
        );
        assert_eq!(s.current_round(), Some(1));
        s.on(Event::Answer { job: 2, slave: 1 }, 0);
        let acts = s.on(Event::Answer { job: 3, slave: 2 }, 0);
        assert!(acts.contains(&Action::Finish));
        assert!(s.finished());
        assert_eq!(s.rounds_drained(), Some(2));
        assert_eq!(
            s.take_trace().unwrap().render(),
            "ready(1) -> dispatch(0->1)\n\
             ready(2) -> dispatch(1->2)\n\
             answer(0,1) -> accept(0,1)\n\
             answer(1,2) -> accept(1,2) dispatch(2->1) dispatch(3->2)\n\
             answer(2,1) -> accept(2,1) stop(1)\n\
             answer(3,2) -> accept(3,2) stop(2) finish\n"
        );
    }

    #[test]
    fn rounds_respect_policy_order_within_a_round() {
        // LPT inside each round, rounds in ascending order regardless
        // of cost.
        let cfg = SchedConfig::plain(4, 1)
            .rounds(vec![1, 0, 1, 0])
            .policy(DispatchPolicy::Lpt {
                costs: vec![9.0, 1.0, 5.0, 3.0],
            });
        let mut s = Scheduler::new(cfg).unwrap();
        assert_eq!(drain(&mut s, 1), vec![3, 1, 0, 2]);
        assert!(s.finished());
    }

    #[test]
    fn supervised_round_advances_when_a_job_exhausts_its_budget() {
        let cfg = SchedConfig::plain(2, 1)
            .rounds(vec![0, 1])
            .supervised(Supervision {
                deadline_ns: 1_000,
                max_attempts: 1,
                backoff_base_ns: 0,
            });
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 1);
        // Round 0's only job fails permanently (budget 1): the barrier
        // must not wedge — round 1's job goes out to the freed slave.
        assert_eq!(
            s.on(Event::Failure { job: 0, slave: 1 }, 10),
            vec![Action::Dispatch {
                job: 1,
                slave: 1,
                batch: 1
            }]
        );
        assert_eq!(s.failed_jobs(), vec![0]);
        assert_eq!(s.current_round(), Some(1));
        let acts = s.on(Event::Answer { job: 1, slave: 1 }, 20);
        assert!(acts.contains(&Action::Finish));
        assert_eq!(s.rounds_drained(), Some(2));
    }

    #[test]
    fn supervised_retry_stays_inside_its_round() {
        let cfg = SchedConfig::plain(3, 2)
            .rounds(vec![0, 0, 1])
            .supervised(Supervision {
                deadline_ns: 1_000,
                max_attempts: 3,
                backoff_base_ns: 0,
            });
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 2);
        // Job 0 fails with budget left: requeued (zero backoff) and
        // immediately redispatched; job 2 stays behind the barrier.
        let acts = s.on(Event::Failure { job: 0, slave: 1 }, 5);
        assert_eq!(
            acts,
            vec![
                Action::Requeue { job: 0 },
                Action::Dispatch {
                    job: 0,
                    slave: 1,
                    batch: 1
                },
            ]
        );
        s.on(Event::Answer { job: 1, slave: 2 }, 10);
        assert_eq!(s.current_round(), Some(0));
        let acts = s.on(Event::Answer { job: 0, slave: 1 }, 15);
        assert!(acts.contains(&Action::Dispatch {
            job: 2,
            slave: 1,
            batch: 1
        }));
        assert_eq!(s.current_round(), Some(1));
    }

    #[test]
    fn rounds_validation_rejects_nonsense() {
        assert_eq!(
            Scheduler::new(SchedConfig::plain(3, 1).rounds(vec![0])).unwrap_err(),
            SchedError::RoundsLen { rounds: 1, jobs: 3 }
        );
        assert_eq!(
            Scheduler::new(SchedConfig::plain(4, 1).batch(2).rounds(vec![0, 0, 1, 1]))
                .unwrap_err(),
            SchedError::RoundsNeedUnitBatch
        );
    }

    #[test]
    fn empty_rounds_in_the_middle_are_skipped() {
        // Rounds 0 and 3 are populated; 1 and 2 are declared but empty.
        let cfg = SchedConfig::plain(2, 1).rounds(vec![0, 3]);
        let mut s = Scheduler::new(cfg).unwrap();
        assert_eq!(s.current_round(), Some(0));
        assert_eq!(drain(&mut s, 1), vec![0, 1]);
        assert!(s.finished());
        assert_eq!(s.rounds_drained(), Some(4));
    }

    #[test]
    fn trace_skips_decision_free_events() {
        let cfg = SchedConfig::plain(1, 1).supervised(sup()).record_trace();
        let mut s = Scheduler::new(cfg).unwrap();
        prime(&mut s, 1);
        // A deadline tick with nothing expired decides nothing.
        assert_eq!(s.on(Event::Deadline, 1), vec![]);
        assert_eq!(s.trace().unwrap().len(), 1); // just the priming dispatch
    }
}
