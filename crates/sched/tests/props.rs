//! Property tests for the scheduler state machine: over randomized
//! workloads, event interleavings, fault injections and dispatch
//! policies, the scheduler must
//!
//! * never have one job in flight on two slaves at once, and never
//!   dispatch a job that already has an accepted answer;
//! * never dispatch to a buried (or stopped) slave;
//! * always terminate — every fair event sequence reaches `Finish` or
//!   `AllSlavesDead` in bounded steps.

use proptest::prelude::*;
use sched::{Action, DispatchPolicy, Event, SchedConfig, Scheduler, Supervision};

/// A tiny deterministic RNG for the event walk (SplitMix64).
struct Walk {
    state: u64,
}

impl Walk {
    fn new(seed: u64) -> Self {
        Walk { state: seed }
    }
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Driver-side mirror of the scheduler's assignments, built purely from
/// the action stream, used to check the invariants.
struct Model {
    /// slave -> jobs currently assigned by an un-answered Dispatch.
    inflight: Vec<Option<Vec<usize>>>,
    dead: Vec<bool>,
    stopped: Vec<bool>,
    accepted: Vec<bool>,
    finished: bool,
    aborted: bool,
}

impl Model {
    fn new(jobs: usize, slaves: usize) -> Self {
        Model {
            inflight: vec![None; slaves + 1],
            dead: vec![false; slaves + 1],
            stopped: vec![false; slaves + 1],
            accepted: vec![false; jobs],
            finished: false,
            aborted: false,
        }
    }

    /// Apply one action, asserting the safety invariants.
    fn apply(&mut self, a: &Action) {
        match *a {
            Action::Dispatch { job, slave, batch } => {
                assert!(
                    !self.dead[slave],
                    "dispatch({job}->{slave}) to a buried slave"
                );
                assert!(
                    !self.stopped[slave],
                    "dispatch({job}->{slave}) to a stopped slave"
                );
                assert!(
                    self.inflight[slave].is_none(),
                    "dispatch({job}->{slave}) to a busy slave"
                );
                for j in job..job + batch {
                    assert!(!self.accepted[j], "job {j} redispatched after acceptance");
                    for (s, inf) in self.inflight.iter().enumerate() {
                        if let Some(batch_jobs) = inf {
                            assert!(
                                !batch_jobs.contains(&j),
                                "job {j} double-dispatched (already on slave {s})"
                            );
                        }
                    }
                }
                self.inflight[slave] = Some((job..job + batch).collect());
            }
            Action::Stop { slave } => {
                assert!(!self.stopped[slave], "slave {slave} stopped twice");
                self.stopped[slave] = true;
            }
            Action::Accept { job, .. } => {
                assert!(!self.accepted[job], "job {job} accepted twice");
                self.accepted[job] = true;
            }
            Action::Expire { slave, .. } => {
                self.inflight[slave] = None;
            }
            Action::Requeue { .. } => {}
            Action::Bury { slave } => {
                assert!(!self.dead[slave], "slave {slave} buried twice");
                self.dead[slave] = true;
                self.inflight[slave] = None;
            }
            Action::AllSlavesDead => self.aborted = true,
            Action::Finish => self.finished = true,
        }
    }

    fn busy_slaves(&self) -> Vec<usize> {
        (1..self.inflight.len())
            .filter(|&s| self.inflight[s].is_some() && !self.dead[s])
            .collect()
    }
}

/// Random-walk one scheduler to termination under a fair environment.
fn walk_to_termination(cfg: SchedConfig, seed: u64) -> (Scheduler, Model) {
    let jobs = cfg.jobs;
    let slaves = cfg.slaves;
    let supervised = cfg.supervision.is_some();
    let mut sched = Scheduler::new(cfg).expect("valid config");
    let mut model = Model::new(jobs, slaves);
    let mut rng = Walk::new(seed);
    let mut now: u64 = 0;

    let feed = |sched: &mut Scheduler, model: &mut Model, ev: Event, now: u64| {
        for a in sched.on(ev, now) {
            model.apply(&a);
        }
    };

    for s in 1..=slaves {
        feed(&mut sched, &mut model, Event::SlaveReady { slave: s }, now);
    }

    let budget = 64 * (jobs + 1) * (slaves + 1) + 10_000;
    for _ in 0..budget {
        if sched.is_terminal() {
            break;
        }
        now += 1 + rng.below(40_000_000); // up to 40ms per step
        let busy = model.busy_slaves();
        let roll = rng.below(100);
        if !busy.is_empty() && (roll < 55 || !supervised) {
            // A slave answers its batch (identified by its first job).
            let s = busy[rng.below(busy.len() as u64) as usize];
            let batch_jobs = model.inflight[s].take().expect("busy");
            let job = batch_jobs[0];
            feed(&mut sched, &mut model, Event::Answer { job, slave: s }, now);
            // The Accept action covers the batch head; its mates in the
            // same dispatch were answered by the same message.
            for j in batch_jobs.into_iter().skip(1) {
                assert!(!model.accepted[j], "job {j} accepted twice");
                model.accepted[j] = true;
            }
        } else if supervised && !busy.is_empty() && roll < 65 {
            // A slave reports a failure instead of a result.
            let s = busy[rng.below(busy.len() as u64) as usize];
            let job = model.inflight[s].as_ref().expect("busy")[0];
            model.inflight[s] = None;
            feed(
                &mut sched,
                &mut model,
                Event::Failure { job, slave: s },
                now,
            );
        } else if supervised && roll < 72 {
            // A slave dies (possibly the last one).
            let alive: Vec<usize> = (1..=slaves).filter(|&s| !model.dead[s]).collect();
            if let Some(&s) = alive.get(rng.below(alive.len().max(1) as u64) as usize) {
                model.inflight[s] = None;
                feed(&mut sched, &mut model, Event::SlaveDead { slave: s }, now);
            }
        } else {
            // Time passes; deadlines and backoffs mature.
            now += 1 + rng.below(400_000_000); // up to 400ms
            feed(&mut sched, &mut model, Event::Deadline, now);
        }
    }
    (sched, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Plain-mode walks: safety invariants hold action by action and the
    /// run always reaches `Finish` with every job accepted exactly once.
    #[test]
    fn plain_walks_terminate_with_every_job_accepted(
        jobs in 0usize..24,
        slaves in 1usize..5,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = SchedConfig::plain(jobs, slaves).batch(batch);
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(sched.finished(), "plain run did not finish");
        prop_assert!(model.finished);
        prop_assert!(model.accepted.iter().all(|a| *a), "unanswered job in a finished run");
        prop_assert!((1..=slaves).all(|s| model.stopped[s]), "finished without stopping a slave");
    }

    /// Supervised walks under answers, failures, deadline expiries and
    /// slave deaths: safety invariants hold and the run terminates in
    /// `Finish` or `AllSlavesDead`; on `Finish` every job was accepted
    /// or exhausted its attempt budget.
    #[test]
    fn supervised_walks_terminate(
        jobs in 0usize..24,
        slaves in 1usize..5,
        max_attempts in 1u32..5,
        lpt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let policy = if lpt {
            // A non-trivial, collision-rich cost vector.
            DispatchPolicy::Lpt {
                costs: (0..jobs).map(|j| ((j * 7) % 5) as f64).collect(),
            }
        } else {
            DispatchPolicy::Fifo
        };
        let cfg = SchedConfig::plain(jobs, slaves).policy(policy).supervised(Supervision {
            deadline_ns: 150_000_000,
            max_attempts,
            backoff_base_ns: 5_000_000,
        });
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(
            sched.is_terminal(),
            "supervised run neither finished nor aborted"
        );
        if sched.finished() {
            let failed = sched.failed_jobs();
            for (j, acc) in model.accepted.iter().enumerate() {
                prop_assert!(
                    *acc || failed.contains(&j),
                    "job {j} neither accepted nor abandoned in a finished run"
                );
            }
            // Dead slaves never get the stop sentinel; live ones always do.
            for s in 1..=slaves {
                prop_assert!(model.dead[s] != model.stopped[s] || !model.dead[s]);
            }
        } else {
            prop_assert!(model.aborted);
            prop_assert!((1..=slaves).all(|s| model.dead[s]));
            prop_assert!(sched.unfinished() > 0);
        }
    }
}
