//! Property tests for the scheduler state machine: over randomized
//! workloads, event interleavings, fault injections and dispatch
//! policies, the scheduler must
//!
//! * never have one job in flight on two slaves at once, and never
//!   dispatch a job that already has an accepted answer;
//! * never dispatch to a buried (or stopped) slave;
//! * always terminate — every fair event sequence reaches `Finish` or
//!   `AllSlavesDead` in bounded steps;
//! * with staged rounds declared: never dispatch a job whose round is
//!   still blocked (an earlier round has unanswered work), insert a
//!   barrier **only** where declared (a uniform-round staged machine is
//!   action-for-action identical to the flat one), and drain every
//!   round by the time the run terminates.

use proptest::prelude::*;
use sched::{Action, DispatchPolicy, Event, SchedConfig, Scheduler, Supervision};

/// A tiny deterministic RNG for the event walk (SplitMix64).
struct Walk {
    state: u64,
}

impl Walk {
    fn new(seed: u64) -> Self {
        Walk { state: seed }
    }
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Driver-side mirror of the scheduler's assignments, built purely from
/// the action stream, used to check the invariants.
struct Model {
    /// slave -> jobs currently assigned by an un-answered Dispatch.
    inflight: Vec<Option<Vec<usize>>>,
    dead: Vec<bool>,
    stopped: Vec<bool>,
    accepted: Vec<bool>,
    finished: bool,
    aborted: bool,
    /// `Some(r)` when the config declared staged rounds: `r[job]` is
    /// each job's round, and the model asserts the barrier invariants.
    round_of: Option<Vec<usize>>,
    /// Highest round seen in a dispatch so far (rounds unlock in order).
    last_round: usize,
    /// `true` for unsupervised staged runs: every earlier-round job must
    /// be *accepted* before a later round dispatches (supervised runs
    /// may also abandon jobs, which unblocks the round without an
    /// acceptance).
    strict_rounds: bool,
    /// Debug log of every action, for cross-machine comparisons.
    log: Vec<String>,
}

impl Model {
    fn new(jobs: usize, slaves: usize) -> Self {
        Model {
            inflight: vec![None; slaves + 1],
            dead: vec![false; slaves + 1],
            stopped: vec![false; slaves + 1],
            accepted: vec![false; jobs],
            finished: false,
            aborted: false,
            round_of: None,
            last_round: 0,
            strict_rounds: false,
            log: Vec::new(),
        }
    }

    /// Apply one action, asserting the safety invariants.
    fn apply(&mut self, a: &Action) {
        self.log.push(format!("{a:?}"));
        match *a {
            Action::Dispatch { job, slave, batch } => {
                assert!(
                    !self.dead[slave],
                    "dispatch({job}->{slave}) to a buried slave"
                );
                assert!(
                    !self.stopped[slave],
                    "dispatch({job}->{slave}) to a stopped slave"
                );
                assert!(
                    self.inflight[slave].is_none(),
                    "dispatch({job}->{slave}) to a busy slave"
                );
                for j in job..job + batch {
                    assert!(!self.accepted[j], "job {j} redispatched after acceptance");
                    for (s, inf) in self.inflight.iter().enumerate() {
                        if let Some(batch_jobs) = inf {
                            assert!(
                                !batch_jobs.contains(&j),
                                "job {j} double-dispatched (already on slave {s})"
                            );
                        }
                    }
                }
                if let Some(rounds) = &self.round_of {
                    let r = rounds[job];
                    assert!(
                        r >= self.last_round,
                        "dispatch({job}->{slave}) in round {r} after round {} opened",
                        self.last_round
                    );
                    self.last_round = r;
                    if self.strict_rounds {
                        for (j, &rj) in rounds.iter().enumerate() {
                            if rj < r {
                                assert!(
                                    self.accepted[j],
                                    "round-{r} job {job} dispatched while round-{rj} \
                                     job {j} is unanswered"
                                );
                            }
                        }
                    }
                }
                self.inflight[slave] = Some((job..job + batch).collect());
            }
            Action::Stop { slave } => {
                assert!(!self.stopped[slave], "slave {slave} stopped twice");
                self.stopped[slave] = true;
            }
            Action::Accept { job, .. } => {
                assert!(!self.accepted[job], "job {job} accepted twice");
                self.accepted[job] = true;
            }
            Action::Expire { slave, .. } => {
                self.inflight[slave] = None;
            }
            Action::Requeue { .. } => {}
            Action::Bury { slave } => {
                assert!(!self.dead[slave], "slave {slave} buried twice");
                self.dead[slave] = true;
                self.inflight[slave] = None;
            }
            Action::AllSlavesDead => self.aborted = true,
            Action::Finish => self.finished = true,
        }
    }

    fn busy_slaves(&self) -> Vec<usize> {
        (1..self.inflight.len())
            .filter(|&s| self.inflight[s].is_some() && !self.dead[s])
            .collect()
    }
}

/// Random-walk one scheduler to termination under a fair environment.
fn walk_to_termination(cfg: SchedConfig, seed: u64) -> (Scheduler, Model) {
    let jobs = cfg.jobs;
    let slaves = cfg.slaves;
    let supervised = cfg.supervision.is_some();
    let rounds = cfg.rounds.clone();
    let mut sched = Scheduler::new(cfg).expect("valid config");
    let mut model = Model::new(jobs, slaves);
    model.strict_rounds = rounds.is_some() && !supervised;
    model.round_of = rounds;
    let mut rng = Walk::new(seed);
    let mut now: u64 = 0;

    let feed = |sched: &mut Scheduler, model: &mut Model, ev: Event, now: u64| {
        for a in sched.on(ev, now) {
            model.apply(&a);
        }
    };

    for s in 1..=slaves {
        feed(&mut sched, &mut model, Event::SlaveReady { slave: s }, now);
    }

    let budget = 64 * (jobs + 1) * (slaves + 1) + 10_000;
    for _ in 0..budget {
        if sched.is_terminal() {
            break;
        }
        now += 1 + rng.below(40_000_000); // up to 40ms per step
        let busy = model.busy_slaves();
        let roll = rng.below(100);
        if !busy.is_empty() && (roll < 55 || !supervised) {
            // A slave answers its batch (identified by its first job).
            let s = busy[rng.below(busy.len() as u64) as usize];
            let batch_jobs = model.inflight[s].take().expect("busy");
            let job = batch_jobs[0];
            feed(&mut sched, &mut model, Event::Answer { job, slave: s }, now);
            // The Accept action covers the batch head; its mates in the
            // same dispatch were answered by the same message.
            for j in batch_jobs.into_iter().skip(1) {
                assert!(!model.accepted[j], "job {j} accepted twice");
                model.accepted[j] = true;
            }
        } else if supervised && !busy.is_empty() && roll < 65 {
            // A slave reports a failure instead of a result.
            let s = busy[rng.below(busy.len() as u64) as usize];
            let job = model.inflight[s].as_ref().expect("busy")[0];
            model.inflight[s] = None;
            feed(
                &mut sched,
                &mut model,
                Event::Failure { job, slave: s },
                now,
            );
        } else if supervised && roll < 72 {
            // A slave dies (possibly the last one).
            let alive: Vec<usize> = (1..=slaves).filter(|&s| !model.dead[s]).collect();
            if let Some(&s) = alive.get(rng.below(alive.len().max(1) as u64) as usize) {
                model.inflight[s] = None;
                feed(&mut sched, &mut model, Event::SlaveDead { slave: s }, now);
            }
        } else {
            // Time passes; deadlines and backoffs mature.
            now += 1 + rng.below(400_000_000); // up to 400ms
            feed(&mut sched, &mut model, Event::Deadline, now);
        }
    }
    (sched, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Plain-mode walks: safety invariants hold action by action and the
    /// run always reaches `Finish` with every job accepted exactly once.
    #[test]
    fn plain_walks_terminate_with_every_job_accepted(
        jobs in 0usize..24,
        slaves in 1usize..5,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = SchedConfig::plain(jobs, slaves).batch(batch);
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(sched.finished(), "plain run did not finish");
        prop_assert!(model.finished);
        prop_assert!(model.accepted.iter().all(|a| *a), "unanswered job in a finished run");
        prop_assert!((1..=slaves).all(|s| model.stopped[s]), "finished without stopping a slave");
    }

    /// Supervised walks under answers, failures, deadline expiries and
    /// slave deaths: safety invariants hold and the run terminates in
    /// `Finish` or `AllSlavesDead`; on `Finish` every job was accepted
    /// or exhausted its attempt budget.
    #[test]
    fn supervised_walks_terminate(
        jobs in 0usize..24,
        slaves in 1usize..5,
        max_attempts in 1u32..5,
        lpt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let policy = if lpt {
            // A non-trivial, collision-rich cost vector.
            DispatchPolicy::Lpt {
                costs: (0..jobs).map(|j| ((j * 7) % 5) as f64).collect(),
            }
        } else {
            DispatchPolicy::Fifo
        };
        let cfg = SchedConfig::plain(jobs, slaves).policy(policy).supervised(Supervision {
            deadline_ns: 150_000_000,
            max_attempts,
            backoff_base_ns: 5_000_000,
        });
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(
            sched.is_terminal(),
            "supervised run neither finished nor aborted"
        );
        if sched.finished() {
            let failed = sched.failed_jobs();
            for (j, acc) in model.accepted.iter().enumerate() {
                prop_assert!(
                    *acc || failed.contains(&j),
                    "job {j} neither accepted nor abandoned in a finished run"
                );
            }
            // Dead slaves never get the stop sentinel; live ones always do.
            for s in 1..=slaves {
                prop_assert!(model.dead[s] != model.stopped[s] || !model.dead[s]);
            }
        } else {
            prop_assert!(model.aborted);
            prop_assert!((1..=slaves).all(|s| model.dead[s]));
            prop_assert!(sched.unfinished() > 0);
        }
    }

    /// Staged plain walks: a job is never dispatched while any job of an
    /// earlier round is unanswered, rounds unlock in ascending order,
    /// and termination implies every declared round was drained.
    #[test]
    fn staged_walks_never_dispatch_a_blocked_job(
        rounds in proptest::collection::vec(0usize..5, 0..20),
        slaves in 1usize..5,
        lpt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let jobs = rounds.len();
        let policy = if lpt {
            DispatchPolicy::Lpt {
                costs: (0..jobs).map(|j| ((j * 13) % 7) as f64).collect(),
            }
        } else {
            DispatchPolicy::Fifo
        };
        let n_rounds = rounds.iter().map(|&r| r + 1).max().unwrap_or(0);
        let cfg = SchedConfig::plain(jobs, slaves)
            .policy(policy)
            .rounds(rounds.clone());
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(sched.finished(), "staged plain run did not finish");
        prop_assert!(model.accepted.iter().all(|a| *a));
        // Terminal => rounds drained: the cursor sits past the last
        // declared round and no round reports unfinished work.
        prop_assert_eq!(sched.rounds_drained(), Some(n_rounds));
        prop_assert_eq!(sched.current_round(), None);
    }

    /// Staged supervised walks under failures, expiries and deaths: the
    /// barrier never unlocks out of order, the run terminates, and a
    /// finished run drained every round (abandoned jobs unblock their
    /// round instead of wedging the ones behind it).
    #[test]
    fn staged_supervised_walks_terminate_with_rounds_drained(
        rounds in proptest::collection::vec(0usize..4, 0..16),
        slaves in 1usize..4,
        max_attempts in 1u32..4,
        seed in any::<u64>(),
    ) {
        let jobs = rounds.len();
        let n_rounds = rounds.iter().map(|&r| r + 1).max().unwrap_or(0);
        let cfg = SchedConfig::plain(jobs, slaves)
            .rounds(rounds.clone())
            .supervised(Supervision {
                deadline_ns: 150_000_000,
                max_attempts,
                backoff_base_ns: 5_000_000,
            });
        let (sched, model) = walk_to_termination(cfg, seed);
        prop_assert!(sched.is_terminal(), "staged supervised run did not terminate");
        if sched.finished() {
            let failed = sched.failed_jobs();
            for (j, acc) in model.accepted.iter().enumerate() {
                prop_assert!(
                    *acc || failed.contains(&j),
                    "job {} neither accepted nor abandoned", j
                );
            }
            prop_assert_eq!(sched.rounds_drained(), Some(n_rounds));
            prop_assert_eq!(sched.current_round(), None);
        }
    }

    /// Barrier only where declared: a staged machine whose jobs all sit
    /// in round 0 replays the *identical* action stream as the flat
    /// machine under the same event walk — staging must cost nothing
    /// when no cross-round structure exists.
    #[test]
    fn uniform_round_walks_match_flat_walks_action_for_action(
        jobs in 0usize..20,
        slaves in 1usize..5,
        seed in any::<u64>(),
    ) {
        let flat = SchedConfig::plain(jobs, slaves);
        let staged = SchedConfig::plain(jobs, slaves).rounds(vec![0; jobs]);
        let (_, flat_model) = walk_to_termination(flat, seed);
        let (_, staged_model) = walk_to_termination(staged, seed);
        prop_assert_eq!(&flat_model.log, &staged_model.log);
    }
}

// ---------------------------------------------------------------------------
// Straggler tail: LPT strictly beats FIFO on a heavy-tailed class mix
// ---------------------------------------------------------------------------

/// Event-driven virtual-time replay: every dispatch runs for its job's
/// cost; the earliest-finishing slave answers next. Returns the
/// makespan in seconds.
fn replay_makespan(policy: DispatchPolicy, costs: &[f64], slaves: usize) -> f64 {
    let cfg = SchedConfig::plain(costs.len(), slaves).policy(policy);
    let mut sched = Scheduler::new(cfg).expect("valid config");
    let mut running: Vec<Option<usize>> = vec![None; slaves + 1];
    let mut free_at: Vec<u64> = vec![0; slaves + 1];
    let mut now: u64 = 0;
    let apply = |actions: Vec<Action>,
                     running: &mut Vec<Option<usize>>,
                     free_at: &mut Vec<u64>,
                     now: u64| {
        for a in actions {
            if let Action::Dispatch { job, slave, .. } = a {
                running[slave] = Some(job);
                free_at[slave] = now + (costs[job] * 1e9) as u64;
            }
        }
    };
    for s in 1..=slaves {
        let acts = sched.on(Event::SlaveReady { slave: s }, now);
        apply(acts, &mut running, &mut free_at, now);
    }
    while !sched.is_terminal() {
        let Some(s) = (1..=slaves)
            .filter(|&s| running[s].is_some())
            .min_by_key(|&s| free_at[s])
        else {
            break;
        };
        now = free_at[s];
        let job = running[s].take().expect("busy slave");
        let acts = sched.on(Event::Answer { job, slave: s }, now);
        apply(acts, &mut running, &mut free_at, now);
    }
    now as f64 / 1e9
}

#[test]
fn lpt_strictly_beats_fifo_on_a_heavy_tailed_mixed_portfolio() {
    // The mixed workload's per-class grain shape (§4.3 magnitudes): six
    // near-free vanillas, two European MC grains, then the XVA, BSDE,
    // American-LSM and Bermudan heavies — FIFO strands a 105 s Bermudan
    // on the run's tail, LPT fronts it.
    let block = [
        0.003, 0.003, 0.003, 0.003, 0.003, 0.003, 20.0, 20.0, 25.0, 65.0, 90.0, 105.0,
    ];
    let costs: Vec<f64> = (0..4).flat_map(|_| block).collect();
    let slaves = 4;
    let fifo = replay_makespan(DispatchPolicy::Fifo, &costs, slaves);
    let lpt = replay_makespan(
        DispatchPolicy::Lpt {
            costs: costs.clone(),
        },
        &costs,
        slaves,
    );
    assert!(
        lpt < fifo,
        "LPT makespan {lpt:.3}s does not beat FIFO {fifo:.3}s"
    );
    // And the win is the straggler tail, not noise: at least one full
    // European-MC grain of slack.
    assert!(fifo - lpt > 20.0, "tail win too small: {:.3}s", fifo - lpt);
}
