//! Receive buffers — the paper's `mpibuf_create(elems)` objects.

/// A fixed-capacity receive buffer.
///
/// Mirrors the Nsp usage pattern of §3.2 / Fig. 4:
///
/// ```text
/// [stat]  = MPI_Probe(-1,-1,MCW)
/// [elems] = MPI_Get_elements(stat,'')
/// B = mpibuf_create(elems);            // create a receive buffer
/// stat = MPI_Recv(B, src, TAG, MCW);   // receive the packed data
/// H1 = MPI_Unpack(B, MCW);
/// ```
///
/// `Comm::recv_into` refuses to overflow the buffer (MPI truncation
/// semantics) — sizing it from a prior `probe` is the caller's job, exactly
/// as in MPI.
#[derive(Debug, Clone)]
pub struct MpiBuf {
    data: Vec<u8>,
    capacity: usize,
}

impl MpiBuf {
    /// `mpibuf_create(elems)`: an empty buffer able to hold `capacity`
    /// bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        MpiBuf {
            data: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Wrap existing bytes (used by `pack`).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        let capacity = data.len();
        MpiBuf { data, capacity }
    }

    /// Maximum number of bytes the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bytes currently held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    pub(crate) fn fill(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= self.capacity);
        self.data.clear();
        self.data.extend_from_slice(bytes);
    }

    /// Take the underlying storage out of the buffer, leaving it empty
    /// with zero capacity. `Comm::pack_into` uses this to recycle one
    /// allocation across a rank's pack → send loop.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        self.capacity = 0;
        std::mem::take(&mut self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_is_empty() {
        let b = MpiBuf::with_capacity(128);
        assert_eq!(b.capacity(), 128);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn fill_replaces_contents() {
        let mut b = MpiBuf::with_capacity(8);
        b.fill(&[1, 2, 3]);
        assert_eq!(b.bytes(), &[1, 2, 3]);
        b.fill(&[9]);
        assert_eq!(b.bytes(), &[9]);
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    fn from_bytes_capacity_matches() {
        let b = MpiBuf::from_bytes(vec![5; 10]);
        assert_eq!(b.capacity(), 10);
        assert_eq!(b.len(), 10);
    }
}
