//! Communicators and point-to-point / collective operations.
//!
//! Since the `transport` crate landed, the mailbox/matching machinery
//! lives behind the [`Transport`] trait: a [`Comm`] is one rank's typed,
//! fault-aware, instrumented view of whichever backend its world was
//! built on — in-process channels ([`crate::World`]) or multi-process
//! Unix-domain sockets ([`crate::ProcessWorld`]). Fault injection and
//! observability stay here, *above* the wire: the same `FaultPlan`
//! drives both backends, and its verdicts are mapped onto whatever the
//! backend can express (drops never sent, truncations sent short,
//! delays carried as frame metadata, kills broadcast group-wide).

use crate::buf::MpiBuf;
use crate::error::MpiError;
use crate::fault::{FaultEvent, FaultPlan, SendFault};
use crate::ANY_SOURCE;
use nspval::{Serial, Value};
use obs::{Event, EventKind, Recorder, NO_JOB};
use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};
use transport::{Frame, Payload, Transport, TransportError};

/// Delivery status of a matched message (MPI_Status): source rank, tag and
/// payload size in bytes (`MPI_Get_count` / `MPI_Get_elements`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank of the matched message.
    pub src: usize,
    /// Tag of the matched message.
    pub tag: i32,
    len: usize,
}

impl Status {
    /// `MPI_Get_count` / `MPI_Get_elements`: the message size in bytes.
    pub fn count(&self) -> usize {
        self.len
    }
}

fn status_of(frame: &Frame) -> Status {
    Status {
        src: frame.src,
        tag: frame.tag,
        len: frame.full_len,
    }
}

/// Map a transport failure onto the communicator error surface.
fn map_err(e: TransportError) -> MpiError {
    match e {
        TransportError::Dead(rank) => MpiError::Poisoned(rank),
        TransportError::Disconnected => MpiError::Disconnected,
        TransportError::Truncated { needed, capacity } => {
            MpiError::Truncated { needed, capacity }
        }
        TransportError::Io(msg) => MpiError::Transport(msg),
    }
}

/// A communicator handle owned by one rank — the paper's
/// `MPI_COMM_WORLD` / merged `NEWORLD` objects.
///
/// Cloning is not allowed (each rank holds exactly one endpoint); the
/// handle is `Send` so `World` can move it into the rank's thread.
pub struct Comm {
    transport: Arc<dyn Transport>,
    rank: usize,
    /// Fault-injection plan consulted on every operation; `None` (the
    /// [`crate::World::run`] default) short-circuits to the fast path.
    plan: Option<Arc<FaultPlan>>,
    /// Per-rank operation counter: every send/recv/probe increments it and
    /// is compared against the fault plan's kill schedule.
    ops: Cell<u64>,
    /// Per-rank send counter indexing the deterministic send-fault schedule.
    sends: Cell<u64>,
    /// Optional phase-event sink ([`World::run_instrumented`]); `None`
    /// (the default) makes every instrumentation site a no-op that takes
    /// no timestamps.
    ///
    /// [`World::run_instrumented`]: crate::World::run_instrumented
    recorder: Option<Arc<Recorder>>,
    /// Job-attribution context for recorded events ([`Comm::set_job`]).
    job: Cell<i64>,
}

impl Comm {
    pub(crate) fn new(
        transport: Arc<dyn Transport>,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Arc<Recorder>>,
    ) -> Self {
        let rank = transport.rank();
        Comm {
            transport,
            rank,
            plan,
            ops: Cell::new(0),
            sends: Cell::new(0),
            recorder,
            job: Cell::new(NO_JOB),
        }
    }

    /// The transport endpoint backing this communicator.
    pub(crate) fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    // ----- observability ----------------------------------------------------

    /// The event recorder wired in by
    /// [`World::run_instrumented`](crate::World::run_instrumented), if any.
    /// Higher layers (the farm) use this to emit their own phase events
    /// into the same stream.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Set the job id attributed to subsequent recorded events on this
    /// rank (`None` clears it). Cheap — a `Cell` store — and meaningful
    /// only when a recorder is installed.
    pub fn set_job(&self, job: Option<usize>) {
        self.job.set(job.map_or(NO_JOB, |j| j as i64));
    }

    /// The current job-attribution context ([`obs::NO_JOB`] when unset).
    /// Higher layers use this to stamp their own events consistently
    /// with the comm-level ones.
    pub fn current_job(&self) -> i64 {
        self.job.get()
    }

    /// Timestamp helper: `Some(now)` only when recording, so un-recorded
    /// runs never touch the clock.
    #[inline]
    fn obs_start(&self) -> Option<u64> {
        self.recorder.as_ref().map(|r| r.now_ns())
    }

    /// Record a span started by [`Comm::obs_start`]. No-op when the
    /// recorder is absent.
    #[inline]
    fn obs_span(&self, kind: EventKind, start: Option<u64>, bytes: usize) {
        if let (Some(rec), Some(t0)) = (&self.recorder, start) {
            rec.record_span(self.rank, kind, self.job.get(), t0, bytes as u64);
        }
    }

    /// Record a zero-duration diagnostic mark (e.g. `CopySaved`). No-op
    /// when the recorder is absent.
    #[inline]
    fn obs_mark(&self, kind: EventKind, bytes: usize) {
        if let Some(rec) = &self.recorder {
            rec.record(Event {
                kind,
                rank: self.rank as u16,
                job: self.job.get(),
                start_ns: rec.now_ns(),
                dur_ns: 0,
                bytes: bytes as u64,
            });
        }
    }

    /// Count one operation against the fault plan. Returns
    /// `Err(Poisoned(self.rank))` if this rank is already dead or the plan
    /// kills it at this op boundary.
    fn pre_op(&self) -> Result<(), MpiError> {
        let op = self.ops.get();
        self.ops.set(op + 1);
        if self.transport.is_dead(self.rank) {
            return Err(MpiError::Poisoned(self.rank));
        }
        if let Some(plan) = &self.plan {
            if plan.should_kill(self.rank, op) {
                plan.record(FaultEvent::Killed {
                    rank: self.rank,
                    op,
                });
                // Group-wide: peers' sends to us must fail fast, on every
                // backend (the process backend broadcasts the kill).
                self.transport.kill(self.rank);
                // Fault path: a self-observed death is an event too.
                if let Some(rec) = &self.recorder {
                    rec.record(Event {
                        kind: EventKind::SlaveDeath,
                        rank: self.rank as u16,
                        job: self.job.get(),
                        start_ns: rec.now_ns(),
                        dur_ns: 0,
                        bytes: 0,
                    });
                }
                return Err(MpiError::Poisoned(self.rank));
            }
        }
        Ok(())
    }

    /// `MPI_Comm_rank`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `MPI_Comm_size`.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// `MPI_Wtime`: seconds since the communicator was created.
    pub fn wtime(&self) -> f64 {
        self.transport.epoch().elapsed().as_secs_f64()
    }

    fn check_dest(&self, rank: i32) -> Result<usize, MpiError> {
        if rank < 0 || rank as usize >= self.size() {
            return Err(MpiError::InvalidRank(rank));
        }
        Ok(rank as usize)
    }

    fn check_tag(tag: i32) -> Result<(), MpiError> {
        if tag < 0 {
            return Err(MpiError::InvalidTag(tag));
        }
        Ok(())
    }

    // ----- point to point ---------------------------------------------------

    /// `MPI_Send`: send raw bytes to `dest` with `tag`.
    pub fn send(&self, bytes: &[u8], dest: i32, tag: i32) -> Result<(), MpiError> {
        Self::check_tag(tag)?;
        self.send_internal(Payload::Owned(bytes.to_vec()), dest, tag)
    }

    /// Send a payload already behind an `Arc` *without copying it*: on an
    /// in-process backend every destination queues a reference to the
    /// same allocation. This is the broadcast fan-out path — sending the
    /// same N-byte message to k destinations costs one allocation instead
    /// of k.
    ///
    /// On a backend that shares memory, each call records the avoided
    /// clone as a zero-duration `CopySaved` diagnostic mark (bytes = the
    /// payload size a [`Comm::send`] would have copied); a wire-backed
    /// backend copies onto the wire regardless, so no savings are
    /// claimed.
    pub fn send_shared(&self, bytes: &Arc<Vec<u8>>, dest: i32, tag: i32) -> Result<(), MpiError> {
        Self::check_tag(tag)?;
        if self.transport.shares_memory() {
            self.obs_mark(EventKind::CopySaved, bytes.len());
        }
        self.send_internal(Payload::Shared(Arc::clone(bytes)), dest, tag)
    }

    fn send_internal(&self, mut payload: Payload, dest: i32, tag: i32) -> Result<(), MpiError> {
        let dest = self.check_dest(dest)?;
        self.pre_op()?;
        let t0 = self.obs_start();
        let full_len = payload.len();
        let mut visible_at = None;
        if let Some(plan) = &self.plan {
            let send = self.sends.get();
            self.sends.set(send + 1);
            match plan.decide_send(self.rank, send, full_len) {
                SendFault::Deliver => {}
                SendFault::Drop => {
                    plan.record(FaultEvent::Dropped {
                        rank: self.rank,
                        send,
                    });
                    // Silently lost in flight: the send itself succeeds
                    // (and still cost the sender its time).
                    self.obs_span(EventKind::Send, t0, full_len);
                    return Ok(());
                }
                SendFault::Delay(by) => {
                    plan.record(FaultEvent::Delayed {
                        rank: self.rank,
                        send,
                        by,
                    });
                    visible_at = Some(Instant::now() + by);
                }
                SendFault::Truncate(keep) => {
                    let keep = keep.min(full_len);
                    plan.record(FaultEvent::Truncated {
                        rank: self.rank,
                        send,
                        kept: keep,
                        full: full_len,
                    });
                    payload.truncate(keep);
                }
            }
        }
        self.transport
            .send(
                dest,
                Frame {
                    src: self.rank,
                    tag,
                    payload,
                    full_len,
                    visible_at,
                },
            )
            .map_err(map_err)?;
        self.obs_span(EventKind::Send, t0, full_len);
        Ok(())
    }

    /// Transport wait-loop with error mapping.
    fn match_deadline(
        &self,
        src: i32,
        tag: i32,
        deadline: Option<Instant>,
        consume: bool,
    ) -> Result<Option<Frame>, MpiError> {
        self.transport
            .match_deadline(src, tag, deadline, consume)
            .map_err(map_err)
    }

    /// Blocking `MPI_Probe`: wait until a message matching `(src, tag)` is
    /// pending and return its status without consuming it.
    pub fn probe(&self, src: i32, tag: i32) -> Result<Status, MpiError> {
        self.pre_op()?;
        let t0 = self.obs_start();
        let m = self
            .match_deadline(src, tag, None, false)?
            .expect("no deadline, so never None");
        self.obs_span(EventKind::Probe, t0, m.full_len);
        Ok(status_of(&m))
    }

    /// [`Comm::probe`] with a timeout: `Ok(None)` if nothing matching
    /// arrived within `timeout`. This is the supervised farm master's
    /// heartbeat primitive.
    pub fn probe_timeout(
        &self,
        src: i32,
        tag: i32,
        timeout: Duration,
    ) -> Result<Option<Status>, MpiError> {
        self.pre_op()?;
        let t0 = self.obs_start();
        let matched = self.match_deadline(src, tag, Some(Instant::now() + timeout), false)?;
        if let Some(m) = &matched {
            self.obs_span(EventKind::Probe, t0, m.full_len);
        }
        Ok(matched.map(|m| status_of(&m)))
    }

    /// Non-blocking `MPI_Iprobe`.
    pub fn iprobe(&self, src: i32, tag: i32) -> Result<Option<Status>, MpiError> {
        self.pre_op()?;
        let m = self.transport.try_match(src, tag).map_err(map_err)?;
        Ok(m.map(|m| status_of(&m)))
    }

    fn recv_message(&self, src: i32, tag: i32) -> Result<Frame, MpiError> {
        Ok(self
            .match_deadline(src, tag, None, true)?
            .expect("no deadline, so never None"))
    }

    /// Blocking `MPI_Recv` into a pre-sized buffer (the Fig. 4 pattern:
    /// probe → `mpibuf_create` → recv). Errors with `Truncated` if the
    /// matched message exceeds the buffer capacity.
    pub fn recv_into(&self, buf: &mut MpiBuf, src: i32, tag: i32) -> Result<Status, MpiError> {
        // Peek first so a too-small buffer does not destroy the message.
        let status = self.probe(src, tag)?;
        if status.len > buf.capacity() {
            return Err(MpiError::Truncated {
                needed: status.len,
                capacity: buf.capacity(),
            });
        }
        let t0 = self.obs_start();
        let msg = self.recv_message(status.src as i32, status.tag)?;
        let status = status_of(&msg);
        buf.fill(msg.payload.as_slice());
        self.obs_span(EventKind::Recv, t0, msg.payload.len());
        Ok(status)
    }

    /// Convenience receive returning an owned byte vector.
    pub fn recv(&self, src: i32, tag: i32) -> Result<(Vec<u8>, Status), MpiError> {
        self.pre_op()?;
        let t0 = self.obs_start();
        let msg = self.recv_message(src, tag)?;
        let status = status_of(&msg);
        self.obs_span(EventKind::Recv, t0, msg.payload.len());
        Ok((msg.payload.into_vec(), status))
    }

    /// [`Comm::recv`] with a timeout: `Ok(None)` if nothing matching
    /// arrived within `timeout`.
    pub fn recv_timeout(
        &self,
        src: i32,
        tag: i32,
        timeout: Duration,
    ) -> Result<Option<(Vec<u8>, Status)>, MpiError> {
        self.pre_op()?;
        let t0 = self.obs_start();
        Ok(self
            .match_deadline(src, tag, Some(Instant::now() + timeout), true)?
            .map(|msg| {
                let status = status_of(&msg);
                self.obs_span(EventKind::Recv, t0, msg.payload.len());
                (msg.payload.into_vec(), status)
            }))
    }

    /// Drop the next matching visible message — even a fault-truncated one
    /// that [`Comm::recv`] refuses to consume. Returns whether a message
    /// was removed. This is how a protocol clears a mangled frame and
    /// resynchronises.
    pub fn discard(&self, src: i32, tag: i32) -> Result<bool, MpiError> {
        self.pre_op()?;
        self.transport.discard(src, tag).map_err(map_err)
    }

    /// Administratively kill `rank`: its mailbox is poisoned, pending
    /// messages are discarded, blocked waiters wake with
    /// [`MpiError::Poisoned`], and subsequent sends to it fail fast. This
    /// is the test harness's "pull the network cable" lever; the fault
    /// plan's kill schedule uses the same underlying mechanism.
    pub fn sever(&self, rank: i32) -> Result<(), MpiError> {
        let rank = self.check_dest(rank)?;
        self.transport.kill(rank);
        Ok(())
    }

    /// Whether `rank`'s mailbox is still accepting traffic (false once a
    /// fault-plan kill or [`Comm::sever`] took it down).
    pub fn rank_alive(&self, rank: usize) -> bool {
        rank < self.size() && !self.transport.is_dead(rank)
    }

    // ----- object layer (MPI_Send_Obj / MPI_Recv_Obj) ----------------------

    /// `MPI_Send_Obj`: serialize any value and send it. "These two
    /// functions use internal serialization and packing to transparently
    /// transmit Nsp Objects" (§3.2).
    pub fn send_obj(&self, v: &Value, dest: i32, tag: i32) -> Result<(), MpiError> {
        Self::check_tag(tag)?;
        let t0 = self.obs_start();
        let bytes = xdrser::serialize_to_bytes(v);
        self.obs_span(EventKind::Serialize, t0, bytes.len());
        self.send_internal(Payload::Owned(bytes), dest, tag)
    }

    /// `MPI_Recv_Obj`: receive and deserialize a value. Per §3.2, when the
    /// transmitted object is itself a `Serial`, the receive "directly
    /// unseals" it — the caller gets the inner value.
    pub fn recv_obj(&self, src: i32, tag: i32) -> Result<(Value, Status), MpiError> {
        let (bytes, status) = self.recv(src, tag)?;
        let v = xdrser::unserialize_bytes(&bytes)?;
        let v = match v {
            Value::Serial(s) => xdrser::unserialize(&s)?,
            other => other,
        };
        Ok((v, status))
    }

    /// Like [`Comm::recv_obj`] but without the unseal step: a transmitted
    /// `Serial` stays a `Serial` — the un-materialised form, mirroring
    /// what `sload` produces on the sending side. This is what Fig. 4's
    /// slave loop needs when it wants to unpack/unserialize explicitly.
    pub fn recv_obj_serial(&self, src: i32, tag: i32) -> Result<(Value, Status), MpiError> {
        let (bytes, status) = self.recv(src, tag)?;
        Ok((xdrser::unserialize_bytes(&bytes)?, status))
    }

    /// [`Comm::recv_obj`] with a timeout: `Ok(None)` if nothing matching
    /// arrived within `timeout`. Used by the supervised farm master so a
    /// dead slave cannot stall the whole portfolio.
    pub fn recv_obj_timeout(
        &self,
        src: i32,
        tag: i32,
        timeout: Duration,
    ) -> Result<Option<(Value, Status)>, MpiError> {
        let Some((bytes, status)) = self.recv_timeout(src, tag, timeout)? else {
            return Ok(None);
        };
        let v = xdrser::unserialize_bytes(&bytes)?;
        let v = match v {
            Value::Serial(s) => xdrser::unserialize(&s)?,
            other => other,
        };
        Ok(Some((v, status)))
    }

    // ----- pack / unpack ----------------------------------------------------

    /// `MPI_Pack`: encode a value into a contiguous buffer suitable for
    /// `send`.
    pub fn pack(&self, v: &Value) -> MpiBuf {
        let t0 = self.obs_start();
        let buf = MpiBuf::from_bytes(xdrser::serialize_to_bytes(v));
        self.obs_span(EventKind::Pack, t0, buf.len());
        buf
    }

    /// Pack an already-serialized object without re-encoding its payload —
    /// the cheap path used by the "serialized load" strategy, where the
    /// master never materialises the value.
    pub fn pack_serial(&self, s: &Serial) -> MpiBuf {
        let t0 = self.obs_start();
        let buf = MpiBuf::from_bytes(xdrser::serialize_to_bytes(&Value::Serial(s.clone())));
        self.obs_span(EventKind::Pack, t0, buf.len());
        buf
    }

    /// [`Comm::pack`] into a caller-owned buffer, recycling its
    /// allocation: the buffer is cleared and the frame is encoded into
    /// the existing storage. A rank that packs one message per job keeps
    /// the pack path allocation-free in steady state; the reused bytes
    /// (capacity already in hand, capped by the frame size) are recorded
    /// as a zero-duration `CopySaved` diagnostic mark. Returns the
    /// packed length.
    pub fn pack_into(&self, v: &Value, buf: &mut MpiBuf) -> usize {
        let t0 = self.obs_start();
        let mut data = buf.take_bytes();
        let reusable = data.capacity();
        let len = xdrser::serialize_into(v, &mut data);
        *buf = MpiBuf::from_bytes(data);
        self.obs_span(EventKind::Pack, t0, len);
        let saved = reusable.min(len);
        if saved > 0 {
            self.obs_mark(EventKind::CopySaved, saved);
        }
        len
    }

    /// `MPI_Unpack`: decode a buffer produced by [`Comm::pack`].
    pub fn unpack(&self, buf: &MpiBuf) -> Result<Value, MpiError> {
        let t0 = self.obs_start();
        let v = xdrser::unserialize_bytes(buf.bytes())?;
        self.obs_span(EventKind::Unpack, t0, buf.len());
        Ok(v)
    }

    // ----- collectives ------------------------------------------------------

    /// `MPI_Barrier` over all ranks of this communicator.
    pub fn barrier(&self) {
        self.transport.barrier();
    }

    /// `MPI_Bcast` of a value from `root` (simple linear fan-out).
    ///
    /// The root serializes once and fans the *same* allocation out behind
    /// an `Arc` ([`Comm::send_shared`]) — broadcasting an N-byte value to
    /// k destinations used to clone it k times; now it never copies on
    /// the send side of an in-process backend, and the saved bytes land
    /// in the recorder as `CopySaved` marks.
    pub fn bcast(&self, v: Option<&Value>, root: usize) -> Result<Value, MpiError> {
        const BCAST_TAG: i32 = i32::MAX - 1;
        if self.rank == root {
            let v = v.expect("root must supply the broadcast value");
            let bytes = Arc::new(xdrser::serialize_to_bytes(v));
            for dest in 0..self.size() {
                if dest != root {
                    self.send_shared(&bytes, dest as i32, BCAST_TAG)?;
                }
            }
            Ok(v.clone())
        } else {
            let (bytes, _) = self.recv(root as i32, BCAST_TAG)?;
            Ok(xdrser::unserialize_bytes(&bytes)?)
        }
    }

    /// Sum-reduction of one double to `root`; returns `Some(total)` at the
    /// root, `None` elsewhere.
    pub fn reduce_sum(&self, x: f64, root: usize) -> Result<Option<f64>, MpiError> {
        const REDUCE_TAG: i32 = i32::MAX - 2;
        if self.rank == root {
            let mut total = x;
            for _ in 0..self.size() - 1 {
                let (bytes, _) = self.recv(ANY_SOURCE, REDUCE_TAG)?;
                let v = xdrser::unserialize_bytes(&bytes)?;
                total += v.as_scalar().expect("reduce payload is a scalar");
            }
            Ok(Some(total))
        } else {
            self.send_internal(
                Payload::Owned(xdrser::serialize_to_bytes(&Value::scalar(x))),
                root as i32,
                REDUCE_TAG,
            )?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{World, ANY_TAG};

    #[test]
    fn rank_and_size() {
        let out = World::run(4, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn send_recv_bytes() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(b"hello", 1, 3).unwrap();
                Vec::new()
            } else {
                let (bytes, st) = c.recv(0, 3).unwrap();
                assert_eq!(st.src, 0);
                assert_eq!(st.tag, 3);
                assert_eq!(st.count(), 5);
                bytes
            }
        });
        assert_eq!(out[1], b"hello");
    }

    #[test]
    fn recv_any_source_any_tag() {
        let out = World::run(3, |c| {
            if c.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (bytes, st) = c.recv(ANY_SOURCE, ANY_TAG).unwrap();
                    seen.push((st.src, bytes[0]));
                }
                seen.sort();
                seen
            } else {
                c.send(&[c.rank() as u8], 0, c.rank() as i32).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn tag_selective_recv_out_of_order() {
        // Send tag 1 then tag 2; receiver asks for tag 2 first.
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(&[1], 1, 1).unwrap();
                c.send(&[2], 1, 2).unwrap();
                (0, 0)
            } else {
                let (b2, _) = c.recv(0, 2).unwrap();
                let (b1, _) = c.recv(0, 1).unwrap();
                (b1[0], b2[0])
            }
        });
        assert_eq!(out[1], (1, 2));
    }

    #[test]
    fn probe_then_sized_recv_like_fig4() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(&[7; 100], 1, 5).unwrap();
                0
            } else {
                let st = c.probe(ANY_SOURCE, ANY_TAG).unwrap();
                let mut buf = MpiBuf::with_capacity(st.count());
                let st2 = c.recv_into(&mut buf, st.src as i32, st.tag).unwrap();
                assert_eq!(st2.count(), 100);
                buf.len()
            }
        });
        assert_eq!(out[1], 100);
    }

    #[test]
    fn probe_does_not_consume() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(&[1, 2, 3], 1, 0).unwrap();
                true
            } else {
                let s1 = c.probe(0, 0).unwrap();
                let s2 = c.probe(0, 0).unwrap();
                assert_eq!(s1, s2);
                let (b, _) = c.recv(0, 0).unwrap();
                b == vec![1, 2, 3]
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn truncated_recv_is_error_and_preserves_message() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(&[9; 32], 1, 0).unwrap();
                true
            } else {
                let mut small = MpiBuf::with_capacity(8);
                match c.recv_into(&mut small, 0, 0) {
                    Err(MpiError::Truncated {
                        needed: 32,
                        capacity: 8,
                    }) => {}
                    other => panic!("expected truncation, got {other:?}"),
                }
                // Message still deliverable afterwards.
                let (b, _) = c.recv(0, 0).unwrap();
                b.len() == 32
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn iprobe_nonblocking() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                // Nothing pending yet for us.
                let none = c.iprobe(ANY_SOURCE, ANY_TAG).unwrap();
                c.send(&[1], 1, 0).unwrap();
                none.is_none()
            } else {
                let (_, _) = c.recv(0, 0).unwrap();
                true
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn send_obj_round_trips_values() {
        use nspval::Matrix;
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                let v = Value::list(vec![
                    Value::string("string"),
                    Value::boolean(true),
                    Value::Real(Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0])),
                ]);
                c.send_obj(&v, 1, 9).unwrap();
                None
            } else {
                let (v, st) = c.recv_obj(0, 9).unwrap();
                assert_eq!(st.src, 0);
                Some(v)
            }
        });
        let v = out[1].as_ref().unwrap();
        let l = v.as_list().unwrap();
        assert_eq!(l.get(0).unwrap().as_str(), Some("string"));
        assert_eq!(l.get(2).unwrap().as_matrix().unwrap().get(1, 0), 3.0);
    }

    #[test]
    fn send_serial_is_unsealed_on_recv_obj() {
        // §3.2: A=sparse-ish value; S=serialize(A); MPI_Send_Obj(S,...);
        // B=MPI_Recv_Obj(...); B.equal[A] is true.
        let out = World::run(2, |c| {
            let a = Value::list(vec![Value::scalar(5.0), Value::string("x")]);
            if c.rank() == 0 {
                let s = xdrser::serialize(&a);
                c.send_obj(&Value::Serial(s), 1, 0).unwrap();
                true
            } else {
                let (b, _) = c.recv_obj(0, 0).unwrap();
                b.equal(&a)
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn pack_send_unpack_like_paper() {
        // P=MPI_Pack(H,MCW); MPI_Send(P,...); probe; mpibuf_create;
        // MPI_Recv; H1=MPI_Unpack(B,MCW).
        let out = World::run(2, |c| {
            let mut h = nspval::Hash::new();
            h.set("A", Value::Bool(nspval::BoolMatrix::row(vec![true, false])));
            h.set(
                "B",
                Value::list(vec![
                    Value::string("foo"),
                    Value::Real(nspval::Matrix::range(1.0, 4.0)),
                ]),
            );
            let hv = Value::Hash(h);
            if c.rank() == 0 {
                let p = c.pack(&hv);
                c.send(p.bytes(), 1, 4).unwrap();
                true
            } else {
                let st = c.probe(-1, -1).unwrap();
                let mut b = MpiBuf::with_capacity(st.count());
                c.recv_into(&mut b, 0, 4).unwrap();
                let h1 = c.unpack(&b).unwrap();
                h1.equal(&hv)
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn invalid_rank_and_tag_rejected() {
        World::run(2, |c| {
            if c.rank() == 0 {
                assert!(matches!(c.send(&[1], 5, 0), Err(MpiError::InvalidRank(5))));
                assert!(matches!(
                    c.send(&[1], -2, 0),
                    Err(MpiError::InvalidRank(-2))
                ));
                assert!(matches!(c.send(&[1], 1, -3), Err(MpiError::InvalidTag(-3))));
            }
        });
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        COUNTER.store(0, Ordering::SeqCst);
        let out = World::run(4, |c| {
            COUNTER.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 4 increments.
            COUNTER.load(Ordering::SeqCst)
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn barrier_reusable() {
        let out = World::run(3, |c| {
            for _ in 0..5 {
                c.barrier();
            }
            c.rank()
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn bcast_from_root() {
        let out = World::run(3, |c| {
            let v = if c.rank() == 1 {
                Some(Value::string("params"))
            } else {
                None
            };
            c.bcast(v.as_ref(), 1)
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        });
        assert_eq!(out, vec!["params", "params", "params"]);
    }

    #[test]
    fn send_shared_delivers_one_allocation_to_every_rank() {
        let payload = vec![42u8; 4096];
        let out = World::run(4, |c| {
            if c.rank() == 0 {
                let shared = Arc::new(payload.clone());
                for dest in 1..c.size() {
                    c.send_shared(&shared, dest as i32, 5).unwrap();
                }
                // The root still holds the only *sender-side* handle:
                // everything else lives in the mailboxes until consumed.
                shared.len()
            } else {
                let (bytes, st) = c.recv(0, 5).unwrap();
                assert_eq!(st.count(), 4096);
                assert!(bytes.iter().all(|&b| b == 42));
                bytes.len()
            }
        });
        assert_eq!(out, vec![4096; 4]);
    }

    #[test]
    fn shared_sends_record_copy_saved_marks() {
        use obs::Recorder;
        let rec = Arc::new(Recorder::new(3));
        World::run_instrumented(3, None, Some(rec.clone()), |c| {
            if c.rank() == 0 {
                let v = Value::string("broadcast me");
                c.bcast(Some(&v), 0).unwrap();
            } else {
                c.bcast(None, 0).unwrap();
            }
        });
        let events = rec.events();
        let saved: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::CopySaved)
            .collect();
        // One avoided clone per non-root destination, all on the root.
        assert_eq!(saved.len(), 2);
        assert!(saved.iter().all(|e| e.rank == 0 && e.dur_ns == 0));
        let frame = xdrser::serialize_to_bytes(&Value::string("broadcast me")).len();
        assert!(saved.iter().all(|e| e.bytes == frame as u64));
    }

    #[test]
    fn pack_into_matches_pack_and_reuses_capacity() {
        World::run(1, |c| {
            let v = Value::string("a value big enough to need real bytes");
            let reference = c.pack(&v);
            let mut buf = MpiBuf::with_capacity(0);
            // First pack: no capacity to recycle yet.
            let n1 = c.pack_into(&v, &mut buf);
            assert_eq!(buf.bytes(), reference.bytes());
            assert_eq!(n1, reference.len());
            // Second pack recycles the first frame's allocation and is
            // still byte-identical.
            let n2 = c.pack_into(&v, &mut buf);
            assert_eq!(n2, n1);
            assert_eq!(buf.bytes(), reference.bytes());
            // The recycled buffer round-trips through unpack.
            assert_eq!(c.unpack(&buf).unwrap().as_str(), v.as_str());
        });
    }

    #[test]
    fn pack_into_records_copy_saved_only_on_reuse() {
        use obs::Recorder;
        let rec = Arc::new(Recorder::new(1));
        World::run_instrumented(1, None, Some(rec.clone()), |c| {
            let v = Value::string("steady-state frame");
            let mut buf = MpiBuf::with_capacity(0);
            c.pack_into(&v, &mut buf); // cold: nothing to reuse
            c.pack_into(&v, &mut buf); // warm: full frame reused
            c.pack_into(&v, &mut buf); // warm again
        });
        let events = rec.events();
        let saved: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::CopySaved)
            .collect();
        assert_eq!(saved.len(), 2, "only the warm packs save bytes");
        let frame = xdrser::serialize_to_bytes(&Value::string("steady-state frame")).len();
        assert!(saved.iter().all(|e| e.bytes >= frame as u64));
        assert_eq!(
            events.iter().filter(|e| e.kind == EventKind::Pack).count(),
            3
        );
    }

    #[test]
    fn truncated_shared_payload_degrades_without_corrupting_peers() {
        // Rank 0 shares one payload with ranks 1 and 2; the fault plan
        // truncates the *first* send in flight. The second destination
        // must still see the intact bytes (copy-on-truncate).
        let plan = Arc::new(FaultPlan::new(11).force_send(0, 0, SendFault::Truncate(3)));
        let out = World::run_with_faults(3, plan, |c| {
            if c.rank() == 0 {
                let shared = Arc::new(vec![7u8; 64]);
                c.send_shared(&shared, 1, 9).unwrap();
                c.send_shared(&shared, 2, 9).unwrap();
                0
            } else if c.rank() == 1 {
                // The mangled frame errors, then gets discarded.
                let err = c.recv(0, 9);
                assert!(matches!(err, Err(MpiError::Truncated { .. })));
                assert!(c.discard(0, 9).unwrap());
                1
            } else {
                let (bytes, _) = c.recv(0, 9).unwrap();
                assert_eq!(bytes, vec![7u8; 64]);
                2
            }
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn reduce_sum_to_root() {
        let out = World::run(4, |c| c.reduce_sum(c.rank() as f64 + 1.0, 0).unwrap());
        assert_eq!(out[0], Some(10.0));
        assert_eq!(out[1], None);
    }

    #[test]
    fn wtime_monotone() {
        World::run(1, |c| {
            let a = c.wtime();
            let b = c.wtime();
            assert!(b >= a);
        });
    }

    // ----- negative paths under fault injection ----------------------------

    #[test]
    fn send_to_severed_rank_fails_fast_not_deadlock() {
        let out = World::run(3, |c| {
            if c.rank() == 0 {
                c.barrier(); // wait until rank 2 is severed
                match c.send(&[1, 2, 3], 2, 0) {
                    Err(MpiError::Poisoned(2)) => true,
                    other => panic!("expected Poisoned(2), got {other:?}"),
                }
            } else if c.rank() == 1 {
                c.sever(2).unwrap();
                c.barrier();
                true
            } else {
                // Rank 2 must not block the others; it just waits out the
                // barrier (the barrier is group state, not mailbox traffic).
                c.barrier();
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn recv_on_dead_mailbox_wakes_blocked_waiter() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                // Block in recv with nothing pending; rank 1 severs us.
                match c.recv(ANY_SOURCE, ANY_TAG) {
                    Err(MpiError::Poisoned(0)) => true,
                    other => panic!("expected Poisoned(0), got {other:?}"),
                }
            } else {
                // Give rank 0 time to block, then pull the cable.
                std::thread::sleep(Duration::from_millis(30));
                c.sever(0).unwrap();
                true
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn killed_rank_fails_its_own_ops_and_peer_sends_fail_fast() {
        use std::sync::Arc;
        // Rank 1 dies at its very first MPI call.
        let plan = Arc::new(FaultPlan::new(9).kill_rank_at_op(1, 0));
        let events = Arc::clone(&plan);
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                match c.recv(0, 0) {
                    Err(MpiError::Poisoned(1)) => true,
                    other => panic!("expected Poisoned(1), got {other:?}"),
                }
            } else {
                // Keep trying until the kill has landed; a send must then
                // fail fast instead of queueing forever.
                loop {
                    match c.send(&[42], 1, 0) {
                        Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                        Err(MpiError::Poisoned(1)) => return true,
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                }
            }
        });
        assert!(out[0] && out[1]);
        assert!(events
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::Killed { rank: 1, op: 0 })));
    }

    #[test]
    fn injected_truncation_surfaces_error_and_preserves_message() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(1).force_send(0, 0, SendFault::Truncate(4)));
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                c.send(&[7u8; 32], 1, 3).unwrap();
                true
            } else {
                // Probe still advertises the full length.
                let st = c.probe(0, 3).unwrap();
                assert_eq!(st.count(), 32);
                // Receive refuses the mangled frame but keeps it queued.
                match c.recv(0, 3) {
                    Err(MpiError::Truncated {
                        needed: 32,
                        capacity: 4,
                    }) => {}
                    other => panic!("expected Truncated, got {other:?}"),
                }
                match c.recv(0, 3) {
                    Err(MpiError::Truncated { .. }) => {}
                    other => panic!("message should still be queued, got {other:?}"),
                }
                // A protocol resynchronises by discarding the frame.
                assert!(c.discard(0, 3).unwrap());
                assert!(!c.discard(0, 3).unwrap());
                true
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn injected_delay_defers_visibility() {
        use std::sync::Arc;
        let by = Duration::from_millis(40);
        let plan = Arc::new(FaultPlan::new(2).force_send(0, 0, SendFault::Delay(by)));
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                c.send(&[1], 1, 0).unwrap();
                c.barrier();
                Duration::ZERO
            } else {
                c.barrier(); // the message is already in flight
                             // Invisible now...
                assert!(c.iprobe(0, 0).unwrap().is_none());
                let t0 = Instant::now();
                let (_, _) = c.recv(0, 0).unwrap();
                t0.elapsed()
            }
        });
        assert!(out[1] >= Duration::from_millis(20), "woke at {:?}", out[1]);
    }

    #[test]
    fn dropped_message_never_arrives_and_timeout_expires() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(3).force_send(0, 0, SendFault::Drop));
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                c.send(&[9; 8], 1, 1).unwrap(); // silently lost
                true
            } else {
                let got = c.recv_timeout(0, 1, Duration::from_millis(50)).unwrap();
                got.is_none()
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn recv_timeout_returns_message_when_present() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(&[5, 6], 1, 2).unwrap();
                Vec::new()
            } else {
                let (bytes, st) = c
                    .recv_timeout(ANY_SOURCE, 2, Duration::from_secs(5))
                    .unwrap()
                    .expect("message was sent");
                assert_eq!(st.src, 0);
                bytes
            }
        });
        assert_eq!(out[1], vec![5, 6]);
    }

    #[test]
    fn probe_timeout_expires_quietly() {
        World::run(1, |c| {
            let t0 = Instant::now();
            let r = c
                .probe_timeout(ANY_SOURCE, ANY_TAG, Duration::from_millis(30))
                .unwrap();
            assert!(r.is_none());
            assert!(t0.elapsed() >= Duration::from_millis(25));
        });
    }

    #[test]
    fn inert_plan_is_transparent() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(1234));
        assert!(plan.is_inert());
        let events = Arc::clone(&plan);
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                for i in 0..20u8 {
                    c.send(&[i], 1, 0).unwrap();
                }
                Vec::new()
            } else {
                (0..20).map(|_| c.recv(0, 0).unwrap().0[0]).collect()
            }
        });
        assert_eq!(out[1], (0..20).collect::<Vec<u8>>());
        assert!(events.events().is_empty());
    }

    #[test]
    fn rank_alive_tracks_kills() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                assert!(c.rank_alive(0) && c.rank_alive(1));
                c.sever(1).unwrap();
                let alive = c.rank_alive(1);
                c.barrier();
                alive
            } else {
                c.barrier();
                true
            }
        });
        assert!(!out[0]);
    }
}
