//! Deterministic fault injection for the message-passing layer.
//!
//! A [`FaultPlan`] is consulted by every [`crate::Comm`] operation of a
//! world started with [`crate::World::run_with_faults`]. It can
//!
//! * **drop** a message (the MatlabMPI failure mode: file-based messages
//!   lost under NFS),
//! * **delay** a message by a scheduled `Duration` (stragglers, stalled
//!   links),
//! * **truncate** a payload in flight (partial writes), and
//! * **kill** a rank outright: from its kill point on, every MPI call the
//!   rank makes returns [`crate::MpiError::Poisoned`] and its mailbox is
//!   marked dead so peers sending to it fail fast instead of hanging.
//!
//! # Determinism
//!
//! Every decision is a **pure function** of `(seed, rank, operation
//! index)` — no global RNG, no wall clock. Rank *r*'s *k*-th send always
//! receives the same verdict for a given seed, regardless of thread
//! interleaving, so a chaos scenario is a reproducible test rather than a
//! flake. [`FaultPlan::send_schedule`] exposes the decision table
//! directly so tests can assert schedule equality across runs.
//!
//! Triggered injections are recorded in an internal log
//! ([`FaultPlan::events`]) for observability and assertions.

use std::sync::Mutex;
use std::time::Duration;

/// Verdict for one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver, but make the message visible to the receiver only after
    /// the given duration.
    Delay(Duration),
    /// Deliver only the first `n` bytes of the payload; the receiver sees
    /// the advertised full length and gets
    /// [`crate::MpiError::Truncated`] on receive.
    Truncate(usize),
}

/// One injected fault, as recorded in the plan's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A message from `rank`'s `send`-indexed operation was dropped.
    Dropped {
        /// Sending rank.
        rank: usize,
        /// Per-rank send index.
        send: u64,
    },
    /// A message was delayed by `by`.
    Delayed {
        /// Sending rank.
        rank: usize,
        /// Per-rank send index.
        send: u64,
        /// Injected delivery delay.
        by: Duration,
    },
    /// A payload was truncated from `full` to `kept` bytes.
    Truncated {
        /// Sending rank.
        rank: usize,
        /// Per-rank send index.
        send: u64,
        /// Bytes actually delivered.
        kept: usize,
        /// Original payload size.
        full: usize,
    },
    /// A rank was killed at its `op`-th MPI call.
    Killed {
        /// The killed rank.
        rank: usize,
        /// Per-rank operation index at which the kill fired.
        op: u64,
    },
}

/// Deterministic, seed-driven fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    delay_rate: f64,
    delay_lo: Duration,
    delay_hi: Duration,
    truncate_rate: f64,
    /// `(rank, op)` — the rank dies at its first MPI call with index ≥ `op`.
    kills: Vec<(usize, u64)>,
    /// Explicit per-`(rank, send index)` verdicts, overriding the rates.
    forced: Vec<(usize, u64, SendFault)>,
    events: Mutex<Vec<FaultEvent>>,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            seed: self.seed,
            drop_rate: self.drop_rate,
            delay_rate: self.delay_rate,
            delay_lo: self.delay_lo,
            delay_hi: self.delay_hi,
            truncate_rate: self.truncate_rate,
            kills: self.kills.clone(),
            forced: self.forced.clone(),
            events: Mutex::new(self.events.lock().expect("fault log").clone()),
        }
    }
}

/// SplitMix64-style avalanche over the decision coordinates.
fn mix(seed: u64, rank: u64, idx: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(rank.wrapping_mul(0xA0761D6478BD642F))
        .wrapping_add(idx.wrapping_mul(0xE7037ED1A0B428DB))
        .wrapping_add(salt.wrapping_mul(0x8EBC6AF09C88C6E3))
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// A plan with the given seed and **no** faults: rates are zero and
    /// no kills are scheduled. Running a farm under an inert plan must be
    /// behaviourally identical to running without one.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_lo: Duration::ZERO,
            delay_hi: Duration::ZERO,
            truncate_rate: 0.0,
            kills: Vec::new(),
            forced: Vec::new(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Drop each message independently with probability `rate`
    /// (deterministically derived from `(seed, rank, send index)`).
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.drop_rate = rate;
        self
    }

    /// Delay each (non-dropped) message with probability `rate`, by a
    /// deterministic duration in `[lo, hi]`.
    pub fn with_delay_rate(mut self, rate: f64, lo: Duration, hi: Duration) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(lo <= hi, "delay range inverted");
        self.delay_rate = rate;
        self.delay_lo = lo;
        self.delay_hi = hi;
        self
    }

    /// Truncate each (non-dropped, non-delayed) message with probability
    /// `rate`, keeping a deterministic prefix of the payload.
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.truncate_rate = rate;
        self
    }

    /// Kill `rank` at its first MPI call with per-rank operation index
    /// `>= op` (operation indices count every send/recv/probe the rank
    /// performs, starting at 0).
    pub fn kill_rank_at_op(mut self, rank: usize, op: u64) -> Self {
        self.kills.push((rank, op));
        self
    }

    /// Force a specific verdict for `rank`'s `send`-th outgoing message,
    /// overriding the probabilistic rates.
    pub fn force_send(mut self, rank: usize, send: u64, fault: SendFault) -> Self {
        self.forced.push((rank, send, fault));
        self
    }

    /// `true` if this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.truncate_rate == 0.0
            && self.kills.is_empty()
            && self.forced.is_empty()
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pure decision function: the verdict for `rank`'s `send`-th
    /// outgoing message of `payload_len` bytes.
    pub fn decide_send(&self, rank: usize, send: u64, payload_len: usize) -> SendFault {
        if let Some(&(_, _, fault)) = self
            .forced
            .iter()
            .find(|&&(r, s, _)| r == rank && s == send)
        {
            return match fault {
                SendFault::Truncate(n) => SendFault::Truncate(n.min(payload_len)),
                other => other,
            };
        }
        let r = rank as u64;
        if self.drop_rate > 0.0 && unit(mix(self.seed, r, send, 1)) < self.drop_rate {
            return SendFault::Drop;
        }
        if self.delay_rate > 0.0 && unit(mix(self.seed, r, send, 2)) < self.delay_rate {
            let frac = unit(mix(self.seed, r, send, 3));
            let span = self.delay_hi.saturating_sub(self.delay_lo);
            return SendFault::Delay(self.delay_lo + span.mul_f64(frac));
        }
        if self.truncate_rate > 0.0 && unit(mix(self.seed, r, send, 4)) < self.truncate_rate {
            // Keep a deterministic strict prefix (at least the "header"
            // flavour of a partial write: half the payload, rounded down).
            return SendFault::Truncate(payload_len / 2);
        }
        SendFault::Deliver
    }

    /// Pure decision function: does `rank` die at per-rank operation
    /// index `op`?
    pub fn should_kill(&self, rank: usize, op: u64) -> bool {
        self.kills.iter().any(|&(r, at)| r == rank && op >= at)
    }

    /// The full send-fault schedule for one rank's first `ops` sends,
    /// assuming `payload_len`-byte messages. Two plans with the same seed
    /// and configuration produce identical schedules — the determinism
    /// guarantee chaos tests assert on.
    pub fn send_schedule(&self, rank: usize, ops: u64, payload_len: usize) -> Vec<SendFault> {
        (0..ops)
            .map(|i| self.decide_send(rank, i, payload_len))
            .collect()
    }

    /// Injections that actually triggered so far, in trigger order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().expect("fault log").clone()
    }

    pub(crate) fn record(&self, ev: FaultEvent) {
        self.events.lock().expect("fault log").push(ev);
    }

    // ----- environment codec ------------------------------------------------
    //
    // Every field of a plan is plain data, so a plan crosses a process
    // boundary as a single environment string: the parent of a
    // [`crate::ProcessWorld`] encodes its plan and each child rebuilds an
    // identical one. Floating rates travel as exact bit patterns so the
    // child's decision table is *bit-identical* to the parent's
    // (determinism across the process boundary, not merely "close").

    /// Encode the plan's configuration (not its event log) as one string
    /// suitable for an environment variable. [`FaultPlan::decode`] of the
    /// result reproduces the exact decision table.
    pub fn encode(&self) -> String {
        let forced: Vec<String> = self
            .forced
            .iter()
            .map(|&(r, s, f)| {
                let verdict = match f {
                    SendFault::Deliver => "keep".to_string(),
                    SendFault::Drop => "drop".to_string(),
                    SendFault::Delay(d) => format!("delay.{}", d.as_nanos()),
                    SendFault::Truncate(n) => format!("trunc.{n}"),
                };
                format!("{r}.{s}.{verdict}")
            })
            .collect();
        let kills: Vec<String> = self
            .kills
            .iter()
            .map(|&(r, op)| format!("{r}.{op}"))
            .collect();
        format!(
            "seed={};drop={:016x};delay={:016x};dlo={};dhi={};trunc={:016x};kills={};forced={}",
            self.seed,
            self.drop_rate.to_bits(),
            self.delay_rate.to_bits(),
            self.delay_lo.as_nanos(),
            self.delay_hi.as_nanos(),
            self.truncate_rate.to_bits(),
            kills.join(","),
            forced.join(","),
        )
    }

    /// Rebuild a plan from [`FaultPlan::encode`] output. `None` on any
    /// malformed field — a process world treats that as a launch error
    /// rather than silently running faultless.
    pub fn decode(s: &str) -> Option<FaultPlan> {
        let mut plan = FaultPlan::new(0);
        for field in s.split(';') {
            let (key, val) = field.split_once('=')?;
            match key {
                "seed" => plan.seed = val.parse().ok()?,
                "drop" => plan.drop_rate = f64::from_bits(u64::from_str_radix(val, 16).ok()?),
                "delay" => plan.delay_rate = f64::from_bits(u64::from_str_radix(val, 16).ok()?),
                "dlo" => plan.delay_lo = Duration::from_nanos(val.parse().ok()?),
                "dhi" => plan.delay_hi = Duration::from_nanos(val.parse().ok()?),
                "trunc" => {
                    plan.truncate_rate = f64::from_bits(u64::from_str_radix(val, 16).ok()?)
                }
                "kills" => {
                    for kill in val.split(',').filter(|k| !k.is_empty()) {
                        let (r, op) = kill.split_once('.')?;
                        plan.kills.push((r.parse().ok()?, op.parse().ok()?));
                    }
                }
                "forced" => {
                    for forced in val.split(',').filter(|k| !k.is_empty()) {
                        let mut it = forced.splitn(3, '.');
                        let r: usize = it.next()?.parse().ok()?;
                        let send: u64 = it.next()?.parse().ok()?;
                        let token = it.next()?;
                        let v = match token.split_once('.') {
                            None if token == "keep" => SendFault::Deliver,
                            None if token == "drop" => SendFault::Drop,
                            Some(("delay", ns)) => {
                                SendFault::Delay(Duration::from_nanos(ns.parse().ok()?))
                            }
                            Some(("trunc", n)) => SendFault::Truncate(n.parse().ok()?),
                            _ => return None,
                        };
                        plan.forced.push((r, send, v));
                    }
                }
                _ => return None,
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let p = FaultPlan::new(42);
        assert!(p.is_inert());
        for rank in 0..4 {
            for op in 0..200 {
                assert_eq!(p.decide_send(rank, op, 100), SendFault::Deliver);
                assert!(!p.should_kill(rank, op));
            }
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            FaultPlan::new(7)
                .with_drop_rate(0.2)
                .with_delay_rate(0.3, Duration::from_millis(1), Duration::from_millis(9))
                .with_truncate_rate(0.1)
        };
        let (a, b) = (mk(), mk());
        for rank in 0..6 {
            assert_eq!(
                a.send_schedule(rank, 500, 64),
                b.send_schedule(rank, 500, 64),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with_drop_rate(0.5);
        let b = FaultPlan::new(2).with_drop_rate(0.5);
        assert_ne!(a.send_schedule(0, 200, 16), b.send_schedule(0, 200, 16));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let p = FaultPlan::new(11).with_drop_rate(0.25);
        let n = 10_000;
        let drops = p
            .send_schedule(3, n, 32)
            .iter()
            .filter(|f| matches!(f, SendFault::Drop))
            .count();
        let frac = drops as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "drop fraction {frac}");
    }

    #[test]
    fn forced_verdicts_override_rates() {
        let p = FaultPlan::new(3)
            .with_drop_rate(1.0)
            .force_send(1, 4, SendFault::Deliver)
            .force_send(1, 5, SendFault::Truncate(1 << 20));
        assert_eq!(p.decide_send(1, 4, 10), SendFault::Deliver);
        // Truncation clamps to the payload size.
        assert_eq!(p.decide_send(1, 5, 10), SendFault::Truncate(10));
        assert_eq!(p.decide_send(1, 6, 10), SendFault::Drop);
    }

    #[test]
    fn kill_fires_at_and_after_threshold() {
        let p = FaultPlan::new(0).kill_rank_at_op(2, 10);
        assert!(!p.should_kill(2, 9));
        assert!(p.should_kill(2, 10));
        assert!(p.should_kill(2, 11));
        assert!(!p.should_kill(1, 10));
    }

    #[test]
    fn delay_durations_within_range() {
        let p = FaultPlan::new(5).with_delay_rate(
            1.0,
            Duration::from_millis(2),
            Duration::from_millis(8),
        );
        for f in p.send_schedule(0, 200, 8) {
            match f {
                SendFault::Delay(d) => {
                    assert!(d >= Duration::from_millis(2) && d <= Duration::from_millis(8))
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_decision_table() {
        let p = FaultPlan::new(99)
            .with_drop_rate(0.1)
            .with_delay_rate(0.25, Duration::from_millis(3), Duration::from_millis(17))
            .with_truncate_rate(0.05)
            .kill_rank_at_op(2, 40)
            .force_send(1, 3, SendFault::Drop)
            .force_send(0, 0, SendFault::Delay(Duration::from_millis(9)))
            .force_send(3, 8, SendFault::Truncate(12))
            .force_send(2, 2, SendFault::Deliver);
        let q = FaultPlan::decode(&p.encode()).expect("decodes");
        assert_eq!(q.seed(), p.seed());
        for rank in 0..4 {
            assert_eq!(
                p.send_schedule(rank, 300, 64),
                q.send_schedule(rank, 300, 64),
                "rank {rank}"
            );
            for op in 0..60 {
                assert_eq!(p.should_kill(rank, op), q.should_kill(rank, op));
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FaultPlan::decode("nonsense").is_none());
        assert!(FaultPlan::decode("seed=x;drop=0").is_none());
        assert!(FaultPlan::decode("seed=1;unknown=2").is_none());
    }

    #[test]
    fn inert_plan_encodes_inert() {
        let p = FaultPlan::decode(&FaultPlan::new(5).encode()).unwrap();
        assert!(p.is_inert());
        assert_eq!(p.seed(), 5);
    }

    #[test]
    fn event_log_records_in_order() {
        let p = FaultPlan::new(0);
        p.record(FaultEvent::Dropped { rank: 1, send: 0 });
        p.record(FaultEvent::Killed { rank: 2, op: 7 });
        assert_eq!(
            p.events(),
            vec![
                FaultEvent::Dropped { rank: 1, send: 0 },
                FaultEvent::Killed { rank: 2, op: 7 },
            ]
        );
    }
}
