//! Multi-process worlds: real OS processes over the Unix-domain-socket
//! transport.
//!
//! Where [`crate::World`] runs every rank as a thread of one process,
//! [`ProcessWorld`] re-executes the current binary once per child rank.
//! Each child discovers its identity from environment variables, joins
//! the socket mesh under a shared rendezvous directory and runs an entry
//! point looked up **by name** in a registry the binary declares — the
//! closure itself cannot cross the process boundary, so the paper's
//! `MPI_Comm_spawn(command, args, n)` shape (spawn a *program*, not a
//! closure) is reproduced faithfully.
//!
//! ```text
//! parent (rank 0)                    child i (rank i)
//!   spawn_full("slave", ...)           exec(current_exe)
//!     spawn n children  ────────▶      child_entry(®istry)
//!     UdsTransport::connect               reads MINIMPI_PROC_*
//!       ◀── full mesh handshake ──▶      UdsTransport::connect
//!     Comm (rank 0)                      registry["slave"](Comm)
//! ```
//!
//! Fault plans cross the boundary through the [`FaultPlan`] environment
//! codec, so the child's decision table is bit-identical to the
//! parent's. Child-side fault *logs* stay in the child (a real cluster
//! has the same visibility limit); tests assert observable behaviour
//! instead.

use crate::comm::Comm;
use crate::error::MpiError;
use crate::fault::FaultPlan;
use obs::Recorder;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use transport::UdsTransport;

/// Rendezvous directory of the mesh (also the "world exists" marker).
const ENV_DIR: &str = "MINIMPI_PROC_DIR";
/// The child's rank.
const ENV_RANK: &str = "MINIMPI_PROC_RANK";
/// Total world size (children + parent).
const ENV_SIZE: &str = "MINIMPI_PROC_SIZE";
/// Name of the entry point to run, resolved in the child's registry.
const ENV_ENTRY: &str = "MINIMPI_PROC_ENTRY";
/// Encoded [`FaultPlan`] (absent = no plan).
const ENV_PLAN: &str = "MINIMPI_PROC_PLAN";

/// Distinguishes concurrent worlds spawned by one parent process.
static WORLD_SEQ: AtomicU64 = AtomicU64::new(0);

/// A child entry point: the function a spawned rank runs once it has
/// joined the mesh. Registered by name in [`ProcessWorld::child_entry`].
pub type ChildEntry = fn(Comm);

/// Entry points for multi-process communicator groups. See the module
/// docs for the launch protocol.
pub struct ProcessWorld;

impl ProcessWorld {
    /// Spawn `n_children` copies of the current executable, each running
    /// the registered entry point `entry` (see
    /// [`ProcessWorld::child_entry`]), and join them as rank 0 of a
    /// `n_children + 1`-rank world. Use from a normal binary whose
    /// `main` calls `child_entry` before anything else.
    pub fn spawn(n_children: usize, entry: &str) -> Result<ProcessParent, MpiError> {
        Self::spawn_full(n_children, entry, None, None, None)
    }

    /// [`ProcessWorld::spawn`] for callers inside a libtest binary: the
    /// children are pointed at `bootstrap_test`, a `#[test]` function
    /// that calls [`ProcessWorld::child_entry`] (libtest offers no other
    /// hook into `main`). The bootstrap test passes trivially in normal
    /// test runs because the environment variables are absent.
    pub fn spawn_in_test(
        n_children: usize,
        entry: &str,
        bootstrap_test: &str,
    ) -> Result<ProcessParent, MpiError> {
        Self::spawn_full(n_children, entry, None, None, Some(bootstrap_test))
    }

    /// The fully general spawn: optional fault plan (shipped to every
    /// child through the environment codec and applied by the parent's
    /// own [`Comm`] too), optional parent-side [`Recorder`], optional
    /// libtest bootstrap.
    pub fn spawn_full(
        n_children: usize,
        entry: &str,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Arc<Recorder>>,
        bootstrap_test: Option<&str>,
    ) -> Result<ProcessParent, MpiError> {
        assert!(n_children >= 1, "spawn needs at least one child");
        let size = n_children + 1;
        let exe = std::env::current_exe()
            .map_err(|e| MpiError::Transport(format!("current_exe: {e}")))?;
        let dir = std::env::temp_dir().join(format!(
            "minimpi_world_{}_{}",
            std::process::id(),
            WORLD_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| MpiError::Transport(format!("rendezvous dir: {e}")))?;

        let mut children = Vec::with_capacity(n_children);
        for rank in 1..size {
            let mut cmd = Command::new(&exe);
            cmd.env(ENV_DIR, &dir)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, size.to_string())
                .env(ENV_ENTRY, entry)
                .stdout(Stdio::null());
            if let Some(plan) = &plan {
                cmd.env(ENV_PLAN, plan.encode());
            }
            if let Some(name) = bootstrap_test {
                // libtest: run exactly the bootstrap test, on the main
                // test thread, without capturing (capture buffers live
                // past the entry and slow teardown).
                cmd.args([name, "--exact", "--test-threads=1", "--nocapture"]);
            }
            match cmd.spawn() {
                Ok(child) => children.push(child),
                Err(e) => {
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(MpiError::Transport(format!("spawn rank {rank}: {e}")));
                }
            }
        }

        // Children dial us with retry, so connecting after spawning is
        // race-free; connect blocks until the mesh is complete.
        match UdsTransport::connect(&dir, 0, size) {
            Ok(t) => Ok(ProcessParent {
                comm: Some(Comm::new(Arc::new(t), plan, recorder)),
                children,
                dir,
            }),
            Err(e) => {
                for c in &mut children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                let _ = std::fs::remove_dir_all(&dir);
                Err(MpiError::Transport(format!("parent connect: {e}")))
            }
        }
    }

    /// Child-side bootstrap. Call this **first** in `main` (or from the
    /// libtest bootstrap test): when the process is a spawned child it
    /// joins the mesh, runs its registered entry and returns `true` (the
    /// caller should then exit); in a plain invocation it returns
    /// `false` immediately.
    ///
    /// `registry` maps entry names to functions; spawning an entry
    /// absent from the child's registry panics the child, which the
    /// parent observes as a failed exit status in
    /// [`ProcessParent::join`].
    pub fn child_entry(registry: &[(&str, ChildEntry)]) -> bool {
        let Ok(dir) = std::env::var(ENV_DIR) else {
            return false;
        };
        let rank: usize = std::env::var(ENV_RANK)
            .expect("child rank")
            .parse()
            .expect("child rank parses");
        let size: usize = std::env::var(ENV_SIZE)
            .expect("world size")
            .parse()
            .expect("world size parses");
        let entry = std::env::var(ENV_ENTRY).expect("entry name");
        let plan = std::env::var(ENV_PLAN).ok().map(|s| {
            Arc::new(FaultPlan::decode(&s).expect("fault plan decodes across the boundary"))
        });
        let f = registry
            .iter()
            .find(|(name, _)| *name == entry)
            .unwrap_or_else(|| panic!("no registered entry point named {entry:?}"))
            .1;
        let transport = UdsTransport::connect(dir.as_ref(), rank, size)
            .unwrap_or_else(|e| panic!("child rank {rank} failed to join mesh: {e}"));
        f(Comm::new(Arc::new(transport), plan, None));
        true
    }
}

/// The parent's handle on a spawned multi-process world: rank 0's
/// [`Comm`] plus the child processes.
pub struct ProcessParent {
    comm: Option<Comm>,
    children: Vec<Child>,
    dir: PathBuf,
}

impl ProcessParent {
    /// The parent's endpoint (rank 0) in the world.
    pub fn comm(&self) -> &Comm {
        self.comm.as_ref().expect("comm present until join")
    }

    /// Wait for every child to exit, failing if any exited unsuccessfully
    /// (e.g. a panicked entry point). Call after the protocol has told
    /// the children to stop — this does not interrupt them.
    pub fn join(mut self) -> Result<(), MpiError> {
        // Drop our endpoint first: children blocked on reads from a
        // parent that is done observe EOF instead of waiting forever.
        self.comm = None;
        let mut failures = Vec::new();
        for (i, mut child) in self.children.drain(..).enumerate() {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => failures.push(format!("rank {}: {status}", i + 1)),
                Err(e) => failures.push(format!("rank {}: wait failed: {e}", i + 1)),
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
        if failures.is_empty() {
            Ok(())
        } else {
            Err(MpiError::Transport(format!(
                "child failures: {}",
                failures.join("; ")
            )))
        }
    }
}

impl Drop for ProcessParent {
    fn drop(&mut self) {
        if self.children.is_empty() {
            return;
        }
        // Not joined: poison the group so blocked children wake, then
        // make sure nothing outlives us.
        if let Some(c) = &self.comm {
            c.transport().poison();
        }
        self.comm = None;
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}
