//! Launching rank groups: the static `MPI_COMM_WORLD` style entry point and
//! the dynamic `NSP_spawn` (MPI_Comm_spawn + MPI_Intercomm_merge) path.

use crate::comm::Comm;
use crate::fault::FaultPlan;
use obs::Recorder;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;
use transport::{ChannelGroup, Transport};

/// Entry points for creating communicator groups.
pub struct World;

impl World {
    /// Run `f` on `size` ranks (threads); rank `i` receives a [`Comm`] with
    /// `rank() == i` and `size() == size`. Blocks until every rank
    /// finishes and returns their results in rank order.
    ///
    /// This is the `mpirun -np size` entry point: Fig. 4's
    /// `MPI_Init(); MPI_COMM_WORLD = mpicomm_create('WORLD')` preamble maps
    /// to simply receiving the `Comm`.
    ///
    /// If any rank panics, the group is poisoned so blocked peers fail
    /// with [`crate::MpiError::Disconnected`] instead of deadlocking, and
    /// the first panic is propagated to the caller.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        Self::run_inner(size, None, None, f)
    }

    /// Like [`World::run`] but every rank's traffic is filtered through
    /// `plan` — the chaos-testing entry point. Pass an `Arc` so the caller
    /// keeps a handle for [`FaultPlan::events`] after the world finishes.
    ///
    /// A rank killed by the plan does not panic: its next operation
    /// returns [`crate::MpiError::Poisoned`] and the closure decides how to
    /// wind down, exactly as a real process would observe a comm failure.
    pub fn run_with_faults<T, F>(size: usize, plan: Arc<FaultPlan>, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        Self::run_inner(size, Some(plan), None, f)
    }

    /// The fully general entry point: [`World::run`] plus an optional
    /// fault plan and an optional phase-event [`Recorder`]. Every rank's
    /// [`Comm`] carries the recorder handle, so all point-to-point and
    /// pack/unpack traffic is timestamped into the per-rank ring buffers;
    /// with `recorder == None` the instrumentation compiles down to a
    /// `None` check and no clock reads (see `tests/obs_overhead.rs`).
    pub fn run_instrumented<T, F>(
        size: usize,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Arc<Recorder>>,
        f: F,
    ) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        Self::run_inner(size, plan, recorder, f)
    }

    fn run_inner<T, F>(
        size: usize,
        plan: Option<Arc<FaultPlan>>,
        recorder: Option<Arc<Recorder>>,
        f: F,
    ) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        assert!(size >= 1, "world needs at least one rank");
        let group = ChannelGroup::new(size);
        let results: Vec<Mutex<Option<T>>> = (0..size).map(|_| Mutex::new(None)).collect();
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        thread::scope(|scope| {
            for rank in 0..size {
                let endpoint: Arc<dyn Transport> = Arc::new(group.endpoint(rank));
                let comm = Comm::new(endpoint, plan.clone(), recorder.clone());
                let f = &f;
                let results = &results;
                let group = &group;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(v) => {
                            *results[rank].lock().unwrap() = Some(v);
                        }
                        Err(p) => {
                            // Wake everyone blocked on a recv/probe, then
                            // record the panic for the caller.
                            group.poison();
                            let mut slot = panic_slot.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(p);
                            }
                        }
                    }
                });
            }
        });

        if let Some(p) = panic_slot.into_inner().unwrap() {
            resume_unwind(p);
        }
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("rank produced no result"))
            .collect()
    }
}

/// A dynamically spawned set of child ranks merged with the caller —
/// the result of the paper's `NEWORLD = NSP_spawn(n)` (Fig. 1):
/// `MPI_Comm_spawn` of `n` child interpreters followed by
/// `MPI_Intercomm_merge`, with the parent at rank 0 of the merged
/// communicator and children at ranks 1..=n.
pub struct SpawnedWorld {
    comm: Option<Comm>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl SpawnedWorld {
    /// Spawn `n_children` ranks executing `child` and merge them with the
    /// caller. The caller keeps working with [`SpawnedWorld::comm`]
    /// (rank 0); children get ranks `1..=n_children`.
    pub fn spawn<F>(n_children: usize, child: F) -> SpawnedWorld
    where
        F: Fn(Comm) + Send + Sync + Clone + 'static,
    {
        assert!(n_children >= 1, "spawn needs at least one child");
        let group = ChannelGroup::new(n_children + 1);
        let mut handles = Vec::with_capacity(n_children);
        for rank in 1..=n_children {
            let endpoint: Arc<dyn Transport> = Arc::new(group.endpoint(rank));
            let comm = Comm::new(endpoint, None, None);
            let child = child.clone();
            handles.push(thread::spawn(move || child(comm)));
        }
        let endpoint: Arc<dyn Transport> = Arc::new(group.endpoint(0));
        SpawnedWorld {
            comm: Some(Comm::new(endpoint, None, None)),
            handles,
        }
    }

    /// The parent's endpoint in the merged communicator (rank 0).
    pub fn comm(&self) -> &Comm {
        self.comm.as_ref().expect("comm taken")
    }

    /// Wait for all children to terminate. Call after telling them to stop
    /// (e.g. the empty-name message of Fig. 4).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        for h in self.handles.drain(..) {
            if let Err(p) = h.join() {
                resume_unwind(p);
            }
        }
    }
}

impl Drop for SpawnedWorld {
    fn drop(&mut self) {
        // Poison first so children blocked in recv wake up rather than
        // leaking; then reap them.
        if !self.handles.is_empty() {
            if let Some(c) = &self.comm {
                c.transport().poison();
            }
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ANY_SOURCE;
    use nspval::Value;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = World::run(5, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |c| {
            assert_eq!(c.size(), 1);
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn panic_in_one_rank_propagates_without_deadlock() {
        let r = std::panic::catch_unwind(|| {
            World::run(2, |c| {
                if c.rank() == 1 {
                    panic!("rank 1 died");
                }
                // Rank 0 blocks forever unless poisoning wakes it.
                let _ = c.recv(ANY_SOURCE, crate::ANY_TAG);
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn run_joins_every_rank_even_when_one_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Every surviving rank must run to completion (threads joined, not
        // detached) before `run` rethrows the panic.
        let finished = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            World::run(4, |c| {
                if c.rank() == 3 {
                    panic!("rank 3 died");
                }
                // Survivors do real work, then block on a recv that only
                // the poison pulse can release.
                let _ = c.recv(ANY_SOURCE, crate::ANY_TAG);
                finished.fetch_add(1, Ordering::SeqCst);
            })
        }));
        assert!(r.is_err());
        // thread::scope guarantees joins: all 3 survivors finished.
        assert_eq!(finished.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_with_faults_joins_killed_ranks() {
        use crate::{FaultPlan, MpiError};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(17).kill_rank_at_op(0, 0));
        let out = World::run_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                matches!(c.recv(1, 0), Err(MpiError::Poisoned(0)))
            } else {
                // Peer finds out via the fast-fail send and still returns.
                loop {
                    match c.send(&[1], 0, 0) {
                        Err(MpiError::Poisoned(0)) => return true,
                        Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn run_instrumented_records_comm_events() {
        use obs::{EventKind, Recorder};
        let rec = Arc::new(Recorder::new(2));
        World::run_instrumented(2, None, Some(rec.clone()), |c| {
            if c.rank() == 0 {
                c.set_job(Some(7));
                c.send_obj(&Value::scalar(1.0), 1, 3).unwrap();
            } else {
                let st = c.probe(0, 3).unwrap();
                let (_, _) = c.recv(0, st.tag).unwrap();
            }
        });
        let events = rec.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Serialize));
        assert!(kinds.contains(&EventKind::Send));
        assert!(kinds.contains(&EventKind::Probe));
        assert!(kinds.contains(&EventKind::Recv));
        // Job attribution flows from set_job on the sending rank.
        let send = events
            .iter()
            .find(|e| e.kind == EventKind::Send)
            .expect("send event");
        assert_eq!(send.job, 7);
        assert_eq!(send.rank, 0);
        assert!(send.bytes > 0);
    }

    #[test]
    fn spawned_world_like_fig1() {
        // NEWORLD = NSP_spawn(3); children echo their rank to the master.
        let spawned = SpawnedWorld::spawn(3, |c: crate::Comm| {
            // Child: wait for a ping, reply with rank.
            let (_, st) = c.recv(0, 1).unwrap();
            c.send_obj(&Value::scalar(c.rank() as f64), st.src as i32, 2)
                .unwrap();
        });
        let master = spawned.comm();
        assert_eq!(master.rank(), 0);
        assert_eq!(master.size(), 4);
        for child in 1..=3 {
            master.send(&[], child, 1).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let (v, _) = master.recv_obj(ANY_SOURCE, 2).unwrap();
            got.push(v.as_scalar().unwrap() as usize);
        }
        got.sort();
        assert_eq!(got, vec![1, 2, 3]);
        spawned.join();
    }

    #[test]
    fn spawned_world_drop_does_not_hang() {
        // Children blocked in recv; dropping the SpawnedWorld must poison
        // and reap them without deadlock.
        let spawned = SpawnedWorld::spawn(2, |c: crate::Comm| {
            let _ = c.recv(0, 1); // will fail with Disconnected on drop
        });
        drop(spawned);
    }
}
