//! Error type for message-passing operations.

use std::fmt;

/// Failures surfaced by the message-passing layer.
#[derive(Debug)]
pub enum MpiError {
    /// Destination or probed rank outside the communicator.
    InvalidRank(i32),
    /// User tags must be non-negative (negative tags are reserved for
    /// wildcards and internal collectives).
    InvalidTag(i32),
    /// A receive buffer (or in-flight payload mangled by fault injection)
    /// was smaller than the matched message (MPI_ERR_TRUNCATE).
    Truncated {
        /// Size of the matched message in bytes.
        needed: usize,
        /// Capacity of the supplied buffer.
        capacity: usize,
    },
    /// The payload failed to decode as a serialized value.
    Decode(xdrser::XdrError),
    /// The communicator was torn down while blocked (a peer panicked).
    Disconnected,
    /// The given rank is dead: either a fault plan killed it (see
    /// [`crate::FaultPlan`]) or it was administratively severed. A send
    /// to a dead rank fails fast with this error instead of queueing into
    /// a mailbox nobody will drain; every operation *by* a dead rank also
    /// fails with this error (carrying its own rank).
    Poisoned(usize),
    /// The transport backend failed below the messaging layer (e.g. a
    /// socket write error on the multi-process backend). The in-process
    /// channel backend never produces this.
    Transport(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::InvalidTag(t) => write!(f, "invalid tag {t}"),
            MpiError::Truncated { needed, capacity } => {
                write!(
                    f,
                    "message truncated: {needed} bytes into {capacity}-byte buffer"
                )
            }
            MpiError::Decode(e) => write!(f, "object decode failed: {e}"),
            MpiError::Disconnected => write!(f, "communicator torn down"),
            MpiError::Poisoned(rank) => write!(f, "rank {rank} is dead (mailbox poisoned)"),
            MpiError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xdrser::XdrError> for MpiError {
    fn from(e: xdrser::XdrError) -> Self {
        MpiError::Decode(e)
    }
}
