//! Error type for message-passing operations.

use std::fmt;

/// Failures surfaced by the message-passing layer.
#[derive(Debug)]
pub enum MpiError {
    /// Destination or probed rank outside the communicator.
    InvalidRank(i32),
    /// User tags must be non-negative (negative tags are reserved for
    /// wildcards and internal collectives).
    InvalidTag(i32),
    /// A receive buffer was smaller than the matched message
    /// (MPI_ERR_TRUNCATE).
    /// Receive buffer smaller than the matched message (MPI_ERR_TRUNCATE).
    Truncated {
        /// Size of the matched message in bytes.
        needed: usize,
        /// Capacity of the supplied buffer.
        capacity: usize,
    },
    /// The payload failed to decode as a serialized value.
    Decode(xdrser::XdrError),
    /// The communicator was torn down while blocked (a peer panicked).
    Disconnected,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::InvalidTag(t) => write!(f, "invalid tag {t}"),
            MpiError::Truncated { needed, capacity } => {
                write!(f, "message truncated: {needed} bytes into {capacity}-byte buffer")
            }
            MpiError::Decode(e) => write!(f, "object decode failed: {e}"),
            MpiError::Disconnected => write!(f, "communicator torn down"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xdrser::XdrError> for MpiError {
    fn from(e: xdrser::XdrError) -> Self {
        MpiError::Decode(e)
    }
}
