//! An in-process MPI-like message-passing runtime.
//!
//! The paper accesses MPI-2 through the MPINSP toolbox: communicators,
//! ranks, tags, `MPI_Send`/`MPI_Recv`/`MPI_Probe`/`MPI_Get_count`,
//! `MPI_Pack`/`MPI_Unpack`, the object-level `MPI_Send_Obj`/`MPI_Recv_Obj`
//! (which serialize any Nsp value transparently), and dynamic process
//! creation (`MPI_Comm_spawn` + `MPI_Intercomm_merge`, wrapped as
//! `NSP_spawn(n)`).
//!
//! We reproduce that API surface over OS threads within one process: each
//! rank is a thread, each rank owns a mailbox (a condvar-guarded deque so
//! `Probe` can inspect without consuming and `Recv` can match on
//! `(source, tag)` with `ANY_SOURCE`/`ANY_TAG` wildcards), and messages are
//! byte buffers exactly as on a real cluster — objects cross the "wire"
//! only through the `xdrser` encoding, never by pointer, so the
//! serialize/pack/transmit/unpack/unserialize code path of Figs. 4–5 is
//! exercised faithfully.
//!
//! On top of the faithful surface sits a testing-oriented extension: a
//! deterministic fault-injection layer ([`FaultPlan`], activated by
//! [`World::run_with_faults`]) that can drop, delay or truncate messages
//! in flight and kill ranks outright, with every decision a pure function
//! of `(seed, rank, operation index)` so chaos scenarios replay exactly.
//! Timed receives ([`Comm::recv_timeout`], [`Comm::probe_timeout`]) and
//! liveness queries ([`Comm::rank_alive`], [`Comm::sever`]) give
//! higher layers what they need to supervise unreliable peers. See
//! `docs/FAULTS.md` at the repository root.
//!
//! # Example: the paper's §3.2 object send
//!
//! ```
//! use minimpi::World;
//! use nspval::{Matrix, Value};
//!
//! let results = World::run(2, |comm| {
//!     let tag = 7;
//!     if comm.rank() == 0 {
//!         // A = list('string', %t, rand(4,4)); MPI_Send_Obj(A, 1, TAG, MCW)
//!         let a = Value::list(vec![
//!             Value::string("string"),
//!             Value::boolean(true),
//!             Value::Real(Matrix::zeros(4, 4)),
//!         ]);
//!         comm.send_obj(&a, 1, tag).unwrap();
//!         None
//!     } else {
//!         // B = MPI_Recv_Obj(0, TAG, MCW)
//!         let (b, _st) = comm.recv_obj(0, tag).unwrap();
//!         Some(b)
//!     }
//! });
//! assert!(results[1].is_some());
//! ```

#![warn(missing_docs)]
mod buf;
mod comm;
mod error;
mod fault;
mod process;
mod world;

pub use buf::MpiBuf;
pub use comm::{Comm, Status};
pub use error::MpiError;
pub use fault::{FaultEvent, FaultPlan, SendFault};
pub use process::{ProcessParent, ProcessWorld};
pub use world::{SpawnedWorld, World};

/// Wildcard source for `recv`/`probe` — the paper's `MPI_Probe(-1, ...)`.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag — the paper's `MPI_Probe(_, -1, ...)`.
pub const ANY_TAG: i32 = -1;
