//! Error type for serialization and file I/O.

use std::fmt;
use std::io;

/// Everything that can go wrong while encoding, decoding, or hitting the
/// filesystem.
#[derive(Debug)]
pub enum XdrError {
    /// The buffer ended before the value was fully decoded.
    UnexpectedEof,
    /// An unknown type tag or corrupted structure was encountered.
    Corrupt(String),
    /// The magic header did not match (not a serialized Nsp value).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof => write!(f, "unexpected end of serialized data"),
            XdrError::Corrupt(msg) => write!(f, "corrupt serialized data: {msg}"),
            XdrError::BadMagic => write!(f, "bad magic: not a serialized Nsp value"),
            XdrError::BadVersion(v) => write!(f, "unsupported serialization version {v}"),
            XdrError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for XdrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XdrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for XdrError {
    fn from(e: io::Error) -> Self {
        XdrError::Io(e)
    }
}
