//! LZSS compression of serial buffers.
//!
//! §3.2 of the paper introduces compressed serialized buffers ("We have
//! recently introduced in Nsp the possibility to compress the serialized
//! buffer used in serialized objects") and leaves measuring their effect on
//! MPI transmission as future work. We implement the feature from scratch —
//! a classic LZSS with a 4 KiB sliding window and greedy matching — and the
//! `bench` crate carries the ablation the paper defers.
//!
//! Wire format: `NSPZ` magic, u32 uncompressed length, then a token stream:
//! flag bytes announce the next 8 items MSB-first (0 = literal byte,
//! 1 = match of `(offset: 12 bits, length-MIN_MATCH: 4 bits)`).

use crate::error::XdrError;
use nspval::Serial;

const MAGIC: &[u8; 4] = b"NSPZ";
const WINDOW: usize = 1 << 12; // 4096
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15;

/// Compress raw bytes with LZSS.
pub fn compress_bytes(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(input.len() as u32).to_be_bytes());

    // Hash chains over 3-byte prefixes for match finding.
    const HASH_SIZE: usize = 1 << 13;
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];
    let hash3 = |b: &[u8]| -> usize {
        ((b[0] as usize) << 6 ^ (b[1] as usize) << 3 ^ b[2] as usize) & (HASH_SIZE - 1)
    };

    let mut i = 0;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;
    let mut flags = 0u8;

    let emit = |out: &mut Vec<u8>,
                flags: &mut u8,
                flag_bit: &mut u8,
                flag_pos: &mut usize,
                is_match: bool,
                payload: &[u8]| {
        if is_match {
            *flags |= 0x80 >> *flag_bit;
        }
        out.extend_from_slice(payload);
        *flag_bit += 1;
        if *flag_bit == 8 {
            out[*flag_pos] = *flags;
            *flag_pos = out.len();
            out.push(0);
            *flags = 0;
            *flag_bit = 0;
        }
    };

    while i < input.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut tries = 32;
            while cand != usize::MAX && tries > 0 {
                if i - cand <= WINDOW {
                    let max = MAX_MATCH.min(input.len() - i);
                    let mut l = 0;
                    while l < max && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                } else {
                    break;
                }
                cand = prev[cand];
                tries -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            // 12-bit offset (1..=4096 stored as offset-1), 4-bit length.
            let off = (best_off - 1) as u16;
            let len = (best_len - MIN_MATCH) as u16;
            let token = (off << 4) | len;
            emit(
                &mut out,
                &mut flags,
                &mut flag_bit,
                &mut flag_pos,
                true,
                &token.to_be_bytes(),
            );
            // Insert all covered positions into the hash chains.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash3(&input[i..]);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            emit(
                &mut out,
                &mut flags,
                &mut flag_bit,
                &mut flag_pos,
                false,
                &input[i..=i],
            );
            if i + MIN_MATCH <= input.len() {
                let h = hash3(&input[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    // Flush the final (possibly partial) flag byte.
    out[flag_pos] = flags;
    if flag_bit == 0 && out.len() == flag_pos + 1 {
        // No items were written after the last flag byte slot; drop it.
        out.pop();
    }
    out
}

/// Decompress an LZSS buffer produced by [`compress_bytes`].
pub fn decompress_bytes(input: &[u8]) -> Result<Vec<u8>, XdrError> {
    if input.len() < 8 || &input[..4] != MAGIC {
        return Err(XdrError::BadMagic);
    }
    let expect = u32::from_be_bytes([input[4], input[5], input[6], input[7]]) as usize;
    // Guard the pre-allocation against a corrupted (or hostile) header:
    // every token byte after the 8-byte header expands to at most
    // MAX_MATCH = 18 < 9×2 output bytes (a 2-byte match token), and a
    // flag byte every 8 items costs more, so a genuine stream can never
    // claim more than 9× its remaining length. Anything larger is
    // corrupt — reject it instead of allocating unbounded memory.
    if expect > (input.len() - 8).saturating_mul(9).saturating_add(8) {
        return Err(XdrError::Corrupt(format!(
            "header claims {expect} bytes from a {}-byte stream",
            input.len()
        )));
    }
    let mut out = Vec::with_capacity(expect);
    let mut i = 8;
    'outer: while i < input.len() && out.len() < expect {
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= expect {
                break 'outer;
            }
            if i >= input.len() {
                return Err(XdrError::UnexpectedEof);
            }
            if flags & (0x80 >> bit) != 0 {
                if i + 1 >= input.len() {
                    return Err(XdrError::UnexpectedEof);
                }
                let token = u16::from_be_bytes([input[i], input[i + 1]]);
                i += 2;
                let off = (token >> 4) as usize + 1;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(XdrError::Corrupt("match offset before start".into()));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(input[i]);
                i += 1;
            }
        }
    }
    if out.len() != expect {
        return Err(XdrError::Corrupt(format!(
            "decompressed {} bytes, expected {expect}",
            out.len()
        )));
    }
    Ok(out)
}

/// Nsp's `S.compress[]`: compress a plain `Serial` into a compressed one.
/// Compressing an already-compressed serial is an error.
pub fn compress_serial(s: &Serial) -> Result<Serial, XdrError> {
    if s.is_compressed() {
        return Err(XdrError::Corrupt("serial is already compressed".into()));
    }
    Ok(Serial::new_compressed(compress_bytes(s.bytes())))
}

/// Recover the plain `Serial` from a compressed one.
pub fn decompress_serial(s: &Serial) -> Result<Serial, XdrError> {
    if !s.is_compressed() {
        return Err(XdrError::Corrupt("serial is not compressed".into()));
    }
    Ok(Serial::new(decompress_bytes(s.bytes())?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress_bytes(data);
        let d = decompress_bytes(&c).unwrap();
        assert_eq!(d, data, "round trip failed (len {})", data.len());
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn single_byte() {
        round_trip(&[42]);
    }

    #[test]
    fn short_inputs() {
        for n in 1..40usize {
            let data: Vec<u8> = (0..n).map(|i| (i * 7 % 251) as u8).collect();
            round_trip(&data);
        }
    }

    #[test]
    fn highly_repetitive_compresses_well() {
        let data = vec![7u8; 10_000];
        let c = compress_bytes(&data);
        assert!(c.len() < data.len() / 4, "compressed to {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn structured_data_compresses() {
        // Serialized 1:100 — the paper's Fig. 2 shows 842 → 248 bytes
        // with Nsp's compressor; ours should also clearly shrink this
        // (lots of repeated zero bytes in XDR doubles).
        let v = nspval::Value::Real(nspval::Matrix::range(1.0, 100.0));
        let bytes = crate::ser::serialize_to_bytes(&v);
        let c = compress_bytes(&bytes);
        assert!(
            c.len() < bytes.len() / 2,
            "serialized {} compressed {}",
            bytes.len(),
            c.len()
        );
        round_trip(&bytes);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        // Deterministic xorshift noise — incompressible, output may be
        // slightly larger than input, must still round trip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_matches_across_window() {
        // Pattern longer than the window forces window-boundary matches.
        let pat = b"abcdefghij";
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(pat);
        }
        round_trip(&data);
        let c = compress_bytes(&data);
        assert!(c.len() < data.len() / 3);
    }

    #[test]
    fn serial_compress_round_trip() {
        let v = nspval::Value::Real(nspval::Matrix::range(1.0, 100.0));
        let s = crate::ser::serialize(&v);
        let c = compress_serial(&s).unwrap();
        assert!(c.is_compressed());
        assert!(c.len() < s.len());
        let back = decompress_serial(&c).unwrap();
        assert_eq!(back, s);
        // And unserialize handles the compressed serial transparently.
        let v2 = crate::ser::unserialize(&c).unwrap();
        assert!(v.equal(&v2));
    }

    #[test]
    fn double_compress_rejected() {
        let s = crate::ser::serialize(&nspval::Value::scalar(1.0));
        let c = compress_serial(&s).unwrap();
        assert!(compress_serial(&c).is_err());
        assert!(decompress_serial(&s).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let s = compress_bytes(b"hello hello hello hello");
        // Truncation.
        assert!(decompress_bytes(&s[..s.len() - 1]).is_err());
        // Bad magic.
        let mut bad = s.clone();
        bad[0] = b'X';
        assert!(matches!(decompress_bytes(&bad), Err(XdrError::BadMagic)));
    }

    #[test]
    fn absurd_length_header_rejected_without_allocation() {
        // A hostile header claiming u32::MAX output bytes from a tiny
        // stream must be rejected up front (no pre-allocation of 4 GiB).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0x00, b'a', b'b', b'c']);
        match decompress_bytes(&bytes) {
            Err(XdrError::Corrupt(msg)) => assert!(msg.contains("claims")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The bound is tight-ish: a header just above the 9x expansion
        // limit is rejected, one within it proceeds to token decoding.
        let payload = [0u8; 16];
        let mut over = Vec::new();
        over.extend_from_slice(MAGIC);
        over.extend_from_slice(&((payload.len() * 9 + 9) as u32).to_be_bytes());
        over.extend_from_slice(&payload);
        assert!(matches!(decompress_bytes(&over), Err(XdrError::Corrupt(_))));
    }

    #[test]
    fn offset_before_start_rejected() {
        // Hand-craft a stream whose first token is a match (impossible).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&10u32.to_be_bytes());
        bytes.push(0x80); // first item is a match
        bytes.extend_from_slice(&0u16.to_be_bytes());
        assert!(decompress_bytes(&bytes).is_err());
    }
}
