//! XDR primitive codec (RFC 4506 conventions): big-endian integers, IEEE-754
//! doubles, and length-prefixed opaques padded to 4-byte boundaries.
//!
//! All multi-byte quantities are written most-significant byte first so the
//! encoding is identical on any host — that is the property the paper
//! relies on XDR for ("a format which is independent of the computer
//! architecture").

use crate::error::XdrError;

/// Streaming XDR encoder into a growable byte buffer.
#[derive(Debug, Default)]
pub struct XdrWriter {
    buf: Vec<u8>,
}

impl XdrWriter {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        XdrWriter { buf: Vec::new() }
    }

    /// An empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        XdrWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Recycle an existing vector as the output buffer: the contents are
    /// cleared, the allocation is kept. This is how hot encode loops
    /// (e.g. a farm slave packing one result message per job) stay
    /// allocation-free in steady state.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        XdrWriter { buf }
    }

    /// Consume into the raw byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Append an XDR boolean (4-byte 0/1).
    pub fn put_bool(&mut self, v: bool) {
        // XDR booleans are 4-byte integers 0/1.
        self.put_u32(v as u32);
    }

    /// Variable-length opaque: 4-byte length, payload, zero padding to a
    /// 4-byte boundary.
    pub fn put_opaque(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
        let pad = (4 - bytes.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
    }

    /// XDR string: same wire format as opaque, UTF-8 payload.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Array of doubles, length-prefixed.
    pub fn put_f64_array(&mut self, xs: &[f64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_f64(x);
        }
    }
}

/// Streaming XDR decoder over a byte slice.
#[derive(Debug)]
pub struct XdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrReader<'a> {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian i32.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a big-endian IEEE-754 double.
    pub fn get_f64(&mut self) -> Result<f64, XdrError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an XDR boolean.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(XdrError::Corrupt(format!("bad boolean {other}"))),
        }
    }

    /// Read a length-prefixed padded opaque.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()? as usize;
        let payload = self.take(len)?;
        let pad = (4 - len % 4) % 4;
        self.take(pad)?;
        Ok(payload)
    }

    /// Read an XDR string (UTF-8 opaque).
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| XdrError::Corrupt("invalid UTF-8 in string".into()))
    }

    /// Read a length-prefixed array of doubles.
    pub fn get_f64_array(&mut self) -> Result<Vec<f64>, XdrError> {
        let len = self.get_u32()? as usize;
        // Guard against corrupt length fields asking for absurd allocations.
        if len
            .checked_mul(8)
            .map(|b| b > self.remaining())
            .unwrap_or(true)
        {
            return Err(XdrError::UnexpectedEof);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_big_endian() {
        let mut w = XdrWriter::new();
        w.put_u32(0xDEADBEEF);
        w.put_i32(-42);
        w.put_u64(0x0123456789ABCDEF);
        let bytes = w.into_bytes();
        // Check big-endian layout of the first word.
        assert_eq!(&bytes[..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r = XdrReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_u64().unwrap(), 0x0123456789ABCDEF);
        assert!(r.is_exhausted());
    }

    #[test]
    fn doubles_round_trip_exactly() {
        let vals = [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            -123.456e-78,
            f64::INFINITY,
        ];
        let mut w = XdrWriter::new();
        for &v in &vals {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = XdrReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut w = XdrWriter::new();
        w.put_f64(f64::NAN);
        let mut r = XdrReader::new(w.buf.as_slice());
        assert!(r.get_f64().unwrap().is_nan());
    }

    #[test]
    fn opaque_padding_to_four_bytes() {
        for len in 0..9 {
            let payload: Vec<u8> = (0..len as u8).collect();
            let mut w = XdrWriter::new();
            w.put_opaque(&payload);
            assert_eq!(w.len() % 4, 0, "len {len} not aligned");
            let bytes = w.into_bytes();
            let mut r = XdrReader::new(&bytes);
            assert_eq!(r.get_opaque().unwrap(), payload.as_slice());
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn strings_round_trip_utf8() {
        let mut w = XdrWriter::new();
        w.put_string("héllo wörld ∂");
        w.put_string("");
        let bytes = w.into_bytes();
        let mut r = XdrReader::new(&bytes);
        assert_eq!(r.get_string().unwrap(), "héllo wörld ∂");
        assert_eq!(r.get_string().unwrap(), "");
    }

    #[test]
    fn bool_encoding() {
        let mut w = XdrWriter::new();
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0, 0, 0, 1, 0, 0, 0, 0]);
        let mut r = XdrReader::new(&bytes);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = 7u32.to_be_bytes();
        let mut r = XdrReader::new(&bytes);
        assert!(matches!(r.get_bool(), Err(XdrError::Corrupt(_))));
    }

    #[test]
    fn truncated_read_is_eof() {
        let mut w = XdrWriter::new();
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let mut r = XdrReader::new(&bytes[..5]);
        assert!(matches!(r.get_f64(), Err(XdrError::UnexpectedEof)));
    }

    #[test]
    fn f64_array_round_trip() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let mut w = XdrWriter::new();
        w.put_f64_array(&xs);
        let bytes = w.into_bytes();
        let mut r = XdrReader::new(&bytes);
        assert_eq!(r.get_f64_array().unwrap(), xs);
    }

    #[test]
    fn corrupt_array_length_rejected() {
        let mut w = XdrWriter::new();
        w.put_u32(u32::MAX); // absurd length
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let mut r = XdrReader::new(&bytes);
        assert!(r.get_f64_array().is_err());
    }
}
