//! Architecture-independent serialization of Nsp values.
//!
//! The paper stores `PremiaModel` objects (and arbitrary Nsp values) with
//! the XDR library — eXternal Data Representation, RFC 4506: big-endian,
//! 4-byte aligned primitives — "so that any `PremiaModel` object can be
//! saved to a file in a format which is independent of the computer
//! architecture". This crate reproduces that stack:
//!
//! * [`codec`] — the XDR primitive encoder/decoder (big-endian integers,
//!   IEEE doubles, length-prefixed padded opaques);
//! * [`serialize`] / [`unserialize`] — Nsp values ↔ `Serial` byte buffers,
//!   the payloads of `MPI_Send_Obj`;
//! * [`save`] / [`load`] — write/read a value to/from a file (same byte
//!   format as serialization, exactly as in Nsp where "serialization just
//!   redirects the binary savings of objects to a string buffer");
//! * [`sload`] — load a file **directly into a `Serial` object** without
//!   materialising the value (Fig. 2); this is the "serialized load"
//!   transmission strategy of Tables II/III;
//! * [`compress`] — LZSS compression of serial buffers (§3.2's
//!   compressed-serialization extension, left as future work in the paper
//!   and implemented here as an ablation).

#![warn(missing_docs)]
pub mod codec;
pub mod compress;
mod error;
mod ser;

pub use codec::{XdrReader, XdrWriter};
pub use compress::{compress_serial, decompress_serial};
pub use error::XdrError;
pub use ser::{
    load, save, serialize, serialize_into, serialize_to_bytes, sload, unserialize,
    unserialize_bytes,
};
