//! Serialization of [`nspval::Value`] trees, plus file `save`/`load` and
//! the `sload` fast path.
//!
//! The byte format is a 4-byte magic (`NSPS`), a format-version word, then
//! a recursively encoded value. Exactly as in Nsp, the *file* format and
//! the *serialization* format are the same bytes: "serialization just
//! redirects the binary savings of objects to a string buffer". That
//! identity is what makes `sload` possible — reading the file contents
//! verbatim yields a valid `Serial` object.

use crate::codec::{XdrReader, XdrWriter};
use crate::error::XdrError;
use nspval::{BoolMatrix, Hash, List, Matrix, Serial, StrMatrix, Value};
use std::fs;
use std::path::Path;

const MAGIC: &[u8; 4] = b"NSPS";
const VERSION: u32 = 1;

// Type tags on the wire.
const TAG_REAL: u32 = 1;
const TAG_BOOL: u32 = 2;
const TAG_STR: u32 = 3;
const TAG_LIST: u32 = 4;
const TAG_HASH: u32 = 5;
const TAG_SERIAL: u32 = 6;
const TAG_NONE: u32 = 7;

fn encode_value(w: &mut XdrWriter, v: &Value) {
    match v {
        Value::Real(m) => {
            w.put_u32(TAG_REAL);
            w.put_u32(m.rows() as u32);
            w.put_u32(m.cols() as u32);
            for &x in m.data() {
                w.put_f64(x);
            }
        }
        Value::Bool(b) => {
            w.put_u32(TAG_BOOL);
            w.put_u32(b.rows() as u32);
            w.put_u32(b.cols() as u32);
            // Pack the booleans as bytes inside one opaque (XDR-aligned).
            let bytes: Vec<u8> = b.data().iter().map(|&x| x as u8).collect();
            w.put_opaque(&bytes);
        }
        Value::Str(s) => {
            w.put_u32(TAG_STR);
            w.put_u32(s.rows() as u32);
            w.put_u32(s.cols() as u32);
            for item in s.data() {
                w.put_string(item);
            }
        }
        Value::List(l) => {
            w.put_u32(TAG_LIST);
            w.put_u32(l.len() as u32);
            for item in l.iter() {
                encode_value(w, item);
            }
        }
        Value::Hash(h) => {
            w.put_u32(TAG_HASH);
            w.put_u32(h.len() as u32);
            for (k, item) in h.iter() {
                w.put_string(k);
                encode_value(w, item);
            }
        }
        Value::Serial(s) => {
            w.put_u32(TAG_SERIAL);
            w.put_bool(s.is_compressed());
            w.put_opaque(s.bytes());
        }
        Value::None => {
            w.put_u32(TAG_NONE);
        }
    }
}

fn decode_value(r: &mut XdrReader) -> Result<Value, XdrError> {
    let tag = r.get_u32()?;
    match tag {
        TAG_REAL => {
            let rows = r.get_u32()? as usize;
            let cols = r.get_u32()? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| XdrError::Corrupt("matrix size overflow".into()))?;
            if n.checked_mul(8).map(|b| b > r.remaining()).unwrap_or(true) {
                return Err(XdrError::UnexpectedEof);
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.get_f64()?);
            }
            Ok(Value::Real(Matrix::from_col_major(rows, cols, data)))
        }
        TAG_BOOL => {
            let rows = r.get_u32()? as usize;
            let cols = r.get_u32()? as usize;
            let bytes = r.get_opaque()?;
            if bytes.len() != rows * cols {
                return Err(XdrError::Corrupt("bool matrix length mismatch".into()));
            }
            let data: Vec<bool> = bytes.iter().map(|&b| b != 0).collect();
            Ok(Value::Bool(BoolMatrix::from_col_major(rows, cols, data)))
        }
        TAG_STR => {
            let rows = r.get_u32()? as usize;
            let cols = r.get_u32()? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| XdrError::Corrupt("string matrix size overflow".into()))?;
            if n > r.remaining() {
                // Each string costs at least a 4-byte length word.
                return Err(XdrError::UnexpectedEof);
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.get_string()?);
            }
            Ok(Value::Str(StrMatrix::from_col_major(rows, cols, data)))
        }
        TAG_LIST => {
            let n = r.get_u32()? as usize;
            if n > r.remaining() {
                return Err(XdrError::UnexpectedEof);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Ok(Value::List(List::from_vec(items)))
        }
        TAG_HASH => {
            let n = r.get_u32()? as usize;
            if n > r.remaining() {
                return Err(XdrError::UnexpectedEof);
            }
            let mut h = Hash::new();
            for _ in 0..n {
                let k = r.get_string()?;
                let v = decode_value(r)?;
                h.set(&k, v);
            }
            Ok(Value::Hash(h))
        }
        TAG_SERIAL => {
            let compressed = r.get_bool()?;
            let bytes = r.get_opaque()?.to_vec();
            Ok(Value::Serial(if compressed {
                Serial::new_compressed(bytes)
            } else {
                Serial::new(bytes)
            }))
        }
        TAG_NONE => Ok(Value::None),
        other => Err(XdrError::Corrupt(format!("unknown type tag {other}"))),
    }
}

/// Serialize a value to raw bytes (magic + version + encoded tree).
pub fn serialize_to_bytes(v: &Value) -> Vec<u8> {
    let mut w = XdrWriter::with_capacity(64);
    w.put_u32(u32::from_be_bytes(*MAGIC));
    w.put_u32(VERSION);
    encode_value(&mut w, v);
    w.into_bytes()
}

/// [`serialize_to_bytes`] into a recycled vector: `out` is cleared, the
/// frame is encoded into its existing allocation, and the number of bytes
/// written is returned. Byte-for-byte identical to [`serialize_to_bytes`].
pub fn serialize_into(v: &Value, out: &mut Vec<u8>) -> usize {
    let mut w = XdrWriter::from_vec(std::mem::take(out));
    w.put_u32(u32::from_be_bytes(*MAGIC));
    w.put_u32(VERSION);
    encode_value(&mut w, v);
    *out = w.into_bytes();
    out.len()
}

/// Nsp's `serialize(A)`: value → `Serial` object.
pub fn serialize(v: &Value) -> Serial {
    Serial::new(serialize_to_bytes(v))
}

/// Decode raw serialized bytes back into a value.
pub fn unserialize_bytes(bytes: &[u8]) -> Result<Value, XdrError> {
    let mut r = XdrReader::new(bytes);
    let magic = r.get_u32()?;
    if magic != u32::from_be_bytes(*MAGIC) {
        return Err(XdrError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(XdrError::BadVersion(version));
    }
    let v = decode_value(&mut r)?;
    if !r.is_exhausted() {
        return Err(XdrError::Corrupt("trailing bytes after value".into()));
    }
    Ok(v)
}

/// Nsp's `S.unserialize[]`: `Serial` → value, transparently decompressing
/// compressed serials (as the paper notes, "the unserialize method can then
/// transparently manage unserialization of compressed and non compressed
/// Serial objects").
pub fn unserialize(s: &Serial) -> Result<Value, XdrError> {
    if s.is_compressed() {
        let plain = crate::compress::decompress_serial(s)?;
        unserialize_bytes(plain.bytes())
    } else {
        unserialize_bytes(s.bytes())
    }
}

/// Nsp's `save('file', V)`: write the serialized bytes to a file.
pub fn save<P: AsRef<Path>>(path: P, v: &Value) -> Result<(), XdrError> {
    fs::write(path, serialize_to_bytes(v))?;
    Ok(())
}

/// Nsp's `load('file')`: read a file and materialise the value.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Value, XdrError> {
    let bytes = fs::read(path)?;
    unserialize_bytes(&bytes)
}

/// Nsp's `sload('file')` (Fig. 2): read the file **directly into a
/// `Serial` object** without creating the value. This skips the
/// materialise-then-reserialize round trip of the "full load" strategy —
/// the key optimisation behind the "serialized load" columns of
/// Tables II/III.
pub fn sload<P: AsRef<Path>>(path: P) -> Result<Serial, XdrError> {
    let bytes = fs::read(path)?;
    // Validate just the header so corrupt files fail fast, without paying
    // for a full decode.
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(XdrError::BadMagic);
    }
    Ok(Serial::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::scalar(3.75),
            Value::string("PutAmer"),
            Value::boolean(true),
            Value::empty_matrix(),
            Value::Real(Matrix::from_row_major(
                2,
                3,
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            )),
            Value::Bool(BoolMatrix::row(vec![true, false, true])),
            Value::Str(StrMatrix::row(vec!["foo".into(), "bar".into()])),
            Value::list(vec![
                Value::string("string"),
                Value::boolean(true),
                Value::Real(Matrix::from_row_major(2, 2, &[0.1, 0.2, 0.3, 0.4])),
            ]),
            {
                let mut h = Hash::new();
                h.set("A", Value::Bool(BoolMatrix::row(vec![true, false])));
                h.set(
                    "B",
                    Value::list(vec![
                        Value::string("foo"),
                        Value::Real(Matrix::range(1.0, 4.0)),
                    ]),
                );
                Value::Hash(h)
            },
            Value::None,
        ]
    }

    #[test]
    fn round_trip_all_sample_values() {
        for v in sample_values() {
            let s = serialize(&v);
            let back = unserialize(&s).unwrap();
            assert!(v.equal(&back), "round trip failed for {v:?}");
        }
    }

    #[test]
    fn nested_serial_round_trips() {
        // The paper serializes a value, then sends the *Serial* as an
        // object: serialize(serialize(A)) must work.
        let inner = serialize(&Value::string("nested"));
        let v = Value::Serial(inner.clone());
        let s = serialize(&v);
        let back = unserialize(&s).unwrap();
        assert_eq!(back.as_serial().unwrap(), &inner);
        let inner_back = unserialize(back.as_serial().unwrap()).unwrap();
        assert_eq!(inner_back.as_str(), Some("nested"));
    }

    #[test]
    fn paper_fig2_serial_size_reported() {
        // -nsp->A=1:100; S=serialize(A) prints <842-bytes>. Our format
        // differs in header size but must be in the same ballpark:
        // 100 doubles = 800 bytes + tags.
        let v = Value::Real(Matrix::range(1.0, 100.0));
        let s = serialize(&v);
        assert!(s.len() >= 800 && s.len() < 900, "size {}", s.len());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("xdr_test_save_load");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.bin");
        let v = sample_values().pop().unwrap();
        for v in sample_values() {
            save(&path, &v).unwrap();
            let back = load(&path).unwrap();
            assert!(v.equal(&back));
        }
        let _ = v;
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sload_returns_exact_file_bytes() {
        let dir = std::env::temp_dir().join("xdr_test_sload");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.bin");
        // Fig. 2: H.A=rand(4,5); H.B=rand(4,1); save; sload; unserialize.
        let mut h = Hash::new();
        h.set("A", Value::Real(Matrix::zeros(4, 5)));
        h.set("B", Value::Real(Matrix::zeros(4, 1)));
        let v = Value::Hash(h);
        save(&path, &v).unwrap();
        let s = sload(&path).unwrap();
        assert_eq!(s.bytes(), serialize_to_bytes(&v).as_slice());
        let back = unserialize(&s).unwrap();
        assert!(back.equal(&v));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sload_rejects_non_serialized_file() {
        let dir = std::env::temp_dir().join("xdr_test_sload_bad");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        fs::write(&path, b"this is not a serialized value").unwrap();
        assert!(matches!(sload(&path), Err(XdrError::BadMagic)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/definitely/missing.bin"),
            Err(XdrError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = serialize_to_bytes(&Value::scalar(1.0));
        bytes[0] = b'X';
        assert!(matches!(unserialize_bytes(&bytes), Err(XdrError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = serialize_to_bytes(&Value::scalar(1.0));
        bytes[7] = 99;
        assert!(matches!(
            unserialize_bytes(&bytes),
            Err(XdrError::BadVersion(_))
        ));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let bytes = serialize_to_bytes(&Value::Real(Matrix::range(1.0, 50.0)));
        for cut in [9, 16, bytes.len() - 1] {
            assert!(unserialize_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = serialize_to_bytes(&Value::scalar(1.0));
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            unserialize_bytes(&bytes),
            Err(XdrError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut w = XdrWriter::new();
        w.put_u32(u32::from_be_bytes(*MAGIC));
        w.put_u32(VERSION);
        w.put_u32(999);
        assert!(matches!(
            unserialize_bytes(&w.into_bytes()),
            Err(XdrError::Corrupt(_))
        ));
    }

    #[test]
    fn deep_nesting_round_trips() {
        let mut v = Value::scalar(1.0);
        for _ in 0..50 {
            v = Value::list(vec![v]);
        }
        let s = serialize(&v);
        let back = unserialize(&s).unwrap();
        assert!(v.equal(&back));
    }
}
