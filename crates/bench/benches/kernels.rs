//! Criterion micro-benchmarks of the pricing kernels — the per-problem
//! costs that drive every table (the §4.3 cost narrative: vanilla ≈
//! instantaneous, European MC/PDE medium, American heaviest).

use criterion::{criterion_group, criterion_main, Criterion};
use pricing::methods::closed_form::bs_price;
use pricing::methods::lsm::{lsm_vanilla_bs, LsmConfig};
use pricing::methods::montecarlo::{mc_basket, mc_vanilla_bs, McConfig};
use pricing::methods::pde::{pde_vanilla, PdeConfig};
use pricing::methods::tree::{tree_vanilla, TreeConfig};
use pricing::models::{BlackScholes, MultiBlackScholes};
use pricing::options::{BasketOption, Vanilla};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
    let call = Vanilla::european_call(100.0, 1.0);
    let amer = Vanilla::american_put(100.0, 1.0);

    c.bench_function("closed_form_vanilla", |b| {
        b.iter(|| bs_price(black_box(&m), black_box(&call)))
    });

    c.bench_function("pde_european_100x200", |b| {
        let cfg = PdeConfig {
            time_steps: 100,
            space_steps: 200,
            ..PdeConfig::default()
        };
        b.iter(|| pde_vanilla(black_box(&m), black_box(&call), &cfg))
    });

    c.bench_function("pde_american_100x200", |b| {
        let cfg = PdeConfig {
            time_steps: 100,
            space_steps: 200,
            ..PdeConfig::default()
        };
        b.iter(|| pde_vanilla(black_box(&m), black_box(&amer), &cfg))
    });

    c.bench_function("tree_american_500", |b| {
        let cfg = TreeConfig { steps: 500 };
        b.iter(|| tree_vanilla(black_box(&m), black_box(&amer), &cfg))
    });

    c.bench_function("mc_vanilla_10k_paths", |b| {
        let cfg = McConfig {
            paths: 10_000,
            ..McConfig::default()
        };
        b.iter(|| mc_vanilla_bs(black_box(&m), black_box(&call), &cfg))
    });

    c.bench_function("mc_basket40_1k_paths", |b| {
        let multi = MultiBlackScholes::new(40, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let cfg = McConfig {
            paths: 1_000,
            ..McConfig::default()
        };
        b.iter(|| mc_basket(black_box(&multi), black_box(&basket), &cfg))
    });

    c.bench_function("lsm_american_2k_paths", |b| {
        let cfg = LsmConfig {
            paths: 2_000,
            exercise_dates: 20,
            ..LsmConfig::default()
        };
        b.iter(|| lsm_vanilla_bs(black_box(&m), black_box(&amer), &cfg))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
