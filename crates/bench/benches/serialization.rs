//! Criterion benchmarks of the serialization stack — the costs behind the
//! Table II strategy gap: **full load** pays materialise + re-serialize,
//! **sload** pays one file read, NFS pays neither on the master.

use criterion::{criterion_group, criterion_main, Criterion};
use pricing::PremiaProblem;
use std::hint::black_box;

fn bench_serialization(c: &mut Criterion) {
    let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
    let value = p.to_value();
    let serial = xdrser::serialize(&value);
    let dir = std::env::temp_dir().join("riskbench_ser_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pb.bin");
    xdrser::save(&path, &value).unwrap();

    c.bench_function("serialize_problem", |b| {
        b.iter(|| xdrser::serialize(black_box(&value)))
    });

    c.bench_function("unserialize_problem", |b| {
        b.iter(|| xdrser::unserialize(black_box(&serial)).unwrap())
    });

    // The full-load master path: load (materialise) + re-serialize.
    c.bench_function("full_load_master_path", |b| {
        b.iter(|| {
            let v = xdrser::load(black_box(&path)).unwrap();
            let prob = PremiaProblem::from_value(&v).unwrap();
            xdrser::serialize(&prob.to_value())
        })
    });

    // The sload master path: raw read into a Serial.
    c.bench_function("sload_master_path", |b| {
        b.iter(|| xdrser::sload(black_box(&path)).unwrap())
    });

    c.bench_function("problem_from_value", |b| {
        b.iter(|| PremiaProblem::from_value(black_box(&value)).unwrap())
    });
}

criterion_group!(benches, bench_serialization);
criterion_main!(benches);
