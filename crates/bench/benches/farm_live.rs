//! Criterion benchmark of the live threaded Robin-Hood farm: a scaled
//! toy portfolio on 1/2/4 slaves, per transmission strategy. This is the
//! real end-to-end path (files → master → minimpi → slaves → results) on
//! local cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm::portfolio::{save_portfolio, toy_portfolio};
use farm::{run, FarmConfig, Transmission};

fn bench_farm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("riskbench_farm_bench");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(200);
    let files = save_portfolio(&jobs, &dir).unwrap();

    let mut group = c.benchmark_group("farm_200_vanillas");
    group.sample_size(10);
    for strategy in Transmission::ALL {
        for slaves in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), slaves),
                &slaves,
                |b, &slaves| {
                    b.iter(|| run(&files, &FarmConfig::new(slaves, strategy)).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_farm);
criterion_main!(benches);
