//! Criterion micro-benchmarks of the SIMD-lane batched kernels against
//! their scalar forms, plus the pooled-workspace vs fresh-allocation
//! path-buffer comparison — the two wins `docs/SIMD.md` quotes. Lane
//! widths change the sampled result (each width owns its own goldens),
//! so these compare *throughput*, never prices.

use criterion::{criterion_group, criterion_main, Criterion};
use exec::{ExecPolicy, WorkspacePool};
use pricing::methods::lsm::{lsm_vanilla_bs_exec, LsmConfig};
use pricing::methods::montecarlo::{mc_heston_exec, mc_local_vol_exec, McConfig};
use pricing::models::{BlackScholes, Heston, LocalVol};
use pricing::options::Vanilla;
use std::hint::black_box;

const LANE_WIDTHS: [usize; 3] = [1, 4, 8];

fn bench_lane_kernels(c: &mut Criterion) {
    let call = Vanilla::european_call(100.0, 1.0);
    let cfg = McConfig {
        paths: 4_000,
        time_steps: 16,
        ..McConfig::default()
    };

    let lv = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
    for lanes in LANE_WIDTHS {
        c.bench_function(&format!("mc_local_vol_4k_x16_lanes{lanes}"), |b| {
            let pol = ExecPolicy::new(1).lanes(lanes);
            b.iter(|| mc_local_vol_exec(black_box(&lv), black_box(&call), &cfg, &pol))
        });
    }

    let hes = Heston::standard(100.0, 0.05);
    for lanes in LANE_WIDTHS {
        c.bench_function(&format!("mc_heston_4k_x16_lanes{lanes}"), |b| {
            let pol = ExecPolicy::new(1).lanes(lanes);
            b.iter(|| mc_heston_exec(black_box(&hes), black_box(&call), &cfg, &pol))
        });
    }

    let bs = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
    let amer = Vanilla::american_put(110.0, 1.0);
    let lsm_cfg = LsmConfig {
        paths: 4_000,
        exercise_dates: 20,
        ..LsmConfig::default()
    };
    for lanes in LANE_WIDTHS {
        c.bench_function(&format!("lsm_vanilla_4k_x20_lanes{lanes}"), |b| {
            let pol = ExecPolicy::new(1).lanes(lanes);
            b.iter(|| lsm_vanilla_bs_exec(black_box(&bs), black_box(&amer), &lsm_cfg, &pol))
        });
    }
}

/// The zero-allocation claim in isolation: a per-chunk path buffer from
/// the workspace pool (clear + resize of a retained allocation) against
/// a fresh `vec![0.0; n]` every chunk — what the kernels did before the
/// `PathWorkspace` threading.
fn bench_workspace_pool(c: &mut Criterion) {
    const CHUNK: usize = 4_096;

    c.bench_function("path_buffer_fresh_alloc_4096", |b| {
        b.iter(|| {
            let buf = vec![0.0f64; black_box(CHUNK)];
            black_box(buf[CHUNK - 1])
        })
    });

    c.bench_function("path_buffer_pooled_4096", |b| {
        let pool = WorkspacePool::new();
        b.iter(|| {
            let mut ws = pool.take();
            let buf = ws.take(black_box(CHUNK));
            let last = black_box(buf[CHUNK - 1]);
            ws.put(buf);
            pool.put(ws);
            last
        })
    });
}

criterion_group!(benches, bench_lane_kernels, bench_workspace_pool);
criterion_main!(benches);
