//! Criterion benchmark of compressed serialization — §3.2's deferred
//! experiment: "Using this facility to test if it can improve the MPI
//! transmission of Premia problems was not studied in this paper but it
//! is left for future developments and tests."

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nspval::{Hash, Matrix, Value};
use std::hint::black_box;

fn bench_compress(c: &mut Criterion) {
    // A small plain problem-sized value and a "problem with embedded data
    // file" (the case §3.2 predicts compression helps).
    let small = pricing::PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF")
        .unwrap()
        .to_value();
    let mut big_hash = Hash::new();
    big_hash.set("problem", small.clone());
    // Embedded market-data table: very regular, compresses well.
    let table: Vec<f64> = (0..50_000).map(|i| (i % 500) as f64 * 0.25).collect();
    big_hash.set("market_data", Value::Real(Matrix::col(table)));
    let big = Value::Hash(big_hash);

    for (name, value) in [("small_problem", &small), ("embedded_data", &big)] {
        let serial = xdrser::serialize(value);
        let mut group = c.benchmark_group(format!("compress_{name}"));
        group.throughput(Throughput::Bytes(serial.len() as u64));
        group.bench_function("compress", |b| {
            b.iter(|| xdrser::compress_serial(black_box(&serial)).unwrap())
        });
        let compressed = xdrser::compress_serial(&serial).unwrap();
        group.bench_function("decompress", |b| {
            b.iter(|| xdrser::decompress_serial(black_box(&compressed)).unwrap())
        });
        group.bench_function("unserialize_compressed", |b| {
            b.iter(|| xdrser::unserialize(black_box(&compressed)).unwrap())
        });
        group.finish();
        println!(
            "{name}: {} bytes -> {} bytes (ratio {:.3})",
            serial.len(),
            compressed.len(),
            compressed.len() as f64 / serial.len() as f64
        );
    }
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
