//! The `--calibrate-classes` surface shared by the table binaries.
//!
//! Prints the per-class grain costs the LPT dispatch order consumes —
//! the §4.3 narrative (paper) model and, with `--measured`, a live
//! measurement of this machine's kernels at Quick scale — and
//! self-checks the one ordering the staged workloads depend on: a
//! single BSDE Picard round must cost more than any vanilla European
//! Monte-Carlo grain, otherwise the dependency-aware rounds would be
//! scheduling noise.

use farm::calibrate::{measured_costs, paper_costs, CostModel};
use farm::portfolio::PortfolioScale;
use farm::workload::class_name;
use farm::JobClass;

/// Render one cost model as a fixed-width per-class table.
pub fn render_cost_table(title: &str, model: &CostModel) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:>18} {:>12} {:>12} {:>12} {:>8}\n",
        "class", "lo_s", "hi_s", "grain_s", "bytes"
    ));
    for class in JobClass::ALL {
        let (lo, hi) = model.cost_range(class);
        out.push_str(&format!(
            "{:>18} {:>12.4} {:>12.4} {:>12.4} {:>8}\n",
            class_name(class),
            lo,
            hi,
            model.grain_seconds(class),
            model.message_bytes(class)
        ));
    }
    out
}

/// The calibration self-check: the grain ordering the staged BSDE
/// workload relies on, stated against whichever model will feed LPT.
pub fn check_bsde_dominates_vanilla_mc(model: &CostModel) -> Result<(), String> {
    dominance(
        model.cost_range(JobClass::BsdePicardMc),
        model.cost_range(JobClass::LocalVolMc),
    )
}

fn dominance(bsde: (f64, f64), mc: (f64, f64)) -> Result<(), String> {
    if bsde.0 <= mc.1 {
        return Err(format!(
            "BSDE Picard round {bsde:?} does not dominate vanilla MC {mc:?}: \
             staged rounds would not shape the schedule"
        ));
    }
    Ok(())
}

/// The `main`-shaped wrapper: when `--calibrate-classes` is on the
/// command line, print the per-class grain-cost table(s), run the
/// self-check, and return `true` (the caller should stop). `--measured`
/// adds a wall-clock measurement of this machine's kernels. Exits with
/// status 2 when the self-check fails.
pub fn run_calibrate_classes() -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.iter().any(|a| a == "--calibrate-classes") {
        return false;
    }
    let paper = paper_costs();
    print!(
        "{}",
        render_cost_table("Per-class grain costs — §4.3 narrative model", &paper)
    );
    if let Err(e) = check_bsde_dominates_vanilla_mc(&paper) {
        eprintln!("calibration self-check failed: {e}");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--measured") {
        let measured = measured_costs(PortfolioScale::Quick, 2);
        print!(
            "\n{}",
            render_cost_table(
                "Per-class grain costs — measured on this machine (Quick scale)",
                &measured
            )
        );
    }
    println!("\nself-check: BSDE Picard round dominates vanilla MC grain — ok");
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_every_class_with_its_grain() {
        let m = paper_costs();
        let text = render_cost_table("t", &m);
        for class in JobClass::ALL {
            assert!(text.contains(class_name(class)), "{class:?} missing");
        }
        // Grain column is the interval midpoint.
        let (lo, hi) = m.cost_range(JobClass::BsdePicardMc);
        assert!(text.contains(&format!("{:.4}", 0.5 * (lo + hi))));
    }

    #[test]
    fn paper_model_passes_the_dominance_check() {
        check_bsde_dominates_vanilla_mc(&paper_costs()).unwrap();
    }

    #[test]
    fn dominance_check_rejects_overlapping_grains() {
        // A BSDE round no heavier than a vanilla MC grain must fail the
        // self-check: the staged rounds would not shape the schedule.
        let err = dominance((1.0, 2.0), (3.0, 4.0)).unwrap_err();
        assert!(err.contains("does not dominate"), "{err}");
        assert!(dominance((5.0, 6.0), (3.0, 4.0)).is_ok());
        // Touching intervals are not dominance.
        assert!(dominance((4.0, 6.0), (3.0, 4.0)).is_err());
    }
}
