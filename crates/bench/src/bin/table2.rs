//! Regenerate **Table II** — the toy portfolio of 10 000 closed-form
//! vanillas, comparing the three transmission strategies (full load, NFS,
//! serialized load) over 2..50 CPUs.
//!
//! This is the communication-dominated workload: a single price is
//! "very fast and the time spent in communication is easily highlighted"
//! (§4.2). The NFS sweep shares the server block cache across CPU counts,
//! reproducing the caching bias the paper calls out.

use bench::breakdown::run_cli;
use bench::calibrate::run_calibrate_classes;
use bench::{render_three_strategy, PAPER_TABLE2};
use clustersim::{table2_rows, table2_sim_jobs, SimConfig, TABLE2_CPUS};

fn main() {
    // `--calibrate-classes [--measured]`: print the per-class grain
    // costs LPT dispatch consumes and self-check the BSDE ordering.
    if run_calibrate_classes() {
        return;
    }
    // `--breakdown [--jobs N] [--cpus N]`: per-phase decomposition of
    // one cluster size instead of the full sweep.
    if run_cli(
        "Table II breakdown — per-phase cost decomposition by strategy",
        &[],
        |opts| table2_sim_jobs(opts.jobs.unwrap_or(10_000)),
    ) {
        return;
    }
    let cfg = SimConfig::default();
    let all = table2_rows(&TABLE2_CPUS, &cfg);
    println!(
        "{}",
        render_three_strategy(
            "Table II — toy portfolio (10 000 vanillas), time in seconds by strategy",
            &all,
            &PAPER_TABLE2,
        )
    );
    // Also print the per-strategy speedup ratios (the paper's companion
    // columns).
    for (strategy, rows) in &all {
        println!("\nSpeedup ratios, {strategy}:");
        println!("{:>6} {:>12} {:>12}", "CPUs", "Time", "Ratio");
        for r in rows {
            println!("{:>6} {:>12.4} {:>12.6}", r.cpus, r.time, r.ratio);
        }
    }
}
