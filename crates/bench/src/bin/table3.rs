//! Regenerate **Table III** — the realistic 7 931-claim portfolio under
//! all three transmission strategies, 2..512 CPUs.
//!
//! The compute-dominated workload: "the computation times needed to price
//! the whole portfolio are fairly the same no matter how the objects are
//! sent" and "with 256 nodes, the speedup ratio is still better than 0.8"
//! (§4.3).

use bench::breakdown::run_cli;
use bench::calibrate::run_calibrate_classes;
use bench::{render_three_strategy, PAPER_TABLE3};
use clustersim::{table3_rows, table3_sim_jobs, SimConfig, TABLE3_CPUS};

fn main() {
    // `--calibrate-classes [--measured]`: per-class grain costs plus the
    // BSDE-dominance self-check, instead of the sweep.
    if run_calibrate_classes() {
        return;
    }
    // `--breakdown [--cpus N]`: per-phase decomposition of one cluster
    // size on the realistic portfolio instead of the sweep.
    if run_cli(
        "Table III breakdown — per-phase cost decomposition by strategy",
        &[],
        |_| table3_sim_jobs(),
    ) {
        return;
    }
    let cfg = SimConfig::default();
    let all = table3_rows(&TABLE3_CPUS, &cfg);
    println!(
        "{}",
        render_three_strategy(
            "Table III — realistic portfolio (7 931 claims), time in seconds by strategy",
            &all,
            &PAPER_TABLE3,
        )
    );
    for (strategy, rows) in &all {
        println!("\nSpeedup ratios, {strategy}:");
        println!("{:>6} {:>12} {:>12}", "CPUs", "Time", "Ratio");
        for r in rows {
            println!("{:>6} {:>12.4} {:>12.6}", r.cpus, r.time, r.ratio);
        }
    }
}
