//! Sharded peer-master smoke benchmark (`BENCH_8.json`).
//!
//! Exercises the `farm::shard` subsystem end to end on a heavy-tailed
//! portfolio — all the Monte-Carlo weight lands in the first shard's
//! contiguous chunk, so work-stealing is the only way a multi-shard
//! run stays competitive — and calibrates the `clustersim` transport
//! cost model from live ping-pong round trips on both backends:
//!
//! * live runs at 1, 2 and 4 shards (total slave count held at 4) on
//!   the channel backend, plus a 2-shard run on the multi-process
//!   socket backend; prices must be bit-identical across all of them;
//! * self-checks: every multi-shard run records steals, and no
//!   multi-shard channel makespan degrades the 1-shard run beyond a
//!   small single-core-box allowance;
//! * ping-pong calibration of [`TransportParams`] (64 B round trips pin
//!   the per-message cost, the slope to 64 KiB pins the per-byte cost)
//!   for the in-process channel world and the Unix-domain-socket
//!   process world;
//! * [`simulate_sharded`] rows at 1/2/4 shards on the matched job set
//!   (makespans must be monotone in shard count) and the 512-core
//!   extension of Tables I–III: 64 shards x 8 slaves over 4096 jobs
//!   under the measured socket transport.
//!
//! Emits a flat-key `JSON:` artifact line that `scripts/ci.sh` captures
//! as `BENCH_8.json` and `bench_gate` re-validates.

use clustersim::{simulate_sharded, ShardSimConfig, SimConfig, SimJob, TransportParams};
use farm::portfolio::{save_portfolio, PortfolioJob};
use farm::shard::{shard_slave_entry, SHARD_SLAVE_ENTRY};
use farm::{run_sharded, JobClass, ShardConfig, Transmission, TransportKind};
use minimpi::{Comm, MpiBuf, ProcessWorld, SpawnedWorld};
use pricing::models::BlackScholes;
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Portfolio shape: `HEAVY` Monte-Carlo jobs first (shard 0's chunk),
/// closed-form vanillas after.
const JOBS: usize = 48;
const HEAVY: usize = 12;
/// Target compute cost of one heavy job (calibrated at runtime) and
/// the matched simulator costs.
const HEAVY_S: f64 = 0.02;
const LIGHT_S: f64 = 2e-4;
/// Jobs leased per round in the stealing configurations.
const LEASE: usize = 2;
/// Multi-shard makespan allowance over the 1-shard run — covers
/// round-barrier stragglers and single-core CI boxes where every
/// configuration serializes to the same total compute.
const DEGRADE: f64 = 1.35;

/// Ping-pong calibration: `(iters, bytes)` per phase, after a warm-up.
const PING_TAG: i32 = 7;
const PING_WARMUP: usize = 32;
const PHASES: [(usize, usize); 2] = [(256, 64), (64, 64 * 1024)];
/// Process-world registry name of the echo slave.
const PONG_ENTRY: &str = "shard_smoke_pong";

fn fail(msg: String) -> ! {
    eprintln!("shard_smoke: FAIL: {msg}");
    std::process::exit(1);
}

// ---------------------------------------------------------------------------
// Transport calibration
// ---------------------------------------------------------------------------

/// Echo slave shared by both backends: bounce every frame back.
fn pong_loop(comm: &Comm) {
    for (iters, bytes) in PHASES {
        let mut buf = MpiBuf::with_capacity(bytes);
        for _ in 0..iters + PING_WARMUP {
            comm.recv_into(&mut buf, 0, PING_TAG).expect("pong recv");
            comm.send(buf.bytes(), 0, PING_TAG).expect("pong echo");
        }
    }
}

fn pong_entry(comm: Comm) {
    pong_loop(&comm);
}

/// Two-point fit against rank 1: the small-frame RTT pins the
/// per-message cost, the slope to the large frame pins the per-byte
/// cost (halved — a round trip crosses the transport twice).
fn ping(comm: &Comm) -> TransportParams {
    let mut rtt = [0.0f64; 2];
    for (k, (iters, bytes)) in PHASES.into_iter().enumerate() {
        let payload = vec![0x5a_u8; bytes];
        let mut buf = MpiBuf::with_capacity(bytes);
        let mut roundtrip = || {
            comm.send(&payload, 1, PING_TAG).expect("ping send");
            comm.recv_into(&mut buf, 1, PING_TAG).expect("ping recv");
        };
        for _ in 0..PING_WARMUP {
            roundtrip();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            roundtrip();
        }
        rtt[k] = t0.elapsed().as_secs_f64() / iters as f64;
    }
    let (small, large) = (PHASES[0].1, PHASES[1].1);
    TransportParams {
        per_message: (rtt[0] / 2.0).max(1e-9),
        per_byte: ((rtt[1] - rtt[0]) / 2.0 / (large - small) as f64).max(0.0),
    }
}

fn calibrate_transports() -> (TransportParams, TransportParams) {
    let spawned = SpawnedWorld::spawn(1, |c: Comm| pong_loop(&c));
    let channel = ping(spawned.comm());
    spawned.join();

    let parent = ProcessWorld::spawn(1, PONG_ENTRY)
        .unwrap_or_else(|e| fail(format!("socket pong spawn: {e}")));
    let socket = ping(parent.comm());
    parent
        .join()
        .unwrap_or_else(|e| fail(format!("socket pong join: {e}")));
    (channel, socket)
}

// ---------------------------------------------------------------------------
// Heavy-tailed portfolio
// ---------------------------------------------------------------------------

fn mc_problem(paths: usize, seed: u64) -> PremiaProblem {
    PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 95.0,
            maturity: 1.0,
        },
        MethodSpec::MonteCarlo {
            paths,
            time_steps: 8,
            antithetic: false,
            seed,
        },
    )
}

/// Path count that makes one heavy job cost ~[`HEAVY_S`] on this box.
fn heavy_paths() -> usize {
    let probe = mc_problem(50_000, 7);
    probe.compute().expect("probe"); // warm up (code paths, allocator)
    let t0 = Instant::now();
    probe.compute().expect("probe");
    let t = t0.elapsed().as_secs_f64().max(1e-6);
    ((HEAVY_S / t * 50_000.0) as usize).clamp(2_000, 2_000_000)
}

/// Save the live portfolio and build the matched simulator jobs.
fn portfolio(dir: &Path) -> (Vec<PathBuf>, Vec<SimJob>) {
    let paths = heavy_paths();
    let jobs: Vec<PortfolioJob> = (0..JOBS)
        .map(|i| {
            if i < HEAVY {
                PortfolioJob {
                    id: i,
                    class: JobClass::LocalVolMc,
                    problem: mc_problem(paths, 100 + i as u64),
                }
            } else {
                PortfolioJob {
                    id: i,
                    class: JobClass::VanillaClosedForm,
                    problem: PremiaProblem::new(
                        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
                        OptionSpec::Call {
                            strike: 70.0 + i as f64,
                            maturity: 1.0,
                        },
                        MethodSpec::ClosedForm,
                    ),
                }
            }
        })
        .collect();
    let files =
        save_portfolio(&jobs, dir).unwrap_or_else(|e| fail(format!("save portfolio: {e}")));
    let sim: Vec<SimJob> = jobs
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: j.class,
            bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: if j.id < HEAVY { HEAVY_S } else { LIGHT_S },
        })
        .collect();
    (files, sim)
}

// ---------------------------------------------------------------------------
// Live sharded runs
// ---------------------------------------------------------------------------

/// Run one configuration, check completeness, and check price bits
/// against the first run's reference. Returns (makespan, steals).
fn live_run(
    files: &[PathBuf],
    cfg: &ShardConfig,
    label: &str,
    reference: &mut Option<Vec<u64>>,
) -> (f64, usize) {
    let report = run_sharded(files, cfg).unwrap_or_else(|e| fail(format!("{label}: {e}")));
    if report.completed() != files.len() {
        fail(format!(
            "{label}: {} of {} jobs priced",
            report.completed(),
            files.len()
        ));
    }
    let by_job = report.by_job();
    if !by_job.iter().map(|r| r.0).eq(0..files.len()) {
        fail(format!("{label}: job index set is not 0..{}", files.len()));
    }
    let bits: Vec<u64> = by_job.iter().map(|&(_, p, _)| p.to_bits()).collect();
    match reference {
        None => *reference = Some(bits),
        Some(r) => {
            if *r != bits {
                fail(format!(
                    "{label}: prices not bit-identical to the 1-shard channel run"
                ));
            }
        }
    }
    (report.elapsed.as_secs_f64(), report.steals.len())
}

fn main() {
    // Child processes re-enter here; dispatch before any bench work.
    if ProcessWorld::child_entry(&[
        (SHARD_SLAVE_ENTRY, shard_slave_entry),
        (PONG_ENTRY, pong_entry),
    ]) {
        return;
    }

    let dir = std::env::temp_dir().join("bench_shard_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = portfolio(&dir);
    println!(
        "shard_smoke: {JOBS} jobs ({HEAVY} heavy MC front-loaded into shard 0's chunk), \
         4 slaves total in every channel configuration"
    );

    let mut reference = None;
    let (m1, s1) = live_run(&files, &ShardConfig::new(1, 4), "live 1x4", &mut reference);
    let (m2, s2) = live_run(
        &files,
        &ShardConfig::new(2, 2).stealing(LEASE),
        "live 2x2",
        &mut reference,
    );
    let (m4, s4) = live_run(
        &files,
        &ShardConfig::new(4, 1).stealing(LEASE),
        "live 4x1",
        &mut reference,
    );
    let (mp, sp) = live_run(
        &files,
        &ShardConfig::new(2, 2)
            .stealing(LEASE)
            .backend(TransportKind::Process),
        "live 2x2 (process)",
        &mut reference,
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("live 1x4 (channel): {m1:.3}s, {s1} steals");
    println!("live 2x2 (channel): {m2:.3}s, {s2} steals");
    println!("live 4x1 (channel): {m4:.3}s, {s4} steals");
    println!("live 2x2 (process): {mp:.3}s, {sp} steals");

    if s2 == 0 || s4 == 0 || sp == 0 {
        fail(format!(
            "a multi-shard run recorded no steals (2x2 {s2}, 4x1 {s4}, process {sp}) — \
             the heavy chunk should force them"
        ));
    }
    for (label, m) in [("2x2", m2), ("4x1", m4)] {
        if m > m1 * DEGRADE {
            fail(format!(
                "{label} makespan {m:.3}s degrades the 1-shard {m1:.3}s beyond x{DEGRADE}"
            ));
        }
    }

    let (channel, socket) = calibrate_transports();
    println!(
        "transport channel: {:.3e}s/msg + {:.3e}s/B; socket: {:.3e}s/msg + {:.3e}s/B",
        channel.per_message, channel.per_byte, socket.per_message, socket.per_byte
    );
    if socket.per_message <= channel.per_message {
        fail(format!(
            "socket per-message cost {:.3e}s not above the channel's {:.3e}s",
            socket.per_message, channel.per_message
        ));
    }

    // Simulator rows on the matched jobs: growing the shard count grows
    // total parallelism, so makespans must be monotone non-increasing.
    let sim = SimConfig {
        transport: channel,
        ..SimConfig::default()
    };
    let rows: Vec<f64> = [1usize, 2, 4]
        .iter()
        .map(|&shards| {
            let cfg = ShardSimConfig {
                shards,
                slaves_per_shard: 4,
                lease: LEASE,
                steal: true,
            };
            let out = simulate_sharded(&sim_jobs, &cfg, Transmission::SerializedLoad, &sim);
            println!(
                "sim {shards} shard(s) x 4 slaves: {:.6}s, {} steals",
                out.makespan, out.steals
            );
            out.makespan
        })
        .collect();
    if !(rows[1] <= rows[0] && rows[2] <= rows[1]) {
        fail(format!(
            "sim makespans not monotone in shard count: {rows:?}"
        ));
    }

    // The 512-core extension: 64 shards x 8 slaves over 4096 jobs, the
    // heavy eighth front-loaded, under the measured socket transport.
    let jobs512: Vec<SimJob> = (0..4096)
        .map(|i| SimJob {
            id: i,
            class: if i < 512 {
                JobClass::LocalVolMc
            } else {
                JobClass::VanillaClosedForm
            },
            bytes: 600,
            compute: if i < 512 { HEAVY_S } else { LIGHT_S },
        })
        .collect();
    let sim512 = SimConfig {
        transport: socket,
        ..SimConfig::default()
    };
    let out512 = simulate_sharded(
        &jobs512,
        &ShardSimConfig {
            shards: 64,
            slaves_per_shard: 8,
            lease: 16,
            steal: true,
        },
        Transmission::SerializedLoad,
        &sim512,
    );
    let done512: usize = out512.per_shard_jobs.iter().sum();
    println!(
        "sim 64 shards x 8 slaves (512 cores, socket transport): {:.6}s, \
         {done512} jobs, {} steals",
        out512.makespan, out512.steals
    );
    if done512 != jobs512.len() || out512.makespan <= 0.0 || out512.steals == 0 {
        fail(format!(
            "512-core sim row is off: {done512} of {} jobs, makespan {:.6}s, {} steals",
            jobs512.len(),
            out512.makespan,
            out512.steals
        ));
    }

    println!("shard_smoke: PASS (prices bit-identical across 4 configurations and 2 backends)");
    println!(
        "JSON: {{\"title\":\"Sharded peer masters smoke\",\
         \"jobs\":{JOBS},\"heavy_jobs\":{HEAVY},\"prices_bit_identical\":1,\
         \"live_1_makespan_s\":{m1:.6},\"live_1_steals\":{s1},\
         \"live_2_makespan_s\":{m2:.6},\"live_2_steals\":{s2},\
         \"live_4_makespan_s\":{m4:.6},\"live_4_steals\":{s4},\
         \"live_proc_makespan_s\":{mp:.6},\"live_proc_steals\":{sp},\
         \"channel_per_message_s\":{:e},\"channel_per_byte_s\":{:e},\
         \"socket_per_message_s\":{:e},\"socket_per_byte_s\":{:e},\
         \"sim_1_makespan_s\":{:.6},\"sim_2_makespan_s\":{:.6},\"sim_4_makespan_s\":{:.6},\
         \"sim_512_makespan_s\":{:.6},\"sim_512_jobs\":{done512},\"sim_512_steals\":{}}}",
        channel.per_message,
        channel.per_byte,
        socket.per_message,
        socket.per_byte,
        rows[0],
        rows[1],
        rows[2],
        out512.makespan,
        out512.steals
    );
}
