//! Ablations for the design choices DESIGN.md calls out, covering the
//! paper's §5 "future work" items:
//!
//! 1. **batching** — "gather several pricing problems and send them all
//!    together": Table III workload at large CPU counts with batch sizes
//!    1/4/16/64;
//! 2. **hierarchy** — sub-masters: same workload with 1..16 groups;
//! 3. **compressed serialization** (§3.2's deferred experiment) — message
//!    sizes and strategy times with LZSS-compressed problem payloads.

use clustersim::{simulate_farm, NfsCache, SimConfig, SimJob};
use farm::portfolio::{realistic_portfolio, toy_portfolio, PortfolioScale};
use farm::{JobClass, Transmission};
use numerics::rng::SplitMix64;

/// Build Table-III-like sim jobs (same normalisation as `table3_rows`).
fn table3_jobs() -> Vec<SimJob> {
    let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
    let mut rng = SplitMix64::new(0xAB1A7E);
    let mut sim: Vec<SimJob> = jobs
        .iter()
        .map(|j| {
            let (lo, hi) = j.class.paper_cost_seconds();
            SimJob {
                id: j.id,
                class: j.class,
                bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
                compute: rng.uniform(lo, hi),
            }
        })
        .collect();
    let sum: f64 = sim.iter().map(|j| j.compute).sum();
    let scale = 5776.33 / sum;
    for j in sim.iter_mut() {
        j.compute *= scale;
    }
    sim
}

/// Simulate batching by dividing the per-job master/communication
/// overhead across the batch (one message carries `batch` problems).
fn simulate_batched(jobs: &[SimJob], slaves: usize, batch: usize, cfg: &SimConfig) -> f64 {
    // Merge consecutive jobs into super-jobs with summed compute and
    // payload but a single message overhead.
    let merged: Vec<SimJob> = jobs
        .chunks(batch)
        .enumerate()
        .map(|(i, chunk)| SimJob {
            id: i,
            class: chunk[0].class,
            bytes: chunk.iter().map(|j| j.bytes).sum(),
            compute: chunk.iter().map(|j| j.compute).sum(),
        })
        .collect();
    simulate_farm(
        &merged,
        slaves,
        Transmission::SerializedLoad,
        cfg,
        &mut NfsCache::new(),
    )
    .makespan
}

fn batching_ablation(cfg: &SimConfig) {
    println!("Ablation 1 — job batching (§5), Table III workload, serialized load");
    println!(
        "{:>6} | {:>11} {:>11} {:>11} {:>11}",
        "CPUs", "batch=1", "batch=4", "batch=16", "batch=64"
    );
    let jobs = table3_jobs();
    for cpus in [64usize, 128, 256, 512, 1024] {
        let times: Vec<f64> = [1usize, 4, 16, 64]
            .iter()
            .map(|&b| simulate_batched(&jobs, cpus - 1, b, cfg))
            .collect();
        println!(
            "{:>6} | {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            cpus, times[0], times[1], times[2], times[3]
        );
    }
    println!();
}

/// Communication-bound batching ablation on the Table II toy portfolio,
/// where the §5 prediction ("send a single large message rather [than]
/// several smaller messages") actually bites.
fn batching_toy_ablation(cfg: &SimConfig) {
    println!("Ablation 1b — batching on the toy portfolio (communication-bound)");
    println!(
        "{:>6} | {:>11} {:>11} {:>11} {:>11}",
        "CPUs", "batch=1", "batch=8", "batch=32", "batch=128"
    );
    let toy = toy_portfolio(10_000);
    let mut rng = SplitMix64::new(0xAB1A7F);
    let jobs: Vec<SimJob> = toy
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: JobClass::VanillaClosedForm,
            bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: 0.55e-3 * rng.uniform(0.7, 1.3),
        })
        .collect();
    for cpus in [8usize, 16, 32, 50] {
        let times: Vec<f64> = [1usize, 8, 32, 128]
            .iter()
            .map(|&b| simulate_batched(&jobs, cpus - 1, b, cfg))
            .collect();
        println!(
            "{:>6} | {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
            cpus, times[0], times[1], times[2], times[3]
        );
    }
    println!();
}

/// Hierarchical masters: model `g` sub-masters by splitting the job list
/// into `g` chunks farmed independently (each with its own master
/// resource) and taking the slowest group.
fn hierarchy_ablation(cfg: &SimConfig) {
    println!("Ablation 2 — sub-master hierarchy (§5), toy portfolio, full load");
    println!(
        "{:>6} | {:>11} {:>11} {:>11} {:>11}",
        "CPUs", "groups=1", "groups=2", "groups=4", "groups=8"
    );
    let toy = toy_portfolio(10_000);
    let mut rng = SplitMix64::new(0xAB1A80);
    let jobs: Vec<SimJob> = toy
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: JobClass::VanillaClosedForm,
            bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: 0.55e-3 * rng.uniform(0.7, 1.3),
        })
        .collect();
    for cpus in [16usize, 32, 64, 128] {
        let mut line = format!("{cpus:>6} |");
        for groups in [1usize, 2, 4, 8] {
            let slaves_total = cpus - 1 - (groups - 1); // sub-masters cost ranks
            if slaves_total < groups {
                line.push_str(&format!(" {:>11}", "-"));
                continue;
            }
            let per_group = slaves_total / groups;
            let chunk = jobs.len() / groups;
            let mut worst: f64 = 0.0;
            for g in 0..groups {
                let lo = g * chunk;
                let hi = if g + 1 == groups {
                    jobs.len()
                } else {
                    lo + chunk
                };
                let t = simulate_farm(
                    &jobs[lo..hi],
                    per_group.max(1),
                    Transmission::FullLoad,
                    cfg,
                    &mut NfsCache::new(),
                )
                .makespan;
                worst = worst.max(t);
            }
            line.push_str(&format!(" {worst:>11.4}"));
        }
        println!("{line}");
    }
    println!();
}

fn compression_ablation(cfg: &SimConfig) {
    println!("Ablation 3 — compressed serialization (§3.2, deferred in the paper)");
    // Measure the real compression ratio of our problem files.
    let jobs = realistic_portfolio(PortfolioScale::Quick, 500);
    let mut plain_total = 0usize;
    let mut comp_total = 0usize;
    for j in &jobs {
        let s = xdrser::serialize(&j.problem.to_value());
        let c = xdrser::compress_serial(&s).expect("compress");
        plain_total += s.len();
        comp_total += c.len();
    }
    let ratio = comp_total as f64 / plain_total as f64;
    println!(
        "problem-file compression: {} -> {} bytes over {} files (ratio {:.2})",
        plain_total,
        comp_total,
        jobs.len(),
        ratio
    );
    // Replay Table II serialized-load with compressed payload sizes: the
    // master pays a (generous) compression CPU cost, the wire carries
    // fewer bytes.
    let toy = toy_portfolio(10_000);
    let mut rng = SplitMix64::new(0xAB1A81);
    let build = |shrink: f64| -> Vec<SimJob> {
        let mut r2 = SplitMix64::new(0xAB1A82);
        toy.iter()
            .map(|j| SimJob {
                id: j.id,
                class: JobClass::VanillaClosedForm,
                bytes: (xdrser::serialize_to_bytes(&j.problem.to_value()).len() as f64 * shrink)
                    as usize,
                compute: 0.55e-3 * r2.uniform(0.7, 1.3),
            })
            .collect()
    };
    let _ = &mut rng;
    let plain_jobs = build(1.0);
    let comp_jobs = build(ratio);
    println!(
        "{:>6} | {:>14} {:>17}",
        "CPUs", "plain sload", "compressed sload"
    );
    for cpus in [8usize, 16, 32, 50] {
        let tp = simulate_farm(
            &plain_jobs,
            cpus - 1,
            Transmission::SerializedLoad,
            cfg,
            &mut NfsCache::new(),
        )
        .makespan;
        let tc = simulate_farm(
            &comp_jobs,
            cpus - 1,
            Transmission::SerializedLoad,
            cfg,
            &mut NfsCache::new(),
        )
        .makespan;
        println!("{cpus:>6} | {tp:>14.4} {tc:>17.4}");
    }
    println!(
        "\n(As the paper anticipates, compression matters only when problems embed\nlarge data files; plain benchmark problems are too small for wire savings\nto offset anything.)"
    );
}

fn main() {
    let cfg = SimConfig::default();
    batching_ablation(&cfg);
    batching_toy_ablation(&cfg);
    hierarchy_ablation(&cfg);
    compression_ablation(&cfg);
}
