//! Heterogeneous-workload smoke benchmark (`BENCH_10.json`).
//!
//! Exercises the typed job model end to end on one machine and writes the
//! artifact `bench_gate` re-validates:
//!
//! * a **mixed-class portfolio** (vanillas through Bermudan-max LSM, BSDE
//!   Picard and XVA/CVA) priced live on [`SLAVES`] slaves with an `obs`
//!   recorder attached — every class in the mix must show up in the
//!   per-class compute breakdown with positive seconds;
//! * the same portfolio replayed in the calibrated cluster simulator
//!   under FIFO and LPT dispatch, with per-job costs from the paper's
//!   [`CostModel`] — LPT must not lose to FIFO on makespan (the
//!   straggler-tail claim the per-class calibration exists to buy);
//! * a **staged BSDE Picard workload** ([`BSDE_ROUNDS`] dependent rounds,
//!   each round's dispatch patched with the previous answer) run through
//!   the live farm with trace recording, byte-compared against the
//!   staged simulator driving the same scheduler.
//!
//! Emits a flat-key `JSON:` artifact line that `scripts/ci.sh` captures
//! as `BENCH_10.json`.

use clustersim::{simulate_farm_sched, SimCaches, SimConfig, SimJob, SimSchedOpts};
use farm::calibrate::paper_costs;
use farm::portfolio::{mixed_portfolio, save_portfolio, PortfolioScale};
use farm::workload::{per_class_compute, Workload};
use farm::{run, run_workload, DispatchPolicy, FarmConfig, Transmission};
use obs::Recorder;
use pricing::models::BlackScholes;
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use std::process::exit;
use std::sync::Arc;

/// Slave count of every live run and both simulator replays.
const SLAVES: usize = 8;
/// Mixed-portfolio groups (12 jobs each, 6 distinct classes).
const GROUPS: usize = 2;
/// Dependent Picard rounds of the staged BSDE workload.
const BSDE_ROUNDS: usize = 3;

fn fail(msg: &str) -> ! {
    eprintln!("workload_smoke: FAIL: {msg}");
    exit(1);
}

fn main() {
    let jobs = mixed_portfolio(PortfolioScale::Quick, GROUPS);
    let dir = std::env::temp_dir().join("riskbench_workload_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let files = save_portfolio(&jobs, &dir).unwrap_or_else(|e| fail(&format!("save: {e}")));
    let model = paper_costs();

    // ---- live mixed-class runs: FIFO with a recorder, then LPT ----------
    let rec = Arc::new(Recorder::new(SLAVES + 1));
    let fifo_cfg = Transmission::SerializedLoad;
    let report = run(
        &files,
        &FarmConfig::new(SLAVES, fifo_cfg).recorder(rec.clone()),
    )
    .unwrap_or_else(|e| fail(&format!("live FIFO run: {e}")));
    if report.completed() != jobs.len() {
        fail(&format!(
            "live FIFO run completed {} of {} jobs",
            report.completed(),
            jobs.len()
        ));
    }
    let fifo_live_s = report.elapsed.as_secs_f64();

    let by_class = per_class_compute(&rec.events(), &jobs);
    for (name, &(count, secs)) in &by_class {
        if count == 0 || secs <= 0.0 {
            fail(&format!(
                "class {name} has no recorded compute ({count} events, {secs}s)"
            ));
        }
    }
    let mix = Workload::batch(jobs.clone()).class_mix();
    if by_class.len() != mix.len() {
        fail(&format!(
            "breakdown saw {} classes, the portfolio holds {}",
            by_class.len(),
            mix.len()
        ));
    }

    let lpt = DispatchPolicy::Lpt {
        costs: model.lpt_costs(&jobs),
    };
    let report = run(
        &files,
        &FarmConfig::new(SLAVES, fifo_cfg).order(lpt.clone()),
    )
    .unwrap_or_else(|e| fail(&format!("live LPT run: {e}")));
    if report.completed() != jobs.len() {
        fail(&format!(
            "live LPT run completed {} of {} jobs",
            report.completed(),
            jobs.len()
        ));
    }
    let lpt_live_s = report.elapsed.as_secs_f64();

    // ---- simulated makespans under both policies (deterministic) --------
    let sim_jobs: Vec<SimJob> = jobs
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: j.class,
            bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: model.grain_seconds(j.class),
        })
        .collect();
    let makespan = |policy: DispatchPolicy| {
        let (out, _) = simulate_farm_sched(
            &sim_jobs,
            SLAVES,
            fifo_cfg,
            &SimConfig::default(),
            &mut SimCaches::new(),
            None,
            &SimSchedOpts {
                policy,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("simulator: {e}")));
        out.makespan
    };
    let fifo_sim = makespan(DispatchPolicy::Fifo);
    let lpt_sim = makespan(lpt);
    if fifo_sim <= 0.0 || lpt_sim <= 0.0 {
        fail(&format!(
            "degenerate simulated makespans (FIFO {fifo_sim}s, LPT {lpt_sim}s)"
        ));
    }
    if lpt_sim > fifo_sim {
        fail(&format!(
            "LPT makespan {lpt_sim:.3}s above FIFO's {fifo_sim:.3}s on the mixed portfolio"
        ));
    }
    let improvement = (fifo_sim - lpt_sim) / fifo_sim;

    // ---- staged BSDE: live farm vs staged simulator, byte for byte ------
    let problem = PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 100.0,
            maturity: 1.0,
        },
        MethodSpec::Bsde {
            paths: 4_000,
            time_steps: 12,
            rate_spread: 0.05,
            picard_rounds: BSDE_ROUNDS,
            y_prev: 0.0,
            seed: 7,
        },
    );
    let w = Workload::bsde_picard(problem).unwrap_or_else(|e| fail(&format!("workload: {e}")));
    let staged_dir = dir.join("staged");
    let live = run_workload(
        &w,
        &staged_dir,
        &FarmConfig::new(SLAVES, fifo_cfg).record_trace(true),
    )
    .unwrap_or_else(|e| fail(&format!("staged live run: {e}")));
    let staged_completed = live.completed();
    if staged_completed != BSDE_ROUNDS {
        fail(&format!(
            "staged run completed {staged_completed} of {BSDE_ROUNDS} rounds"
        ));
    }
    let live_trace = live
        .trace
        .as_ref()
        .unwrap_or_else(|| fail("staged run recorded no trace"))
        .render();
    let staged_sim_jobs: Vec<SimJob> = w
        .jobs()
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: j.class,
            bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: 1.0,
        })
        .collect();
    let (_, sim_trace) = simulate_farm_sched(
        &staged_sim_jobs,
        SLAVES,
        fifo_cfg,
        &SimConfig::default(),
        &mut SimCaches::new(),
        None,
        &SimSchedOpts {
            record_trace: true,
            rounds: w.rounds().map(|r| r.to_vec()),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("staged sim: {e}")));
    let sim_trace = sim_trace
        .unwrap_or_else(|| fail("staged sim recorded no trace"))
        .render();
    if live_trace != sim_trace {
        fail(&format!(
            "staged traces diverged\n-- live --\n{live_trace}\n-- sim --\n{sim_trace}"
        ));
    }
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "workload_smoke: {} jobs x {} classes on {SLAVES} slaves; \
         sim FIFO {fifo_sim:.2}s vs LPT {lpt_sim:.2}s ({:.1}% better); \
         staged BSDE {BSDE_ROUNDS} rounds, traces byte-identical",
        jobs.len(),
        by_class.len(),
        improvement * 100.0
    );

    let mut classes_json = String::new();
    for (name, &(count, secs)) in &by_class {
        classes_json.push_str(&format!(
            "\"class_{name}_jobs\":{count},\"class_{name}_s\":{secs:.9},"
        ));
    }
    println!(
        "JSON: {{\"title\":\"Heterogeneous workload smoke\",\"jobs\":{},\"slaves\":{SLAVES},\
         \"classes\":{},{classes_json}\"fifo_sim_makespan_s\":{fifo_sim:.9},\
         \"lpt_sim_makespan_s\":{lpt_sim:.9},\"lpt_improvement\":{improvement:.6},\
         \"fifo_live_s\":{fifo_live_s:.9},\"lpt_live_s\":{lpt_live_s:.9},\
         \"staged_rounds\":{BSDE_ROUNDS},\"staged_completed\":{staged_completed},\
         \"staged_trace_identical\":1}}",
        jobs.len(),
        by_class.len(),
    );
}
