//! Script-dispatch smoke benchmark for the nsplang bytecode VM
//! (`BENCH_9.json`).
//!
//! Runs one Fig. 4-shaped portfolio driver *as a script* — a master loop
//! pricing `JOBS` contracts through a user function whose body is a
//! `STEPS`-iteration scalar lattice walk, with per-job `rand()` perturbation
//! and an `add_last` price list — on both execution engines:
//!
//! * the original AST tree-walker (`Engine::Tree`);
//! * the register bytecode VM (`Engine::Vm`, `lower` + `vm`).
//!
//! The workload is deliberately dispatch-bound (scalar arithmetic, `if`
//! branches, user-function calls, list writeback) so the measured ratio
//! isolates interpreter overhead, the quantity the paper's §5 scripting
//! claim rides on. Self-checks, each fatal:
//!
//! * every scalar binding and the full price list are **bit-identical**
//!   across engines (f64 bit patterns / XDR bytes), and both engines leave
//!   the RNG in the same state (same draw sequence);
//! * the VM is at least [`MIN_SPEEDUP`]x faster than the tree-walker
//!   (best-of-[`REPS`] wall time on each side);
//! * lowering the script to bytecode is cheap: under [`LOWER_BUDGET`] of
//!   one VM run, so compile cost can never eat the dispatch win.
//!
//! Emits a flat-key `JSON:` artifact line that `scripts/ci.sh` captures as
//! `BENCH_9.json` and `bench_gate` re-validates.

use nsplang::{parse_program, Engine, Interp};
use std::process::exit;
use std::time::Instant;

/// Portfolio size of the scripted master loop.
const JOBS: usize = 64;
/// Lattice steps per priced job (the inner scalar loop).
const STEPS: usize = 400;
/// Timed repetitions per engine; best-of wins (machine-load shielding).
const REPS: usize = 5;
/// The headline claim, mirrored by `bench_gate::gate_vm`.
const MIN_SPEEDUP: f64 = 5.0;
/// Lowering must cost under this fraction of one VM execution.
const LOWER_BUDGET: f64 = 0.5;

fn fail(msg: &str) -> ! {
    eprintln!("vm_smoke: FAIL: {msg}");
    exit(1);
}

/// The benchmark script: Fig. 4's shape (seed the RNG, loop over a
/// portfolio, price each job, collect results) with the Premia call
/// replaced by an in-script lattice walk so the work *is* the dispatch.
fn script() -> String {
    format!(
        "function [p] = price(s0, k, r, sigma, n)\n\
         \x20 dt = 1.0 / n\n\
         \x20 u = 1.0 + sigma * dt\n\
         \x20 d = 1.0 - sigma * dt\n\
         \x20 s = s0\n\
         \x20 acc = 0.0\n\
         \x20 i = 1\n\
         \x20 while i <= n do\n\
         \x20   if s > k then\n\
         \x20     s = s * d\n\
         \x20     acc = acc + (s - k)\n\
         \x20   else\n\
         \x20     s = s * u + r\n\
         \x20   end\n\
         \x20   i = i + 1\n\
         \x20 end\n\
         \x20 p = acc / n\n\
         endfunction\n\
         reseed(1234)\n\
         jobs = {JOBS}\n\
         prices = list()\n\
         total = 0.0\n\
         for j = 1:jobs do\n\
         \x20 s0 = 80.0 + j + rand()\n\
         \x20 p = price(s0, 100.0, 0.001, 0.2, {STEPS})\n\
         \x20 prices.add_last[p]\n\
         \x20 total = total + p\n\
         end\n\
         check = prices(1) + prices(jobs) + total\n"
    )
}

/// One full fresh-interpreter execution; returns (seconds, interp).
fn run_once(engine: Engine, src: &str) -> (f64, Interp) {
    let mut interp = Interp::with_engine(engine);
    let t = Instant::now();
    interp
        .run(src)
        .unwrap_or_else(|e| fail(&format!("{engine:?} engine rejected the script: {e}")));
    (t.elapsed().as_secs_f64(), interp)
}

/// Best-of-`REPS` wall time plus the last run's interpreter (for state
/// comparison — every run is deterministic, so any rep's state serves).
fn best_of(engine: Engine, src: &str) -> (f64, Interp) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let (s, i) = run_once(engine, src);
        best = best.min(s);
        last = Some(i);
    }
    (best, last.unwrap())
}

/// Pull a scalar binding or die.
fn scalar(i: &Interp, name: &str) -> f64 {
    i.get_scalar(name)
        .unwrap_or_else(|| fail(&format!("script left no scalar {name:?}")))
}

fn main() {
    let src = script();

    // Compile cost: parse once, then time the lowering pass alone.
    let prog = parse_program(&src).unwrap_or_else(|e| fail(&format!("parse: {e}")));
    let t = Instant::now();
    let lower_iters = 100;
    for _ in 0..lower_iters {
        std::hint::black_box(nsplang::lower::lower_program(std::hint::black_box(&prog)));
    }
    let lower_s = t.elapsed().as_secs_f64() / lower_iters as f64;

    // Warm-up (page in both engines), then timed best-of runs.
    run_once(Engine::Tree, &src);
    run_once(Engine::Vm, &src);
    let (tree_s, tree) = best_of(Engine::Tree, &src);
    let (vm_s, vm) = best_of(Engine::Vm, &src);

    // Bit-identity across engines: scalars, the whole price list, and the
    // RNG stream position.
    let mut identical = true;
    for name in ["total", "check", "p", "s0", "j"] {
        let (a, b) = (scalar(&tree, name), scalar(&vm, name));
        if a.to_bits() != b.to_bits() {
            eprintln!("vm_smoke: {name} differs: tree {a:?} vs vm {b:?}");
            identical = false;
        }
    }
    let list_bytes = |i: &Interp| {
        let v = i
            .get_value("prices")
            .unwrap_or_else(|| fail("script left no prices list"));
        riskbench::xdrser::serialize_to_bytes(&v)
    };
    if list_bytes(&tree) != list_bytes(&vm) {
        eprintln!("vm_smoke: price list XDR bytes differ across engines");
        identical = false;
    }
    if tree.rng_state() != vm.rng_state() {
        eprintln!("vm_smoke: RNG states diverged (different draw sequences)");
        identical = false;
    }
    if !identical {
        fail("engines are not bit-identical on the benchmark script");
    }

    let speedup = tree_s / vm_s;
    println!(
        "vm_smoke: {JOBS} jobs x {STEPS} steps, prices bit-identical; \
         tree {tree_s:.4}s, vm {vm_s:.4}s, vm speedup x{speedup:.2} \
         (lower {:.1}us/compile)",
        lower_s * 1e6
    );
    if speedup < MIN_SPEEDUP {
        fail(&format!(
            "vm speedup x{speedup:.2} below the required x{MIN_SPEEDUP}"
        ));
    }
    if lower_s > vm_s * LOWER_BUDGET {
        fail(&format!(
            "lowering costs {lower_s:.6}s, over {LOWER_BUDGET} of one {vm_s:.6}s VM run"
        ));
    }

    println!(
        "JSON: {{\"title\":\"Nsp VM dispatch smoke\",\"jobs\":{JOBS},\"steps\":{STEPS},\
         \"reps\":{REPS},\"tree_s\":{tree_s:.9},\"vm_s\":{vm_s:.9},\
         \"vm_speedup\":{speedup:.6},\"lower_s\":{lower_s:.9},\
         \"prices_bit_identical\":1,\"total\":{:.9},\"check\":{:.9}}}",
        scalar(&vm, "total"),
        scalar(&vm, "check"),
    );
}
