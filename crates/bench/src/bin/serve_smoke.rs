//! Live smoke of the long-lived pricing service (`serve::Session`).
//!
//! Drives one resident session through two waves:
//!
//! * a **cold** wave of distinct portfolios — every problem computes on
//!   a slave;
//! * a **warm** wave resubmitting the same portfolios — every problem
//!   must come back from the result memo, bit-identical, with zero
//!   fresh computes.
//!
//! The run self-checks its own invariants (all tickets priced, warm
//! wave fully memoised and bit-identical, nothing shed, request
//! p50/p99 present in the `obs::Breakdown`, warm p99 no worse than
//! cold p99) and exits nonzero on any violation. The final `JSON:`
//! line is captured by `scripts/ci.sh` as the committed `BENCH_7.json`
//! artifact that `bench_gate` re-validates structurally.

use riskbench::prelude::*;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

/// Cold-wave requests (the warm wave repeats the same ones).
const REQUESTS: usize = 6;
/// Problems per request.
const PROBLEMS: usize = 16;
/// Worker ranks under the session.
const SLAVES: usize = 3;

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    exit(1);
}

/// Nearest-rank percentile over unsorted latency samples, in seconds.
fn percentile(samples: &[Duration], q: f64) -> f64 {
    let mut s: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    s.sort_by(f64::total_cmp);
    s[((s.len() as f64 - 1.0) * q).round() as usize]
}

/// Submit `chunks` one request at a time, waiting each ticket, so the
/// recorded latency is a full submission-to-answer round trip.
fn wave(session: &Session, chunks: &[Vec<PremiaProblem>]) -> Vec<Response> {
    chunks
        .iter()
        .map(|c| {
            let ticket = session
                .submit(Request::new(c.clone()))
                .unwrap_or_else(|e| fail(&format!("submit rejected: {e}")));
            ticket
                .wait()
                .unwrap_or_else(|e| fail(&format!("ticket unanswered: {e}")))
        })
        .collect()
}

fn main() {
    let rec = Arc::new(Recorder::new(SLAVES + 1));
    let session = Session::start(
        ServeConfig::new(SLAVES)
            .recorder(rec.clone())
            .job_deadline(Duration::from_millis(500))
            .poll(Duration::from_millis(5)),
    )
    .unwrap_or_else(|e| fail(&format!("session start: {e}")));

    let chunks: Vec<Vec<PremiaProblem>> = toy_portfolio(REQUESTS * PROBLEMS)
        .chunks(PROBLEMS)
        .map(|c| c.iter().map(|j| j.problem.clone()).collect())
        .collect();

    let cold = wave(&session, &chunks);
    let warm = wave(&session, &chunks);

    for (wave_name, responses) in [("cold", &cold), ("warm", &warm)] {
        for (i, r) in responses.iter().enumerate() {
            if !r.all_priced() {
                fail(&format!(
                    "{wave_name} request {i} has failures: {:?}",
                    r.results
                ));
            }
        }
    }
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        if w.memoised_count() != PROBLEMS {
            fail(&format!(
                "warm request {i}: only {}/{PROBLEMS} answers memoised",
                w.memoised_count()
            ));
        }
        for (j, (a, b)) in c.results.iter().zip(&w.results).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            if a.price.to_bits() != b.price.to_bits()
                || a.std_error.map(f64::to_bits) != b.std_error.map(f64::to_bits)
            {
                fail(&format!(
                    "warm request {i} problem {j} differs from its cold answer"
                ));
            }
        }
    }

    let report = session
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("session died without a report: {e}")));
    if report.answered != (2 * REQUESTS) as u64 || report.failed != 0 || report.shed != 0 {
        fail(&format!(
            "report counters off: answered {} failed {} shed {}",
            report.answered, report.failed, report.shed
        ));
    }
    if report.memo_hits < (REQUESTS * PROBLEMS) as u64 {
        fail(&format!(
            "memo hits {} below the warm wave's {} problems",
            report.memo_hits,
            REQUESTS * PROBLEMS
        ));
    }
    if report.computed == 0 || report.computed > (REQUESTS * PROBLEMS) as u64 {
        fail(&format!(
            "computed {} outside (0, cold wave]",
            report.computed
        ));
    }

    let b = Breakdown::from_events(&rec.events());
    if b.request_count() != (2 * REQUESTS) as u64 {
        fail(&format!(
            "breakdown saw {} requests, expected {}",
            b.request_count(),
            2 * REQUESTS
        ));
    }
    if b.request_p50_s() <= 0.0 || b.request_p99_s() < b.request_p50_s() {
        fail(&format!(
            "request percentiles degenerate: p50 {:.9}s p99 {:.9}s",
            b.request_p50_s(),
            b.request_p99_s()
        ));
    }
    if b.memo_hits() < (REQUESTS * PROBLEMS) as u64 {
        fail(&format!(
            "breakdown memo hits {} below the warm wave",
            b.memo_hits()
        ));
    }

    let lat = |rs: &[Response]| rs.iter().map(|r| r.latency).collect::<Vec<_>>();
    let (cold_lat, warm_lat) = (lat(&cold), lat(&warm));
    let (cold_p50, cold_p99) = (percentile(&cold_lat, 0.50), percentile(&cold_lat, 0.99));
    let (warm_p50, warm_p99) = (percentile(&warm_lat, 0.50), percentile(&warm_lat, 0.99));
    // The warm wave never leaves the front loop (zero computes, zero
    // wire round trips), so its tail must sit at or below the cold tail.
    if warm_p99 > cold_p99 {
        fail(&format!(
            "warm p99 {warm_p99:.6}s above cold p99 {cold_p99:.6}s — the memo bought nothing"
        ));
    }

    println!(
        "serve smoke: {} requests over {SLAVES} slaves, memo hit-rate {:.3}, \
         request p50 {:.6}s p99 {:.6}s",
        2 * REQUESTS,
        b.memo_hit_rate(),
        b.request_p50_s(),
        b.request_p99_s()
    );
    println!(
        "  cold p50 {cold_p50:.6}s p99 {cold_p99:.6}s | warm p50 {warm_p50:.6}s p99 {warm_p99:.6}s \
         | computed {} memoised {}",
        report.computed, report.memo_hits
    );
    println!(
        "JSON: {{\"title\":\"Serve session smoke\",\"slaves\":{SLAVES},\
         \"cold_count\":{REQUESTS},\"warm_count\":{REQUESTS},\
         \"problems_per_request\":{PROBLEMS},\
         \"cold_p50_s\":{cold_p50},\"cold_p99_s\":{cold_p99},\
         \"warm_p50_s\":{warm_p50},\"warm_p99_s\":{warm_p99},\
         \"request_count\":{},\"request_p50_s\":{},\"request_p99_s\":{},\
         \"memo_hits\":{},\"memo_hit_rate\":{},\"shed\":{},\"computed\":{},\
         \"answered\":{},\"failed\":{}}}",
        b.request_count(),
        b.request_p50_s(),
        b.request_p99_s(),
        report.memo_hits,
        b.memo_hit_rate(),
        report.shed,
        report.computed,
        report.answered,
        report.failed
    );
}
