//! Regenerate **Table I** — speedup of the Premia non-regression tests.
//!
//! Default mode replays the Robin-Hood protocol in the calibrated cluster
//! simulator over the paper's CPU counts (2..256). `--live` additionally
//! runs the real threaded farm on this machine's cores with the
//! Quick-scale regression suite, demonstrating genuine parallel speedup
//! end to end.

use bench::breakdown::run_cli;
use bench::calibrate::run_calibrate_classes;
use bench::{render_comparison, PAPER_TABLE1};
use clustersim::{table1_rows, table1_sim_jobs, SimConfig, TABLE1_CPUS};
use farm::portfolio::{regression_portfolio, save_portfolio, PortfolioScale};
use farm::{run, FarmConfig, Transmission};

fn main() {
    // `--calibrate-classes [--measured]`: per-class grain costs plus the
    // BSDE-dominance self-check, instead of the sweep.
    if run_calibrate_classes() {
        return;
    }
    // `--breakdown [--cpus N]`: per-phase decomposition of one cluster
    // size on the regression workload instead of the sweep.
    if run_cli(
        "Table I breakdown — per-phase cost decomposition by strategy",
        &["--live"],
        |_| table1_sim_jobs(),
    ) {
        return;
    }
    let live = std::env::args().any(|a| a == "--live");
    let cfg = SimConfig::default();
    let rows = table1_rows(&TABLE1_CPUS, &cfg);
    println!(
        "{}",
        render_comparison(
            "Table I — speedup of the non-regression tests (simulated cluster, sload)",
            &rows,
            &PAPER_TABLE1,
        )
    );

    if live {
        println!("\nLive threaded run (Quick-scale suite, this machine):");
        let dir = std::env::temp_dir().join("riskbench_table1_live");
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = regression_portfolio(PortfolioScale::Quick);
        let files = save_portfolio(&jobs, &dir).expect("save portfolio");
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        println!("{:>8} {:>12} {:>14}", "CPUs", "Time (s)", "Speedup ratio");
        let mut t2 = None;
        for slaves in [1usize, 2, 3, 4, 6, 8]
            .iter()
            .filter(|&&s| s < cores.max(2))
        {
            let report = run(
                &files,
                &FarmConfig::new(*slaves, Transmission::SerializedLoad),
            )
            .expect("farm run");
            let t = report.elapsed.as_secs_f64();
            let t2v = *t2.get_or_insert(t);
            println!(
                "{:>8} {:>12.4} {:>14.6}",
                slaves + 1,
                t,
                clustersim::speedup_ratio(t2v, slaves + 1, t)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
