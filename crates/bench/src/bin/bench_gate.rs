//! CI perf-regression gate over the committed breakdown artifacts.
//!
//! ```text
//! bench_gate <fresh BENCH_6.json> <committed BENCH_4.json> <committed BENCH_3.json> \
//!            [fresh BENCH_7.json] [fresh BENCH_8.json] [fresh BENCH_9.json] \
//!            [fresh BENCH_10.json]
//! ```
//!
//! `BENCH_6.json` is the freshly written `table2 --breakdown --threads 8
//! --lanes 8` report; `BENCH_4.json` / `BENCH_3.json` are the committed
//! baselines from earlier PRs; the optional `BENCH_7.json` is the fresh
//! `serve_smoke` artifact for the long-lived service, the optional
//! `BENCH_8.json` the fresh `shard_smoke` artifact for the sharded
//! peer masters. The gate fails (exit 1) when:
//!
//! - any fresh sequential or `(x8 threads)` compute bucket drifts from
//!   the committed `BENCH_4.json` bucket by more than 1e-9 — the
//!   lanes-off model must stay bit-stable across PRs;
//! - any `(x8 threads, 8 lanes)` compute bucket is **not at least 2x**
//!   below the committed `(x8 threads)` bucket — the headline SIMD-lane
//!   claim;
//! - a lane row's prepare/wire/wait differ from the committed threaded
//!   row's by more than 1e-9 — lane batching must live entirely inside
//!   the compute phase;
//! - the committed `BENCH_3.json` sanity anchors are gone (nonzero
//!   compute, warm rows with a ~perfect cache hit-rate);
//! - the `BENCH_7.json` service structure is off: request accounting
//!   that does not balance (`answered != cold + warm`, sheds, failures),
//!   a warm wave not fully served from the memo, zero computes, or a
//!   warm p99 above the cold p99 (the one claim memoisation exists to
//!   buy);
//! - the `BENCH_8.json` shard structure is off: prices not bit-identical
//!   across backends, a multi-shard run without steals, a multi-shard
//!   makespan degrading the 1-shard run beyond the allowance, simulated
//!   makespans not monotone in shard count, an incomplete 512-core sim
//!   row, or a socket per-message cost measured at or below the
//!   in-process channel's;
//! - the `BENCH_9.json` script-dispatch smoke is off: the nsplang bytecode
//!   VM under the required speedup over the tree-walker, engines not
//!   bit-identical on the benchmark script, degenerate timings, or a
//!   lowering pass costing more than half a VM run;
//! - the `BENCH_10.json` heterogeneous-workload smoke is off: a class of
//!   the mixed portfolio missing from the per-class compute breakdown,
//!   class job counts not summing to the portfolio, LPT losing to FIFO
//!   on the simulated makespan, or the staged BSDE run incomplete or
//!   trace-divergent from the staged simulator.
//!
//! The two committed files must never cross-compare per-job: they hold
//! different portfolio sizes (2 000 vs 10 000 jobs), so their drawn
//! per-job costs differ by construction.

use std::process::exit;

/// Transmission strategy labels, as printed by the farm crate.
const STRATEGIES: [&str; 3] = ["full load", "NFS", "serialized load"];
/// Thread/lane counts the CI invocation pins (`scripts/ci.sh`).
const THREADS: usize = 8;
const LANES: usize = 8;
/// Bit-stability tolerance for buckets lanes must not touch.
const EPS: f64 = 1e-9;

/// One run row pulled out of a breakdown report's JSON.
#[derive(Debug)]
struct Run {
    strategy: String,
    prepare_s: f64,
    wire_s: f64,
    wait_s: f64,
    compute_s: f64,
    cache_hit_rate: f64,
}

/// Extract `"key":<number>` from one run object's text. The reports are
/// written by `obs::BreakdownReport::to_json`, whose summary keys always
/// precede the `"phases"` array — the scan stops there so phase entries
/// can never shadow a summary bucket.
fn field(seg: &str, key: &str) -> Result<f64, String> {
    let head = seg.split("\"phases\"").next().unwrap_or(seg);
    let pat = format!("\"{key}\":");
    let at = head
        .find(&pat)
        .ok_or_else(|| format!("missing {key:?} in run object"))?;
    let rest = &head[at + pat.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated {key:?} value"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("bad {key:?} value {:?}: {e}", &rest[..end]))
}

/// Parse every run object out of a breakdown report's JSON.
fn parse_runs(json: &str) -> Result<Vec<Run>, String> {
    let body = json
        .split("\"runs\":[")
        .nth(1)
        .ok_or("no \"runs\" array in report")?;
    let mut runs = Vec::new();
    for seg in body.split("{\"strategy\":\"").skip(1) {
        let strategy = seg
            .split('"')
            .next()
            .ok_or("unterminated strategy label")?
            .to_string();
        runs.push(Run {
            prepare_s: field(seg, "prepare_s")?,
            wire_s: field(seg, "wire_s")?,
            wait_s: field(seg, "wait_s")?,
            compute_s: field(seg, "compute_s")?,
            cache_hit_rate: field(seg, "cache_hit_rate")?,
            strategy,
        });
    }
    if runs.is_empty() {
        return Err("report has no runs".into());
    }
    Ok(runs)
}

fn run<'a>(runs: &'a [Run], label: &str, file: &str) -> Result<&'a Run, String> {
    runs.iter()
        .find(|r| r.strategy == label)
        .ok_or_else(|| format!("{file}: missing run {label:?}"))
}

/// The whole gate. Returns the human-readable pass summary.
fn gate(fresh: &str, bench4: &str, bench3: &str) -> Result<String, String> {
    let f = parse_runs(fresh)?;
    let b4 = parse_runs(bench4)?;
    let b3 = parse_runs(bench3)?;
    let mut out = String::new();
    for s in STRATEGIES {
        let thr_label = format!("{s} (x{THREADS} threads)");
        let lane_label = format!("{s} (x{THREADS} threads, {LANES} lanes)");
        // Lanes-off buckets must not regress against the committed runs.
        for label in [s, thr_label.as_str()] {
            let fresh = run(&f, label, "BENCH_6")?;
            let pinned = run(&b4, label, "BENCH_4")?;
            let drift = (fresh.compute_s - pinned.compute_s).abs();
            if drift > EPS {
                return Err(format!(
                    "{label}: compute bucket drifted {drift:.3e}s from committed BENCH_4 \
                     ({:.9}s vs {:.9}s)",
                    fresh.compute_s, pinned.compute_s
                ));
            }
        }
        // The headline claim: lanes cut the threaded compute bucket >= 2x.
        let lane = run(&f, &lane_label, "BENCH_6")?;
        let thr = run(&b4, &thr_label, "BENCH_4")?;
        let ratio = thr.compute_s / lane.compute_s;
        if ratio < 2.0 {
            return Err(format!(
                "{s}: lanes cut the committed {:.6}s threaded compute bucket only x{ratio:.2} \
                 (to {:.6}s), need >= 2x",
                thr.compute_s, lane.compute_s
            ));
        }
        // ... without touching anything outside the compute phase.
        for (phase, fresh_v, pinned_v) in [
            ("prepare", lane.prepare_s, thr.prepare_s),
            ("wire", lane.wire_s, thr.wire_s),
            ("wait", lane.wait_s, thr.wait_s),
        ] {
            let drift = (fresh_v - pinned_v).abs();
            if drift > EPS {
                return Err(format!(
                    "{s}: lane row {phase} drifted {drift:.3e}s from the committed threaded \
                     row ({fresh_v:.9}s vs {pinned_v:.9}s)"
                ));
            }
        }
        // BENCH_3 sanity anchors (the warm-cache artifact of PR 3).
        let base3 = run(&b3, s, "BENCH_3")?;
        if base3.compute_s <= 0.0 {
            return Err(format!("BENCH_3 {s}: compute bucket is not positive"));
        }
        let warm3 = run(&b3, &format!("{s} (warm)"), "BENCH_3")?;
        if warm3.cache_hit_rate < 0.99 {
            return Err(format!(
                "BENCH_3 {s} (warm): cache hit-rate {:.3} below 0.99",
                warm3.cache_hit_rate
            ));
        }
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{s}: lanes x{ratio:.2} over committed threaded bucket, lanes-off stable\n"
            ),
        );
    }
    Ok(out)
}

/// Structural checks over the `serve_smoke` artifact (`BENCH_7.json`).
///
/// Every check is a counting identity the live session must satisfy by
/// construction — the single timing assertion (warm p99 at or below
/// cold p99) is the claim the result memo exists to deliver, with the
/// whole cold wave's compute time as margin.
fn gate_serve(json: &str) -> Result<String, String> {
    let g = |key: &str| field(json, key).map_err(|e| format!("BENCH_7: {e}"));
    let (cold, warm, per) = (
        g("cold_count")?,
        g("warm_count")?,
        g("problems_per_request")?,
    );
    let (answered, failed, shed) = (g("answered")?, g("failed")?, g("shed")?);
    if answered != cold + warm || failed != 0.0 || shed != 0.0 {
        return Err(format!(
            "BENCH_7: request accounting off (answered {answered} of {} waves, \
             failed {failed}, shed {shed})",
            cold + warm
        ));
    }
    let requests = g("request_count")?;
    if requests != answered {
        return Err(format!(
            "BENCH_7: breakdown saw {requests} requests but the session answered {answered}"
        ));
    }
    let (memo_hits, computed) = (g("memo_hits")?, g("computed")?);
    if memo_hits < warm * per {
        return Err(format!(
            "BENCH_7: memo hits {memo_hits} below the warm wave's {} problems",
            warm * per
        ));
    }
    if computed <= 0.0 || computed > cold * per {
        return Err(format!(
            "BENCH_7: computed {computed} outside (0, {}] — the cold wave's problem count",
            cold * per
        ));
    }
    if g("memo_hit_rate")? <= 0.0 {
        return Err("BENCH_7: memo hit-rate is zero".into());
    }
    let (p50, p99) = (g("request_p50_s")?, g("request_p99_s")?);
    if p50 <= 0.0 || p99 < p50 {
        return Err(format!(
            "BENCH_7: degenerate request percentiles (p50 {p50}s, p99 {p99}s)"
        ));
    }
    let (cold_p99, warm_p99) = (g("cold_p99_s")?, g("warm_p99_s")?);
    if warm_p99 > cold_p99 {
        return Err(format!(
            "BENCH_7: warm p99 {warm_p99}s above cold p99 {cold_p99}s"
        ));
    }
    Ok(format!(
        "serve: {answered} requests balanced, {memo_hits} memo hits, \
         warm p99 {warm_p99:.6}s <= cold p99 {cold_p99:.6}s\n"
    ))
}

/// Structural checks over the `shard_smoke` artifact (`BENCH_8.json`).
///
/// Re-validates what the smoke asserted when it wrote the file, so a
/// stale or hand-edited artifact cannot pass: bit-identical prices
/// across the four live configurations (two backends), steals in every
/// multi-shard run, bounded live degradation versus the 1-shard run,
/// monotone simulated makespans, a complete 512-core sim row, and a
/// socket transport measured dearer per message than the channel.
fn gate_shard(json: &str) -> Result<String, String> {
    let g = |key: &str| field(json, key).map_err(|e| format!("BENCH_8: {e}"));
    if g("prices_bit_identical")? != 1.0 {
        return Err("BENCH_8: prices not bit-identical across configurations".into());
    }
    let (s2, s4, sp) = (
        g("live_2_steals")?,
        g("live_4_steals")?,
        g("live_proc_steals")?,
    );
    if s2 < 1.0 || s4 < 1.0 || sp < 1.0 {
        return Err(format!(
            "BENCH_8: a multi-shard run recorded no steals (2x2 {s2}, 4x1 {s4}, process {sp})"
        ));
    }
    let m1 = g("live_1_makespan_s")?;
    if m1 <= 0.0 {
        return Err(format!("BENCH_8: degenerate 1-shard makespan {m1}s"));
    }
    for (label, key) in [("2x2", "live_2_makespan_s"), ("4x1", "live_4_makespan_s")] {
        let m = g(key)?;
        if m > m1 * SHARD_DEGRADE {
            return Err(format!(
                "BENCH_8: {label} makespan {m:.3}s degrades the 1-shard {m1:.3}s \
                 beyond x{SHARD_DEGRADE}"
            ));
        }
    }
    let (sim1, sim2, sim4) = (
        g("sim_1_makespan_s")?,
        g("sim_2_makespan_s")?,
        g("sim_4_makespan_s")?,
    );
    if !(sim2 <= sim1 && sim4 <= sim2) || sim4 <= 0.0 {
        return Err(format!(
            "BENCH_8: sim makespans not monotone in shard count ({sim1} {sim2} {sim4})"
        ));
    }
    let (jobs512, mk512) = (g("sim_512_jobs")?, g("sim_512_makespan_s")?);
    if jobs512 != 4096.0 || mk512 <= 0.0 || g("sim_512_steals")? < 1.0 {
        return Err(format!(
            "BENCH_8: 512-core sim row is off ({jobs512} jobs, makespan {mk512}s)"
        ));
    }
    let (ch, so) = (g("channel_per_message_s")?, g("socket_per_message_s")?);
    if ch <= 0.0 || so <= ch {
        return Err(format!(
            "BENCH_8: socket per-message cost {so:.3e}s not above the channel's {ch:.3e}s"
        ));
    }
    Ok(format!(
        "shard: prices bit-identical, steals in every multi-shard run, \
         sim monotone to {jobs512:.0} jobs at 512 cores\n"
    ))
}

/// Multi-shard live makespan allowance — must match `shard_smoke`'s.
const SHARD_DEGRADE: f64 = 1.35;

/// The six classes `workload_smoke`'s mixed portfolio always contains —
/// keys of the per-class breakdown in `BENCH_10.json`.
const WORKLOAD_CLASSES: [&str; 6] = [
    "vanilla_cf",
    "localvol_mc",
    "xva_cva_mc",
    "bsde_picard_mc",
    "american_lsm",
    "bermudan_max_lsm",
];

/// Structural checks over the `workload_smoke` artifact (`BENCH_10.json`).
///
/// Re-validates the typed-workload claims: every class of the mixed
/// portfolio present in the per-class compute breakdown with positive
/// seconds and a job count summing back to the portfolio size, LPT not
/// losing to FIFO on the simulated makespan (with a self-consistent
/// recorded improvement), and the staged BSDE run — at least two
/// dependent rounds, all completed, live trace byte-identical to the
/// staged simulator's.
fn gate_workload(json: &str) -> Result<String, String> {
    let g = |key: &str| field(json, key).map_err(|e| format!("BENCH_10: {e}"));
    let (jobs, classes) = (g("jobs")?, g("classes")?);
    if classes != WORKLOAD_CLASSES.len() as f64 {
        return Err(format!(
            "BENCH_10: breakdown has {classes} classes, the mixed portfolio holds {}",
            WORKLOAD_CLASSES.len()
        ));
    }
    let mut counted = 0.0;
    for name in WORKLOAD_CLASSES {
        let n = g(&format!("class_{name}_jobs"))?;
        let s = g(&format!("class_{name}_s"))?;
        if n < 1.0 || s <= 0.0 {
            return Err(format!(
                "BENCH_10: class {name} has no recorded compute ({n} jobs, {s}s)"
            ));
        }
        counted += n;
    }
    if counted != jobs {
        return Err(format!(
            "BENCH_10: per-class job counts sum to {counted}, portfolio holds {jobs}"
        ));
    }
    let (fifo, lpt) = (g("fifo_sim_makespan_s")?, g("lpt_sim_makespan_s")?);
    if fifo <= 0.0 || lpt <= 0.0 {
        return Err(format!(
            "BENCH_10: degenerate simulated makespans (FIFO {fifo}s, LPT {lpt}s)"
        ));
    }
    if lpt > fifo {
        return Err(format!(
            "BENCH_10: LPT makespan {lpt:.3}s above FIFO's {fifo:.3}s"
        ));
    }
    let imp = g("lpt_improvement")?;
    if ((fifo - lpt) / fifo - imp).abs() > 0.01 {
        return Err(format!(
            "BENCH_10: recorded improvement {imp:.4} inconsistent with makespans \
             (({fifo} - {lpt}) / {fifo} = {:.4})",
            (fifo - lpt) / fifo
        ));
    }
    if g("staged_trace_identical")? != 1.0 {
        return Err("BENCH_10: staged live and sim traces diverged".into());
    }
    let (rounds, done) = (g("staged_rounds")?, g("staged_completed")?);
    if rounds < 2.0 || done != rounds {
        return Err(format!(
            "BENCH_10: staged run off ({done} of {rounds} dependent rounds)"
        ));
    }
    Ok(format!(
        "workload: {jobs:.0} jobs over {classes:.0} classes, LPT {:.1}% under FIFO, \
         staged BSDE {rounds:.0} rounds trace-identical\n",
        imp * 100.0
    ))
}

/// Required VM-over-tree-walker speedup — must match `vm_smoke`'s.
const VM_MIN_SPEEDUP: f64 = 5.0;
/// Lowering-cost budget as a fraction of one VM run — `vm_smoke`'s.
const VM_LOWER_BUDGET: f64 = 0.5;

/// Structural checks over the `vm_smoke` artifact (`BENCH_9.json`).
///
/// Re-validates what the smoke asserted when it wrote the file: both
/// nsplang engines bit-identical on the Fig. 4-shaped driver script, the
/// bytecode VM at least [`VM_MIN_SPEEDUP`]x faster than the tree-walker
/// on best-of-reps wall time, sane positive timings consistent with the
/// recorded ratio, and a lowering pass cheap enough that compiling a
/// script can never eat its dispatch win.
fn gate_vm(json: &str) -> Result<String, String> {
    let g = |key: &str| field(json, key).map_err(|e| format!("BENCH_9: {e}"));
    if g("prices_bit_identical")? != 1.0 {
        return Err("BENCH_9: engines not bit-identical on the benchmark script".into());
    }
    let (tree, vm, speedup) = (g("tree_s")?, g("vm_s")?, g("vm_speedup")?);
    if tree <= 0.0 || vm <= 0.0 || vm >= tree {
        return Err(format!(
            "BENCH_9: degenerate engine timings (tree {tree}s, vm {vm}s)"
        ));
    }
    if (tree / vm - speedup).abs() > 0.01 * speedup {
        return Err(format!(
            "BENCH_9: recorded speedup x{speedup:.2} inconsistent with timings \
             ({tree}s / {vm}s = x{:.2})",
            tree / vm
        ));
    }
    if speedup < VM_MIN_SPEEDUP {
        return Err(format!(
            "BENCH_9: vm speedup x{speedup:.2} below the required x{VM_MIN_SPEEDUP}"
        ));
    }
    let lower = g("lower_s")?;
    if lower <= 0.0 || lower > vm * VM_LOWER_BUDGET {
        return Err(format!(
            "BENCH_9: lowering cost {lower}s outside (0, {VM_LOWER_BUDGET} x {vm}s]"
        ));
    }
    if g("jobs")? < 1.0 || g("steps")? < 1.0 {
        return Err("BENCH_9: empty benchmark workload".into());
    }
    Ok(format!(
        "vm: dispatch x{speedup:.2} over the tree-walker, engines bit-identical, \
         lowering {:.1}us\n",
        lower * 1e6
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (core, b7, b8, b9, b10) = match args.as_slice() {
        [fresh, b4, b3] => ([fresh, b4, b3], None, None, None, None),
        [fresh, b4, b3, b7] => ([fresh, b4, b3], Some(b7), None, None, None),
        [fresh, b4, b3, b7, b8] => ([fresh, b4, b3], Some(b7), Some(b8), None, None),
        [fresh, b4, b3, b7, b8, b9] => ([fresh, b4, b3], Some(b7), Some(b8), Some(b9), None),
        [fresh, b4, b3, b7, b8, b9, b10] => {
            ([fresh, b4, b3], Some(b7), Some(b8), Some(b9), Some(b10))
        }
        _ => {
            eprintln!(
                "usage: bench_gate <BENCH_6.json> <BENCH_4.json> <BENCH_3.json> \
                 [BENCH_7.json] [BENCH_8.json] [BENCH_9.json] [BENCH_10.json]"
            );
            exit(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            exit(2);
        })
    };
    let serve = b7.map(|p| gate_serve(&read(p)));
    let shard = b8.map(|p| gate_shard(&read(p)));
    let vm = b9.map(|p| gate_vm(&read(p)));
    let workload = b10.map(|p| gate_workload(&read(p)));
    match gate(&read(core[0]), &read(core[1]), &read(core[2])).and_then(|mut summary| {
        if let Some(s) = serve {
            summary.push_str(&s?);
        }
        if let Some(s) = shard {
            summary.push_str(&s?);
        }
        if let Some(s) = vm {
            summary.push_str(&s?);
        }
        if let Some(s) = workload {
            summary.push_str(&s?);
        }
        Ok(summary)
    }) {
        Ok(summary) => {
            print!("bench_gate: PASS\n{summary}");
        }
        Err(e) => {
            eprintln!("bench_gate: FAIL: {e}");
            exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal report JSON with the given (strategy, prepare, wire,
    /// wait, compute, hit_rate) rows in `obs::BreakdownReport` shape.
    fn report(rows: &[(&str, f64, f64, f64, f64, f64)]) -> String {
        let runs: Vec<String> = rows
            .iter()
            .map(|(s, p, wi, wa, c, h)| {
                format!(
                    "{{\"strategy\":\"{s}\",\"cpus\":4,\"wall_s\":1.0,\"events\":1,\
                     \"dropped\":0,\"prepare_s\":{p},\"wire_s\":{wi},\"wait_s\":{wa},\
                     \"compute_s\":{c},\"store_s\":0.0,\"cache_hit_rate\":{h},\
                     \"parallel_s\":0.0,\"parallelism\":0.0,\"lanes\":0.0,\
                     \"phases\":[{{\"phase\":\"compute\",\"count\":1,\"total_s\":9.9,\
                     \"mean_s\":9.9,\"p50_s\":9.9,\"p90_s\":9.9,\"p99_s\":9.9,\
                     \"max_s\":9.9,\"bytes\":0}}],\"by_class\":[]}}"
                )
            })
            .collect();
        format!("{{\"title\":\"t\",\"runs\":[{}]}}", runs.join(","))
    }

    fn bench4() -> String {
        let mut rows = Vec::new();
        for s in STRATEGIES {
            rows.push((s, 0.8, 0.25, 0.14, 1.0968, 0.0));
        }
        let labels: Vec<String> = STRATEGIES
            .iter()
            .map(|s| format!("{s} (x8 threads)"))
            .collect();
        for l in &labels {
            rows.push((l.as_str(), 0.8, 0.25, 0.14, 0.2251, 0.0));
        }
        report(&rows)
    }

    fn bench3() -> String {
        let mut rows = Vec::new();
        let warm: Vec<String> = STRATEGIES.iter().map(|s| format!("{s} (warm)")).collect();
        for (s, w) in STRATEGIES.iter().zip(&warm) {
            rows.push((*s, 0.8, 0.25, 0.14, 5.5, 0.0));
            rows.push((w.as_str(), 0.1, 0.25, 0.14, 5.5, 1.0));
        }
        report(&rows)
    }

    fn bench6(lane_compute: f64) -> String {
        let mut rows = Vec::new();
        let thr: Vec<String> = STRATEGIES
            .iter()
            .map(|s| format!("{s} (x8 threads)"))
            .collect();
        let lane: Vec<String> = STRATEGIES
            .iter()
            .map(|s| format!("{s} (x8 threads, 8 lanes)"))
            .collect();
        for ((s, t), l) in STRATEGIES.iter().zip(&thr).zip(&lane) {
            rows.push((*s, 0.8, 0.25, 0.14, 1.0968, 0.0));
            rows.push((t.as_str(), 0.8, 0.25, 0.14, 0.2251, 0.0));
            rows.push((l.as_str(), 0.8, 0.25, 0.14, lane_compute, 0.0));
        }
        report(&rows)
    }

    #[test]
    fn parses_summary_buckets_not_phase_entries() {
        let runs = parse_runs(&bench4()).unwrap();
        assert_eq!(runs.len(), 6);
        // total_s 9.9 in the phases array must never leak into a bucket.
        assert_eq!(runs[0].compute_s, 1.0968);
        assert_eq!(runs[0].strategy, "full load");
    }

    #[test]
    fn gate_passes_on_a_2x_lane_win() {
        let summary = gate(&bench6(0.0926), &bench4(), &bench3()).unwrap();
        assert!(summary.contains("x2.43"), "{summary}");
    }

    #[test]
    fn gate_fails_on_a_weak_lane_win() {
        let err = gate(&bench6(0.2), &bench4(), &bench3()).unwrap_err();
        assert!(err.contains("need >= 2x"), "{err}");
    }

    #[test]
    fn gate_fails_on_compute_drift() {
        let mut fresh = bench6(0.0926);
        fresh = fresh.replacen("1.0968", "1.0969", 1);
        let err = gate(&fresh, &bench4(), &bench3()).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
    }

    #[test]
    fn gate_fails_when_lanes_touch_the_wire() {
        let fresh = bench6(0.0926);
        // Bump every lane row's wire bucket.
        let fresh = fresh.replace(
            "8 lanes)\",\"cpus\":4,\"wall_s\":1.0,\"events\":1,\"dropped\":0,\"prepare_s\":0.8,\"wire_s\":0.25",
            "8 lanes)\",\"cpus\":4,\"wall_s\":1.0,\"events\":1,\"dropped\":0,\"prepare_s\":0.8,\"wire_s\":0.26",
        );
        let err = gate(&fresh, &bench4(), &bench3()).unwrap_err();
        assert!(err.contains("wire drifted"), "{err}");
    }

    #[test]
    fn gate_fails_without_warm_anchor() {
        let b3 = bench3().replace("\"cache_hit_rate\":1", "\"cache_hit_rate\":0");
        let err = gate(&bench6(0.0926), &bench4(), &b3).unwrap_err();
        assert!(err.contains("hit-rate"), "{err}");
    }

    /// A healthy `serve_smoke` artifact in BENCH_7 shape.
    fn bench7() -> String {
        "{\"title\":\"Serve session smoke\",\"slaves\":3,\
         \"cold_count\":6,\"warm_count\":6,\"problems_per_request\":16,\
         \"cold_p50_s\":0.004,\"cold_p99_s\":0.009,\
         \"warm_p50_s\":0.0002,\"warm_p99_s\":0.0008,\
         \"request_count\":12,\"request_p50_s\":0.002,\"request_p99_s\":0.009,\
         \"memo_hits\":96,\"memo_hit_rate\":0.5,\"shed\":0,\"computed\":96,\
         \"answered\":12,\"failed\":0}"
            .into()
    }

    #[test]
    fn serve_gate_passes_on_a_balanced_session() {
        let summary = gate_serve(&bench7()).unwrap();
        assert!(summary.contains("12 requests balanced"), "{summary}");
    }

    #[test]
    fn serve_gate_fails_on_unbalanced_accounting() {
        let err = gate_serve(&bench7().replace("\"answered\":12", "\"answered\":11")).unwrap_err();
        assert!(err.contains("accounting off"), "{err}");
    }

    #[test]
    fn serve_gate_fails_when_the_warm_wave_missed_the_memo() {
        let err =
            gate_serve(&bench7().replace("\"memo_hits\":96", "\"memo_hits\":90")).unwrap_err();
        assert!(err.contains("memo hits"), "{err}");
    }

    #[test]
    fn serve_gate_fails_when_warm_tail_exceeds_cold() {
        let err = gate_serve(&bench7().replace("\"warm_p99_s\":0.0008", "\"warm_p99_s\":0.02"))
            .unwrap_err();
        assert!(err.contains("warm p99"), "{err}");
    }

    /// A healthy `shard_smoke` artifact in BENCH_8 shape.
    fn bench8() -> String {
        "{\"title\":\"Sharded peer masters smoke\",\
         \"jobs\":48,\"heavy_jobs\":12,\"prices_bit_identical\":1,\
         \"live_1_makespan_s\":0.245,\"live_1_steals\":0,\
         \"live_2_makespan_s\":0.257,\"live_2_steals\":9,\
         \"live_4_makespan_s\":0.263,\"live_4_steals\":5,\
         \"live_proc_makespan_s\":0.264,\"live_proc_steals\":9,\
         \"channel_per_message_s\":4.9e-6,\"channel_per_byte_s\":5.8e-11,\
         \"socket_per_message_s\":7.6e-6,\"socket_per_byte_s\":2.1e-10,\
         \"sim_1_makespan_s\":0.136,\"sim_2_makespan_s\":0.075,\"sim_4_makespan_s\":0.045,\
         \"sim_512_makespan_s\":0.057,\"sim_512_jobs\":4096,\"sim_512_steals\":24}"
            .into()
    }

    #[test]
    fn shard_gate_passes_on_a_healthy_artifact() {
        let summary = gate_shard(&bench8()).unwrap();
        assert!(summary.contains("512 cores"), "{summary}");
    }

    #[test]
    fn shard_gate_fails_without_steals() {
        let err = gate_shard(&bench8().replace("\"live_4_steals\":5", "\"live_4_steals\":0"))
            .unwrap_err();
        assert!(err.contains("no steals"), "{err}");
    }

    #[test]
    fn shard_gate_fails_on_a_degraded_multi_shard_makespan() {
        let err = gate_shard(
            &bench8().replace("\"live_2_makespan_s\":0.257", "\"live_2_makespan_s\":0.9"),
        )
        .unwrap_err();
        assert!(err.contains("degrades"), "{err}");
    }

    #[test]
    fn shard_gate_fails_on_non_monotone_sim_makespans() {
        let err = gate_shard(
            &bench8().replace("\"sim_4_makespan_s\":0.045", "\"sim_4_makespan_s\":0.2"),
        )
        .unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn shard_gate_fails_on_an_incomplete_512_core_row() {
        let err =
            gate_shard(&bench8().replace("\"sim_512_jobs\":4096", "\"sim_512_jobs\":4000"))
                .unwrap_err();
        assert!(err.contains("512-core"), "{err}");
    }

    #[test]
    fn shard_gate_fails_when_sockets_measure_cheaper_than_channels() {
        let err = gate_shard(
            &bench8().replace("\"socket_per_message_s\":7.6e-6", "\"socket_per_message_s\":1e-9"),
        )
        .unwrap_err();
        assert!(err.contains("per-message"), "{err}");
    }

    /// A healthy `vm_smoke` artifact in BENCH_9 shape.
    fn bench9() -> String {
        "{\"title\":\"Nsp VM dispatch smoke\",\"jobs\":64,\"steps\":400,\
         \"reps\":5,\"tree_s\":0.030000000,\"vm_s\":0.004300000,\
         \"vm_speedup\":6.976744,\"lower_s\":0.000009000,\
         \"prices_bit_identical\":1,\"total\":559.530164139,\"check\":590.238399827}"
            .into()
    }

    #[test]
    fn vm_gate_passes_on_a_healthy_artifact() {
        let summary = gate_vm(&bench9()).unwrap();
        assert!(summary.contains("x6.98"), "{summary}");
    }

    #[test]
    fn vm_gate_fails_on_a_weak_speedup() {
        let doctored = bench9()
            .replace("\"vm_s\":0.004300000", "\"vm_s\":0.009000000")
            .replace("\"vm_speedup\":6.976744", "\"vm_speedup\":3.333333");
        let err = gate_vm(&doctored).unwrap_err();
        assert!(err.contains("below the required x5"), "{err}");
    }

    #[test]
    fn vm_gate_fails_when_engines_diverge() {
        let err = gate_vm(
            &bench9().replace("\"prices_bit_identical\":1", "\"prices_bit_identical\":0"),
        )
        .unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn vm_gate_fails_on_inconsistent_speedup() {
        let err = gate_vm(&bench9().replace("\"vm_speedup\":6.976744", "\"vm_speedup\":9.0"))
            .unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn vm_gate_fails_on_an_expensive_lowering_pass() {
        let err = gate_vm(&bench9().replace("\"lower_s\":0.000009000", "\"lower_s\":0.004000000"))
            .unwrap_err();
        assert!(err.contains("lowering cost"), "{err}");
    }

    /// A healthy `workload_smoke` artifact in BENCH_10 shape.
    fn bench10() -> String {
        "{\"title\":\"Heterogeneous workload smoke\",\"jobs\":24,\"slaves\":8,\
         \"classes\":6,\"class_american_lsm_jobs\":2,\"class_american_lsm_s\":0.0025,\
         \"class_bermudan_max_lsm_jobs\":2,\"class_bermudan_max_lsm_s\":0.0019,\
         \"class_bsde_picard_mc_jobs\":2,\"class_bsde_picard_mc_s\":0.0145,\
         \"class_localvol_mc_jobs\":4,\"class_localvol_mc_s\":0.0072,\
         \"class_vanilla_cf_jobs\":12,\"class_vanilla_cf_s\":0.0000217,\
         \"class_xva_cva_mc_jobs\":2,\"class_xva_cva_mc_s\":0.0011,\
         \"fifo_sim_makespan_s\":125.015,\"lpt_sim_makespan_s\":105.0,\
         \"lpt_improvement\":0.160101,\"fifo_live_s\":0.02,\"lpt_live_s\":0.019,\
         \"staged_rounds\":3,\"staged_completed\":3,\"staged_trace_identical\":1}"
            .into()
    }

    #[test]
    fn workload_gate_passes_on_a_healthy_artifact() {
        let summary = gate_workload(&bench10()).unwrap();
        assert!(summary.contains("staged BSDE 3 rounds"), "{summary}");
    }

    #[test]
    fn workload_gate_fails_when_a_class_lost_its_compute() {
        let err = gate_workload(
            &bench10().replace("\"class_bsde_picard_mc_s\":0.0145", "\"class_bsde_picard_mc_s\":0"),
        )
        .unwrap_err();
        assert!(err.contains("bsde_picard_mc"), "{err}");
    }

    #[test]
    fn workload_gate_fails_when_class_counts_do_not_sum() {
        let err = gate_workload(
            &bench10().replace("\"class_vanilla_cf_jobs\":12", "\"class_vanilla_cf_jobs\":11"),
        )
        .unwrap_err();
        assert!(err.contains("sum to"), "{err}");
    }

    #[test]
    fn workload_gate_fails_when_lpt_loses_to_fifo() {
        let err = gate_workload(
            &bench10()
                .replace("\"lpt_sim_makespan_s\":105.0", "\"lpt_sim_makespan_s\":130.0")
                .replace("\"lpt_improvement\":0.160101", "\"lpt_improvement\":-0.04"),
        )
        .unwrap_err();
        assert!(err.contains("above FIFO"), "{err}");
    }

    #[test]
    fn workload_gate_fails_on_an_inconsistent_improvement() {
        let err = gate_workload(
            &bench10().replace("\"lpt_improvement\":0.160101", "\"lpt_improvement\":0.5"),
        )
        .unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn workload_gate_fails_when_staged_traces_diverge() {
        let err = gate_workload(
            &bench10()
                .replace("\"staged_trace_identical\":1", "\"staged_trace_identical\":0"),
        )
        .unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn workload_gate_fails_on_an_incomplete_staged_run() {
        let err = gate_workload(
            &bench10().replace("\"staged_completed\":3", "\"staged_completed\":2"),
        )
        .unwrap_err();
        assert!(err.contains("dependent rounds"), "{err}");
    }

    #[test]
    fn shard_gate_fails_when_price_identity_is_lost() {
        let err = gate_shard(
            &bench8().replace("\"prices_bit_identical\":1", "\"prices_bit_identical\":0"),
        )
        .unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }
}
