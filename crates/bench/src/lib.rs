//! Shared helpers for the table-regeneration binaries.
//!
//! Each binary prints our simulated columns next to the paper's published
//! numbers so the reproduction quality is visible at a glance; the
//! EXPERIMENTS.md summary is generated from the same data.

use clustersim::TableRow;

pub mod breakdown;
pub mod calibrate;

/// A published (CPUs, time, ratio) row from the paper, for side-by-side
/// display. `None` entries mark cells the paper leaves blank.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    pub cpus: usize,
    pub time: Option<f64>,
    pub ratio: Option<f64>,
}

/// Paper Table I (non-regression tests, sload transmission).
pub const PAPER_TABLE1: [PaperRow; 14] = [
    PaperRow {
        cpus: 2,
        time: Some(838.004),
        ratio: Some(1.0),
    },
    PaperRow {
        cpus: 4,
        time: Some(285.356),
        ratio: Some(0.9789),
    },
    PaperRow {
        cpus: 6,
        time: Some(172.146),
        ratio: Some(0.973597),
    },
    PaperRow {
        cpus: 8,
        time: Some(124.78),
        ratio: Some(0.959407),
    },
    PaperRow {
        cpus: 10,
        time: Some(97.1792),
        ratio: Some(0.958142),
    },
    PaperRow {
        cpus: 16,
        time: Some(67.9677),
        ratio: Some(0.821963),
    },
    PaperRow {
        cpus: 32,
        time: Some(45.6611),
        ratio: Some(0.592023),
    },
    PaperRow {
        cpus: 64,
        time: Some(34.2828),
        ratio: Some(0.387998),
    },
    PaperRow {
        cpus: 96,
        time: Some(31.4682),
        ratio: Some(0.280317),
    },
    PaperRow {
        cpus: 128,
        time: Some(30.5574),
        ratio: Some(0.215937),
    },
    PaperRow {
        cpus: 160,
        time: Some(16.1006),
        ratio: Some(0.327347),
    },
    PaperRow {
        cpus: 192,
        time: Some(30.7013),
        ratio: Some(0.142908),
    },
    PaperRow {
        cpus: 224,
        time: Some(30.5024),
        ratio: Some(0.123199),
    },
    PaperRow {
        cpus: 256,
        time: Some(31.3172),
        ratio: Some(0.104935),
    },
];

/// Paper Table II columns (toy portfolio): (cpus, full, nfs, sload).
pub const PAPER_TABLE2: [(usize, f64, f64, f64); 16] = [
    (2, 8.85665, 16.3965, 7.17891),
    (4, 3.55046, 4.91225, 1.73774),
    (8, 3.86341, 2.52961, 1.81472),
    (10, 4.06038, 2.08968, 1.87771),
    (12, 3.9264, 1.77673, 1.88571),
    (14, 3.9624, 1.57676, 1.81372),
    (16, 4.05038, 1.40579, 1.9367),
    (18, 3.9524, 1.27181, 1.9497),
    (20, 4.13337, 1.17682, 1.87272),
    (24, 3.77643, 1.02784, 1.84772),
    (28, 3.9504, 0.928859, 1.77273),
    (32, 4.35934, 0.848871, 1.83072),
    (36, 4.05938, 0.786881, 1.75773),
    (40, 4.06538, 0.832873, 1.81572),
    (45, 4.12437, 0.768884, 1.78273),
    (50, 4.19136, 0.738887, 1.70474),
];

/// Paper Table III columns (realistic portfolio): (cpus, full, nfs,
/// sload); the 320/384/512 rows only report two columns in the paper —
/// we map them onto (full, sload) and mark NFS absent with NaN.
pub const PAPER_TABLE3: [(usize, f64, f64, f64); 17] = [
    (2, 5770.16, 5799.66, 5776.33),
    (4, 1980.35, 1939.46, 1925.29),
    (6, 1154.05, 1161.25, 1157.22),
    (8, 823.056, 828.07, 840.403),
    (10, 641.166, 645.544, 641.096),
    (16, 389.295, 389.097, 386.745),
    (32, 187.441, 193.937, 189.354),
    (64, 93.2008, 100.384, 94.7316),
    (96, 61.5176, 69.7884, 63.1974),
    (128, 46.7399, 54.8667, 47.6968),
    (160, 38.4812, 41.9726, 41.1997),
    (192, 31.5312, 35.7536, 33.5979),
    (224, 27.2929, 31.3362, 31.5822),
    (256, 24.4743, 28.2047, 27.8228),
    (320, 26.1740, f64::NAN, 26.7879),
    (384, 20.0550, f64::NAN, 22.5696),
    (512, 19.7960, f64::NAN, 20.1779),
];

/// Render simulated rows next to the paper's columns.
pub fn render_comparison(title: &str, ours: &[TableRow], paper: &[PaperRow]) -> String {
    let mut s = format!(
        "{title}\n{:>6} | {:>12} {:>10} | {:>12} {:>10}\n",
        "CPUs", "sim time", "sim ratio", "paper time", "paper ratio"
    );
    s.push_str(&"-".repeat(62));
    s.push('\n');
    for row in ours {
        let p = paper.iter().find(|p| p.cpus == row.cpus);
        let (pt, pr) = match p {
            Some(p) => (
                p.time.map_or("-".into(), |t| format!("{t:.3}")),
                p.ratio.map_or("-".into(), |r| format!("{r:.4}")),
            ),
            None => ("-".into(), "-".into()),
        };
        s.push_str(&format!(
            "{:>6} | {:>12.3} {:>10.4} | {:>12} {:>10}\n",
            row.cpus, row.time, row.ratio, pt, pr
        ));
    }
    s
}

/// Render a three-strategy table (Tables II/III format) with the paper's
/// numbers interleaved.
pub fn render_three_strategy(
    title: &str,
    ours: &[(farm::Transmission, Vec<TableRow>)],
    paper: &[(usize, f64, f64, f64)],
) -> String {
    use farm::Transmission;
    let get = |s: Transmission| -> &Vec<TableRow> {
        &ours
            .iter()
            .find(|(st, _)| *st == s)
            .expect("all strategies present")
            .1
    };
    let full = get(Transmission::FullLoad);
    let nfs = get(Transmission::Nfs);
    let sload = get(Transmission::SerializedLoad);
    let mut s = format!(
        "{title}\n{:>6} | {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}\n",
        "CPUs", "sim full", "sim NFS", "sim sload", "pap full", "pap NFS", "pap sload"
    );
    s.push_str(&"-".repeat(92));
    s.push('\n');
    for (i, row) in full.iter().enumerate() {
        let p = paper.iter().find(|p| p.0 == row.cpus);
        let fmt = |x: f64| {
            if x.is_nan() {
                format!("{:>11}", "-")
            } else {
                format!("{x:>11.3}")
            }
        };
        let (pf, pn, ps) = match p {
            Some(&(_, f, n, sl)) => (fmt(f), fmt(n), fmt(sl)),
            None => (fmt(f64::NAN), fmt(f64::NAN), fmt(f64::NAN)),
        };
        s.push_str(&format!(
            "{:>6} | {:>11.3} {:>11.3} {:>11.3} | {pf} {pn} {ps}\n",
            row.cpus, row.time, nfs[i].time, sload[i].time
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_consistent_with_ratio_definition() {
        // Verify our ratio formula against every printed Table I row.
        for row in &PAPER_TABLE1 {
            if let (Some(t), Some(r)) = (row.time, row.ratio) {
                let computed = clustersim::speedup_ratio(838.004, row.cpus, t);
                assert!(
                    (computed - r).abs() < 2e-3,
                    "cpus {}: computed {computed} printed {r}",
                    row.cpus
                );
            }
        }
    }

    #[test]
    fn render_includes_paper_values() {
        let ours = vec![TableRow {
            cpus: 2,
            time: 800.0,
            ratio: 1.0,
        }];
        let s = render_comparison("T1", &ours, &PAPER_TABLE1);
        assert!(s.contains("838.004"));
        assert!(s.contains("800.000"));
    }

    #[test]
    fn table3_paper_sload_ratios_match_formula() {
        // Spot-check the printed Table III serialized-load ratios.
        let t2 = 5776.33;
        for &(cpus, _, _, sload) in &PAPER_TABLE3 {
            if cpus == 2 || sload.is_nan() {
                continue;
            }
            let r = clustersim::speedup_ratio(t2, cpus, sload);
            assert!(r > 0.3 && r < 1.2, "cpus {cpus}: ratio {r}");
        }
    }
}
