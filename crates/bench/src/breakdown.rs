//! The `--breakdown` surface shared by the table binaries.
//!
//! Replays one CPU count of a table's workload through
//! [`clustersim::simulate_farm_recorded`] — once per transmission
//! strategy, each against a *cold* NFS cache so the strategies are
//! compared on equal footing — aggregates the recorded event stream into
//! an [`obs::BreakdownReport`], self-checks it (phase seconds within the
//! cpu-seconds budget, no dropped events, and the §4.2 claim that
//! serialized load pays the least problem-acquisition time), and prints
//! both the fixed-width table and the machine-readable JSON form.

use clustersim::{simulate_farm_sched, DispatchPolicy, SimCaches, SimConfig, SimJob, SimSchedOpts};
use farm::Transmission;
use obs::{Breakdown, BreakdownReport, EventKind, Recorder, StrategyBreakdown};

/// Ring capacity per rank. The master is the busiest rank: it records a
/// handful of events per job (prepare, pack, send, result recv), so this
/// comfortably holds the 10 000-job Table II workload without wrapping.
const RING_CAPACITY: usize = 1 << 17;

/// Parsed command-line options for a table binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakdownOpts {
    /// `--breakdown`: emit the per-phase decomposition instead of (only)
    /// the speedup table.
    pub enabled: bool,
    /// `--jobs N`: portfolio size override for workloads that scale
    /// (Table II). `None` keeps the table's paper-sized default.
    pub jobs: Option<usize>,
    /// `--cpus N`: cluster size (master + slaves) for the breakdown run.
    pub cpus: usize,
    /// `--warm`: model the `store` crate's client-side problem cache —
    /// each strategy runs twice against one shared cache state, and the
    /// warm re-run is reported as an extra `"<strategy> (warm)"` row.
    pub warm: bool,
    /// `--compress`: model the compressed-wire option for loaded
    /// payloads (`FarmConfig::compress_wire`).
    pub compress: bool,
    /// `--threads N`: model the intra-slave chunked executor
    /// (`FarmConfig::threads`) — each strategy runs a second time with
    /// `N` worker threads per slave, reported as an extra
    /// `"<strategy> (xN threads)"` row and self-checked: compute-phase
    /// seconds must shrink ~linearly while prepare/wire/wait stay put.
    pub threads: usize,
    /// `--lanes N`: model the SIMD-lane batched, allocation-free kernels
    /// (`FarmConfig::lanes`; widths 1, 4 or 8) — each strategy runs an
    /// extra time with the lane model on (composed with `--threads` when
    /// both are given), reported as an extra
    /// `"<strategy> (xT threads, N lanes)"` row and self-checked:
    /// compute-phase seconds must be at least 2x below the same-thread
    /// baseline but under the lane width, with prepare/wire/wait
    /// untouched and a `LaneBatch` mark per compute carrying the width.
    pub lanes: usize,
    /// `--order lpt`: model the [`DispatchPolicy::Lpt`] dispatch order
    /// (`FarmConfig::order`) — each strategy runs a second time with the
    /// queue sorted longest-cost-first, reported as an extra
    /// `"<strategy> (lpt)"` row and self-checked: per-job wait seconds
    /// must not regress against FIFO, compute is untouched, and the
    /// makespan must not degrade beyond noise.
    pub order_lpt: bool,
}

impl Default for BreakdownOpts {
    fn default() -> Self {
        BreakdownOpts {
            enabled: false,
            jobs: None,
            cpus: 8,
            warm: false,
            compress: false,
            threads: 1,
            lanes: 1,
            order_lpt: false,
        }
    }
}

impl BreakdownOpts {
    /// Parse `--breakdown [--jobs N] [--cpus N]` from an argument list
    /// (not including the program name). Flags listed in `passthrough`
    /// are silently skipped (they belong to the hosting binary, e.g.
    /// table1's `--live`); anything else unknown is an error so typos
    /// fail loudly in CI.
    pub fn parse<I, S>(args: I, passthrough: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = BreakdownOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_ref() {
                a if passthrough.contains(&a) => {}
                "--breakdown" => opts.enabled = true,
                "--warm" => opts.warm = true,
                "--compress" => opts.compress = true,
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("--jobs: bad count {:?}", v.as_ref()))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = Some(n);
                }
                "--cpus" => {
                    let v = it.next().ok_or("--cpus needs a value")?;
                    let n: usize = v
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("--cpus: bad count {:?}", v.as_ref()))?;
                    if n < 2 {
                        return Err("--cpus must be at least 2 (master + one slave)".into());
                    }
                    opts.cpus = n;
                }
                "--order" => {
                    let v = it.next().ok_or("--order needs a value (fifo|lpt)")?;
                    match v.as_ref() {
                        "fifo" => opts.order_lpt = false,
                        "lpt" => opts.order_lpt = true,
                        other => {
                            return Err(format!("--order: unknown policy {other:?} (fifo|lpt)"))
                        }
                    }
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("--threads: bad count {:?}", v.as_ref()))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    opts.threads = n;
                }
                "--lanes" => {
                    let v = it.next().ok_or("--lanes needs a value (1|4|8)")?;
                    let n: usize = v
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("--lanes: bad width {:?}", v.as_ref()))?;
                    if !matches!(n, 1 | 4 | 8) {
                        return Err(format!("--lanes: unsupported width {n} (1|4|8)"));
                    }
                    opts.lanes = n;
                }
                other => return Err(format!("unknown argument {other:?} (try --breakdown)")),
            }
        }
        Ok(opts)
    }
}

/// Run the workload once per strategy on `opts.cpus - 1` slaves,
/// recording every phase, and assemble the checked report.
///
/// Each strategy starts from cold [`SimCaches`] — the §4.2 caching bias
/// is deliberately *excluded* here, because the breakdown's job is to
/// expose what each strategy intrinsically pays per problem. With
/// `opts.warm`, each strategy is run a second time against the cache
/// state its cold run left behind, and the re-run lands in the report as
/// `"<strategy> (warm)"`; with `opts.compress`, loaded payloads go over
/// the wire through the modelled LZSS codec.
pub fn breakdown_report(
    title: &str,
    jobs: &[SimJob],
    opts: &BreakdownOpts,
    cfg: &SimConfig,
) -> Result<BreakdownReport, String> {
    if opts.cpus < 2 {
        return Err("breakdown needs at least 2 CPUs".into());
    }
    let slaves = opts.cpus - 1;
    let mut cfg = *cfg;
    if opts.warm {
        cfg.store.client_cache = true;
    }
    if opts.compress {
        cfg.store.compress = true;
    }
    // The threaded comparison runs against the same strategy/caches but
    // with the executor model on.
    let mut cfg_thr = cfg;
    cfg_thr.exec.threads = opts.threads;
    // The lane comparison composes with the thread knob: it is measured
    // against whichever of the sequential/threaded rows shares its
    // thread count, so the only variable left is the lane model.
    let mut cfg_lane = cfg_thr;
    cfg_lane.exec.lanes = opts.lanes;
    let mut report = BreakdownReport::new(title);
    for strategy in Transmission::ALL {
        // One cache state per strategy: the cold run fills it, the
        // optional warm run reuses it.
        let mut caches = SimCaches::new();
        let fifo = SimSchedOpts::default();
        let one_run = |label: String,
                       run_cfg: &SimConfig,
                       caches: &mut SimCaches,
                       sched_opts: &SimSchedOpts| {
            let rec = Recorder::with_capacity(slaves + 1, RING_CAPACITY);
            let (out, _) = simulate_farm_sched(
                jobs,
                slaves,
                strategy,
                run_cfg,
                caches,
                Some(&rec),
                sched_opts,
            )
            .expect("breakdown scheduling options are always self-consistent");
            StrategyBreakdown {
                strategy: label,
                cpus: opts.cpus,
                wall_s: out.makespan,
                breakdown: Breakdown::from_events(&rec.events()),
                dropped: rec.dropped(),
            }
        };
        report.runs.push(one_run(
            strategy.label().to_string(),
            &cfg,
            &mut caches,
            &fifo,
        ));
        if opts.warm {
            report.runs.push(one_run(
                format!("{} (warm)", strategy.label()),
                &cfg,
                &mut caches,
                &fifo,
            ));
        }
        if opts.threads > 1 {
            // Threaded run from cold caches: compared against the cold
            // baseline, so the only variable is the executor.
            report.runs.push(one_run(
                format!("{} (x{} threads)", strategy.label(), opts.threads),
                &cfg_thr,
                &mut SimCaches::new(),
                &fifo,
            ));
        }
        if opts.lanes > 1 {
            // Lane run from cold caches, same thread count as the
            // threaded row (or sequential when --threads is absent).
            report.runs.push(one_run(
                lane_label(strategy, opts),
                &cfg_lane,
                &mut SimCaches::new(),
                &fifo,
            ));
        }
        if opts.order_lpt {
            // LPT run from cold caches: the only variable is the queue
            // order, fed with the jobs' own (here: exact) costs, the way
            // `FarmConfig::order` feeds a calibrated CostModel estimate.
            let lpt = SimSchedOpts {
                policy: DispatchPolicy::Lpt {
                    costs: jobs.iter().map(|j| j.compute).collect(),
                },
                ..SimSchedOpts::default()
            };
            report.runs.push(one_run(
                format!("{} (lpt)", strategy.label()),
                &cfg,
                &mut SimCaches::new(),
                &lpt,
            ));
        }
    }
    report.check()?;
    check_sload_prepare_cheapest(&report)?;
    if opts.warm {
        check_warm_cache_effect(&report)?;
    }
    if opts.compress {
        check_compression_effect(&report)?;
    }
    if opts.threads > 1 {
        check_thread_scaling(&report, opts.threads)?;
    }
    if opts.lanes > 1 {
        check_lane_scaling(&report, opts)?;
    }
    if opts.order_lpt {
        check_lpt_order(&report)?;
    }
    Ok(report)
}

/// Row label of the lane run for `strategy` under `opts`.
fn lane_label(strategy: Transmission, opts: &BreakdownOpts) -> String {
    if opts.threads > 1 {
        format!(
            "{} (x{} threads, {} lanes)",
            strategy.label(),
            opts.threads,
            opts.lanes
        )
    } else {
        format!("{} ({} lanes)", strategy.label(), opts.lanes)
    }
}

/// The SIMD-lane acceptance check: for every strategy, the lane run's
/// compute seconds must be at least **2x** below the same-thread-count
/// baseline (the headline claim the committed `BENCH_*.json` artifacts
/// pin) but below the lane width (the scalar RNG draw and payoff branch
/// cap the win), prepare/wire/wait must be untouched within 1e-9 (lane
/// batching lives entirely inside the compute phase), and the lane run
/// must carry one `LaneBatch` self-check mark per compute with the
/// configured width — while the baseline rows carry none (off by
/// default).
pub fn check_lane_scaling(report: &BreakdownReport, opts: &BreakdownOpts) -> Result<(), String> {
    let lanes = opts.lanes;
    for strategy in Transmission::ALL {
        let base_label = if opts.threads > 1 {
            format!("{} (x{} threads)", strategy.label(), opts.threads)
        } else {
            strategy.label().to_string()
        };
        let base = report
            .run(&base_label)
            .ok_or_else(|| format!("missing {base_label:?} baseline run"))?;
        let lane_label = lane_label(strategy, opts);
        let lane = report
            .run(&lane_label)
            .ok_or_else(|| format!("missing {lane_label:?} run"))?;
        let (b, l) = (&base.breakdown, &lane.breakdown);
        let ratio = b.compute_s() / l.compute_s();
        if ratio < 2.0 {
            return Err(format!(
                "{strategy}: lanes only cut compute x{ratio:.2} ({:.6}s -> {:.6}s), need >= 2x",
                b.compute_s(),
                l.compute_s()
            ));
        }
        if ratio >= lanes as f64 {
            return Err(format!(
                "{strategy}: implausible x{ratio:.2} compute cut from {lanes} lanes"
            ));
        }
        for (phase, a, c) in [
            ("prepare", b.prepare_s(), l.prepare_s()),
            ("wire", b.wire_s(), l.wire_s()),
            ("wait", b.wait_s(), l.wait_s()),
        ] {
            if (a - c).abs() > 1e-9 {
                return Err(format!(
                    "{strategy}: lanes changed {phase} ({a:.9}s vs {c:.9}s)"
                ));
            }
        }
        if l.count_of(EventKind::LaneBatch) == 0 {
            return Err(format!("{strategy}: lane run recorded no LaneBatch marks"));
        }
        if l.lane_width() != lanes as f64 {
            return Err(format!(
                "{strategy}: lane marks carry width {} but {lanes} configured",
                l.lane_width()
            ));
        }
        if b.count_of(EventKind::LaneBatch) != 0 {
            return Err(format!(
                "{strategy}: baseline run has LaneBatch marks (lanes must be off by default)"
            ));
        }
    }
    Ok(())
}

/// The `--order lpt` acceptance check: for every strategy, the LPT run
/// must price the same portfolio (identical compute seconds), its
/// cumulative wait seconds (`Probe + Recv + Unpack`) must not regress
/// against FIFO, and its makespan must not degrade beyond scheduling
/// noise — LPT exists to shave the end-of-run straggler tail, never to
/// add communication.
pub fn check_lpt_order(report: &BreakdownReport) -> Result<(), String> {
    for strategy in Transmission::ALL {
        let fifo = report
            .run(strategy.label())
            .ok_or_else(|| format!("missing {strategy} FIFO run"))?;
        let lpt_label = format!("{} (lpt)", strategy.label());
        let lpt = report
            .run(&lpt_label)
            .ok_or_else(|| format!("missing {lpt_label:?} run"))?;
        let (f, l) = (&fifo.breakdown, &lpt.breakdown);
        if l.wait_s() > f.wait_s() + 1e-9 {
            return Err(format!(
                "{strategy}: LPT wait {:.9}s regressed above FIFO {:.9}s",
                l.wait_s(),
                f.wait_s()
            ));
        }
        if (l.compute_s() - f.compute_s()).abs() > 1e-9 {
            return Err(format!(
                "{strategy}: LPT changed compute ({:.9}s vs {:.9}s)",
                l.compute_s(),
                f.compute_s()
            ));
        }
        if lpt.wall_s > fifo.wall_s * 1.05 + 1e-9 {
            return Err(format!(
                "{strategy}: LPT makespan {:.6}s degraded FIFO's {:.6}s",
                lpt.wall_s, fifo.wall_s
            ));
        }
    }
    Ok(())
}

/// The intra-slave-threads acceptance check: for every strategy, the
/// threaded run's compute seconds must shrink ~linearly — at least
/// `threads / 2` times below the sequential run (the default Amdahl
/// model with a 5 % serial fraction gives ×5.9 at 8 threads) but never
/// superlinearly — while prepare, wire and wait are untouched within
/// noise (the executor lives entirely inside the compute phase), and the
/// threaded run actually recorded per-chunk diagnostics.
pub fn check_thread_scaling(report: &BreakdownReport, threads: usize) -> Result<(), String> {
    for strategy in Transmission::ALL {
        let seq = report
            .run(strategy.label())
            .ok_or_else(|| format!("missing {strategy} sequential run"))?;
        let thr_label = format!("{} (x{threads} threads)", strategy.label());
        let thr = report
            .run(&thr_label)
            .ok_or_else(|| format!("missing {thr_label:?} run"))?;
        let (s, t) = (&seq.breakdown, &thr.breakdown);
        let ratio = s.compute_s() / t.compute_s();
        if ratio < threads as f64 / 2.0 {
            return Err(format!(
                "{strategy}: compute only shrank x{ratio:.2} with {threads} threads \
                 ({:.6}s -> {:.6}s)",
                s.compute_s(),
                t.compute_s()
            ));
        }
        if ratio >= threads as f64 {
            return Err(format!(
                "{strategy}: superlinear compute speedup x{ratio:.2} with {threads} threads"
            ));
        }
        for (phase, a, b) in [
            ("prepare", s.prepare_s(), t.prepare_s()),
            ("wire", s.wire_s(), t.wire_s()),
            ("wait", s.wait_s(), t.wait_s()),
        ] {
            if (a - b).abs() > 1e-9 {
                return Err(format!(
                    "{strategy}: threads changed {phase} ({a:.9}s vs {b:.9}s)"
                ));
            }
        }
        if t.count_of(EventKind::ComputeChunk) == 0 {
            return Err(format!("{strategy}: threaded run recorded no chunk spans"));
        }
        if t.parallelism() <= 1.0 {
            return Err(format!(
                "{strategy}: parallelism x{:.2} not above 1",
                t.parallelism()
            ));
        }
        if s.parallel_s() != 0.0 {
            return Err(format!("{strategy}: sequential run has chunk diagnostics"));
        }
        // Lane batching is off by default: neither the sequential nor the
        // threads-only row may carry lane marks.
        for (label, run) in [("sequential", s), ("threaded", t)] {
            if run.count_of(EventKind::LaneBatch) != 0 {
                return Err(format!(
                    "{strategy}: {label} run has LaneBatch marks without --lanes"
                ));
            }
        }
    }
    Ok(())
}

/// The warm-store acceptance check: for every strategy, the warm run's
/// prepare seconds must be *strictly* below its cold run's (the cache
/// removed real fetch work), while compute and wait are unchanged within
/// noise (the cache must not touch what the slaves do), and the warm run
/// actually hit the cache.
pub fn check_warm_cache_effect(report: &BreakdownReport) -> Result<(), String> {
    for strategy in Transmission::ALL {
        let cold = report
            .run(strategy.label())
            .ok_or_else(|| format!("missing {strategy} cold run"))?;
        let warm_label = format!("{} (warm)", strategy.label());
        let warm = report
            .run(&warm_label)
            .ok_or_else(|| format!("missing {warm_label:?} run"))?;
        let (c, w) = (&cold.breakdown, &warm.breakdown);
        if w.prepare_s() >= c.prepare_s() {
            return Err(format!(
                "{strategy}: warm prepare {:.6}s not strictly below cold {:.6}s",
                w.prepare_s(),
                c.prepare_s()
            ));
        }
        if (w.compute_s() - c.compute_s()).abs() > 1e-9 {
            return Err(format!(
                "{strategy}: cache changed compute ({:.9}s vs {:.9}s)",
                w.compute_s(),
                c.compute_s()
            ));
        }
        if (w.wait_s() - c.wait_s()).abs() > 1e-9 {
            return Err(format!(
                "{strategy}: cache changed wait ({:.9}s vs {:.9}s)",
                w.wait_s(),
                c.wait_s()
            ));
        }
        if w.count_of(EventKind::CacheHit) == 0 {
            return Err(format!("{strategy}: warm run recorded no cache hits"));
        }
        if w.cache_hit_rate() <= 0.0 {
            return Err(format!("{strategy}: warm run hit-rate is zero"));
        }
    }
    Ok(())
}

/// The compressed-wire acceptance check: both loaded strategies must
/// have compressed every over-threshold payload (matching decompression
/// on the slaves, net bytes actually saved), and NFS — which ships only
/// names — must be untouched by the codec.
pub fn check_compression_effect(report: &BreakdownReport) -> Result<(), String> {
    for strategy in [Transmission::FullLoad, Transmission::SerializedLoad] {
        let run = report
            .run(strategy.label())
            .ok_or_else(|| format!("missing {strategy} run"))?;
        let b = &run.breakdown;
        let z = b
            .phase(EventKind::Compress)
            .ok_or_else(|| format!("{strategy}: no compress events recorded"))?;
        if b.count_of(EventKind::Decompress) != z.count {
            return Err(format!(
                "{strategy}: {} compressions but {} decompressions",
                z.count,
                b.count_of(EventKind::Decompress)
            ));
        }
        if z.bytes == 0 {
            return Err(format!("{strategy}: compression saved no bytes"));
        }
    }
    let nfs = report
        .run(Transmission::Nfs.label())
        .ok_or("missing NFS run")?;
    if nfs.breakdown.count_of(EventKind::Compress) != 0 {
        return Err("NFS run has compress events (names are never compressed)".into());
    }
    Ok(())
}

/// The §4.2 acceptance check: serialized load's prepare seconds
/// (`Serialize + Sload + Pack + NfsRead`, wherever they run) must be
/// *strictly* the smallest of the three strategies — the master skips
/// materialisation and the slaves skip NFS.
pub fn check_sload_prepare_cheapest(report: &BreakdownReport) -> Result<(), String> {
    let prepare = |strategy: Transmission| -> Result<f64, String> {
        report
            .run(strategy.label())
            .map(|r| r.breakdown.prepare_s())
            .ok_or_else(|| format!("missing {strategy} run in breakdown report"))
    };
    let sload = prepare(Transmission::SerializedLoad)?;
    for other in [Transmission::FullLoad, Transmission::Nfs] {
        let o = prepare(other)?;
        if sload >= o {
            return Err(format!(
                "serialized load prepare {sload:.6}s is not strictly below {other} {o:.6}s"
            ));
        }
    }
    Ok(())
}

/// Print a checked report (text table, then one line of JSON) for a
/// table binary. The caller exits nonzero on `Err`.
pub fn print_breakdown(
    title: &str,
    jobs: &[SimJob],
    opts: &BreakdownOpts,
    cfg: &SimConfig,
) -> Result<(), String> {
    let report = breakdown_report(title, jobs, opts, cfg)?;
    println!("{}", report.render());
    println!("JSON: {}", report.to_json());
    Ok(())
}

/// The `main`-shaped wrapper the binaries share: run the breakdown when
/// requested (returns `true` — the caller should stop), otherwise fall
/// through to the table rendering (`false`). Exits the process with
/// status 2 on bad arguments or a failed check.
pub fn run_cli(
    title: &str,
    passthrough: &[&str],
    build_jobs: impl FnOnce(&BreakdownOpts) -> Vec<SimJob>,
) -> bool {
    let opts = match BreakdownOpts::parse(std::env::args().skip(1), passthrough) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: --breakdown [--jobs N] [--cpus N] [--threads N] [--lanes 1|4|8] \
                 [--order fifo|lpt] [--warm] [--compress]"
            );
            std::process::exit(2);
        }
    };
    if !opts.enabled {
        return false;
    }
    let jobs = build_jobs(&opts);
    if let Err(e) = print_breakdown(title, &jobs, &opts, &SimConfig::default()) {
        eprintln!("breakdown check failed: {e}");
        std::process::exit(2);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_flags_and_rejects_junk() {
        assert_eq!(
            BreakdownOpts::parse(["--breakdown"], &[]).unwrap(),
            BreakdownOpts {
                enabled: true,
                ..BreakdownOpts::default()
            }
        );
        let o = BreakdownOpts::parse(["--breakdown", "--jobs", "500", "--cpus", "4"], &[]).unwrap();
        assert!(o.enabled);
        assert_eq!(o.jobs, Some(500));
        assert_eq!(o.cpus, 4);
        assert!(BreakdownOpts::parse(["--frobnicate"], &[]).is_err());
        assert!(BreakdownOpts::parse(["--jobs"], &[]).is_err());
        assert!(BreakdownOpts::parse(["--jobs", "0"], &[]).is_err());
        assert!(BreakdownOpts::parse(["--cpus", "1"], &[]).is_err());
        assert!(
            !BreakdownOpts::parse(Vec::<String>::new(), &[])
                .unwrap()
                .enabled
        );
        // Host-binary flags pass through without tripping the parser.
        let o = BreakdownOpts::parse(["--live", "--breakdown"], &["--live"]).unwrap();
        assert!(o.enabled);
        assert!(BreakdownOpts::parse(["--live"], &[]).is_err());
    }

    fn opts(cpus: usize) -> BreakdownOpts {
        BreakdownOpts {
            enabled: true,
            cpus,
            ..BreakdownOpts::default()
        }
    }

    #[test]
    fn table2_breakdown_passes_all_checks() {
        // A scaled-down Table II workload: the checks inside
        // breakdown_report are the acceptance criteria themselves.
        let jobs = clustersim::table2_sim_jobs(400);
        let report = breakdown_report("test", &jobs, &opts(4), &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 3);
        for run in &report.runs {
            assert_eq!(run.cpus, 4);
            assert!(run.breakdown.compute_s() > 0.0, "{}", run.strategy);
            assert_eq!(run.dropped, 0);
        }
        // Strict ordering of prepare time: sload < full load < cold NFS.
        let p = |s: Transmission| report.run(s.label()).unwrap().breakdown.prepare_s();
        assert!(p(Transmission::SerializedLoad) < p(Transmission::FullLoad));
        assert!(p(Transmission::FullLoad) < p(Transmission::Nfs));
        // All strategies computed the same portfolio: identical compute
        // seconds (the sim charges the measured per-job cost verbatim).
        let c = |s: Transmission| report.run(s.label()).unwrap().breakdown.compute_s();
        let base = c(Transmission::SerializedLoad);
        assert!((c(Transmission::FullLoad) - base).abs() < 1e-9);
        assert!((c(Transmission::Nfs) - base).abs() < 1e-9);
        // Render and JSON both carry the summary columns.
        let text = report.render();
        assert!(text.contains("prepare="));
        let json = report.to_json();
        assert!(json.contains("\"prepare_s\":"));
        assert!(json.contains("\"strategy\":"));
    }

    #[test]
    fn report_fails_when_a_strategy_is_missing() {
        let jobs = clustersim::table2_sim_jobs(50);
        let mut report = breakdown_report("test", &jobs, &opts(2), &SimConfig::default()).unwrap();
        report
            .runs
            .retain(|r| r.strategy != Transmission::SerializedLoad.label());
        assert!(check_sload_prepare_cheapest(&report).is_err());
    }

    #[test]
    fn parse_accepts_warm_and_compress() {
        let o = BreakdownOpts::parse(["--breakdown", "--warm", "--compress"], &[]).unwrap();
        assert!(o.enabled && o.warm && o.compress);
        let o = BreakdownOpts::parse(["--breakdown"], &[]).unwrap();
        assert!(!o.warm && !o.compress);
    }

    #[test]
    fn warm_breakdown_adds_checked_warm_rows() {
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            warm: true,
            ..opts(4)
        };
        let report = breakdown_report("test warm", &jobs, &o, &SimConfig::default()).unwrap();
        // Three cold rows + three warm rows, and the warm check held
        // (breakdown_report would have errored otherwise).
        assert_eq!(report.runs.len(), 6);
        for strategy in Transmission::ALL {
            let cold = report.run(strategy.label()).unwrap();
            let warm = report.run(&format!("{} (warm)", strategy.label())).unwrap();
            assert!(
                warm.breakdown.prepare_s() < cold.breakdown.prepare_s(),
                "{strategy}"
            );
            assert!(warm.breakdown.cache_hit_rate() > 0.99, "{strategy}");
        }
        // The JSON form carries the new store columns.
        let json = report.to_json();
        assert!(json.contains("\"store_s\":"));
        assert!(json.contains("\"cache_hit_rate\":"));
        assert!(json.contains("(warm)"));
    }

    #[test]
    fn compressed_breakdown_passes_codec_checks() {
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            compress: true,
            ..opts(4)
        };
        let report = breakdown_report("test z", &jobs, &o, &SimConfig::default()).unwrap();
        check_compression_effect(&report).unwrap();
        let sload = report.run(Transmission::SerializedLoad.label()).unwrap();
        assert!(sload.breakdown.store_s() > 0.0, "codec time missing");
        // NFS ships names only — no codec anywhere near it.
        let nfs = report.run(Transmission::Nfs.label()).unwrap();
        assert_eq!(nfs.breakdown.count_of(EventKind::Decompress), 0);
    }

    #[test]
    fn parse_accepts_threads_and_rejects_zero() {
        let o = BreakdownOpts::parse(["--breakdown", "--threads", "8"], &[]).unwrap();
        assert!(o.enabled);
        assert_eq!(o.threads, 8);
        assert_eq!(
            BreakdownOpts::parse(["--breakdown"], &[]).unwrap().threads,
            1
        );
        assert!(BreakdownOpts::parse(["--threads", "0"], &[]).is_err());
        assert!(BreakdownOpts::parse(["--threads"], &[]).is_err());
    }

    #[test]
    fn threaded_breakdown_passes_scaling_checks() {
        // The acceptance criterion itself: `--breakdown --threads 8`
        // must show compute >= 4x cheaper with prepare/wire/wait put.
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            threads: 8,
            ..opts(4)
        };
        let report = breakdown_report("test t8", &jobs, &o, &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 6);
        check_thread_scaling(&report, 8).unwrap();
        for strategy in Transmission::ALL {
            let seq = report.run(strategy.label()).unwrap();
            let thr = report
                .run(&format!("{} (x8 threads)", strategy.label()))
                .unwrap();
            let ratio = seq.breakdown.compute_s() / thr.breakdown.compute_s();
            assert!(ratio >= 4.0, "{strategy}: x{ratio:.2}");
            assert!(thr.wall_s < seq.wall_s, "{strategy}");
            assert!(thr.breakdown.parallelism() > 4.0, "{strategy}");
        }
        // The threaded rows survive render and JSON with the new column.
        let json = report.to_json();
        assert!(json.contains("(x8 threads)"));
        assert!(json.contains("\"parallelism\":"));
        assert!(report.render().contains("intra-slave parallelism"));
    }

    #[test]
    fn parse_accepts_lanes_and_rejects_bad_widths() {
        let o = BreakdownOpts::parse(["--breakdown", "--lanes", "8"], &[]).unwrap();
        assert!(o.enabled);
        assert_eq!(o.lanes, 8);
        assert_eq!(BreakdownOpts::parse(["--breakdown"], &[]).unwrap().lanes, 1);
        for bad in ["0", "2", "3", "16", "x"] {
            assert!(
                BreakdownOpts::parse(["--lanes", bad], &[]).is_err(),
                "--lanes {bad} should be rejected"
            );
        }
        assert!(BreakdownOpts::parse(["--lanes"], &[]).is_err());
    }

    #[test]
    fn laned_breakdown_passes_scaling_checks_with_threads() {
        // The acceptance criterion itself: `--threads 8 --lanes 8` must
        // show compute >= 2x below the threads-only row with
        // prepare/wire/wait put, and the lane marks present.
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            threads: 8,
            lanes: 8,
            ..opts(4)
        };
        let report = breakdown_report("test t8 l8", &jobs, &o, &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 9);
        check_thread_scaling(&report, 8).unwrap();
        check_lane_scaling(&report, &o).unwrap();
        for strategy in Transmission::ALL {
            let thr = report
                .run(&format!("{} (x8 threads)", strategy.label()))
                .unwrap();
            let lane = report
                .run(&format!("{} (x8 threads, 8 lanes)", strategy.label()))
                .unwrap();
            let ratio = thr.breakdown.compute_s() / lane.breakdown.compute_s();
            assert!(ratio >= 2.0, "{strategy}: x{ratio:.2}");
            assert!(lane.wall_s < thr.wall_s, "{strategy}");
            assert_eq!(lane.breakdown.lane_width(), 8.0, "{strategy}");
        }
        // The lane rows survive render and JSON with the new column.
        let json = report.to_json();
        assert!(json.contains("(x8 threads, 8 lanes)"));
        assert!(json.contains("\"lanes\":8.0"));
        assert!(report.render().contains("simd lanes x8 alloc-free"));
    }

    #[test]
    fn laned_breakdown_works_without_threads() {
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            lanes: 8,
            ..opts(4)
        };
        let report = breakdown_report("test l8", &jobs, &o, &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 6);
        check_lane_scaling(&report, &o).unwrap();
        for strategy in Transmission::ALL {
            let seq = report.run(strategy.label()).unwrap();
            let lane = report
                .run(&format!("{} (8 lanes)", strategy.label()))
                .unwrap();
            assert!(lane.breakdown.compute_s() < seq.breakdown.compute_s() / 2.0);
            assert_eq!(seq.breakdown.count_of(EventKind::LaneBatch), 0);
        }
    }

    #[test]
    fn lane_scaling_check_fails_without_lane_rows() {
        let jobs = clustersim::table2_sim_jobs(50);
        let report = breakdown_report("test", &jobs, &opts(2), &SimConfig::default()).unwrap();
        let o = BreakdownOpts {
            lanes: 8,
            ..opts(2)
        };
        assert!(check_lane_scaling(&report, &o).is_err());
    }

    #[test]
    fn parse_accepts_order_and_rejects_junk_policies() {
        let o = BreakdownOpts::parse(["--breakdown", "--order", "lpt"], &[]).unwrap();
        assert!(o.enabled && o.order_lpt);
        let o = BreakdownOpts::parse(["--breakdown", "--order", "fifo"], &[]).unwrap();
        assert!(!o.order_lpt);
        assert!(
            !BreakdownOpts::parse(["--breakdown"], &[])
                .unwrap()
                .order_lpt
        );
        assert!(BreakdownOpts::parse(["--order"], &[]).is_err());
        assert!(BreakdownOpts::parse(["--order", "sjf"], &[]).is_err());
    }

    #[test]
    fn lpt_breakdown_passes_wait_and_makespan_checks() {
        // Uniform Table II vanillas: LPT degenerates to FIFO (stable
        // sort), so wait and makespan agree exactly.
        let jobs = clustersim::table2_sim_jobs(400);
        let o = BreakdownOpts {
            order_lpt: true,
            ..opts(4)
        };
        let report = breakdown_report("test lpt", &jobs, &o, &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 6);
        check_lpt_order(&report).unwrap();
        let json = report.to_json();
        assert!(json.contains("(lpt)"));
    }

    #[test]
    fn lpt_breakdown_beats_fifo_on_a_straggler_tail() {
        // A heterogeneous portfolio with the expensive job *last*: FIFO
        // strands it on one slave at the end of the run; LPT fronts it
        // and the makespan drops, with wait untouched.
        let mut jobs = clustersim::table2_sim_jobs(60);
        let n = jobs.len();
        jobs[n - 1].compute = 1.0;
        let o = BreakdownOpts {
            order_lpt: true,
            ..opts(4)
        };
        let report = breakdown_report("test lpt tail", &jobs, &o, &SimConfig::default()).unwrap();
        check_lpt_order(&report).unwrap();
        for strategy in Transmission::ALL {
            let fifo = report.run(strategy.label()).unwrap();
            let lpt = report.run(&format!("{} (lpt)", strategy.label())).unwrap();
            assert!(
                lpt.wall_s < fifo.wall_s,
                "{strategy}: lpt {:.4}s vs fifo {:.4}s",
                lpt.wall_s,
                fifo.wall_s
            );
        }
    }

    #[test]
    fn lpt_check_fails_without_lpt_rows() {
        let jobs = clustersim::table2_sim_jobs(50);
        let report = breakdown_report("test", &jobs, &opts(2), &SimConfig::default()).unwrap();
        assert!(check_lpt_order(&report).is_err());
    }

    #[test]
    fn thread_scaling_check_fails_without_threaded_rows() {
        let jobs = clustersim::table2_sim_jobs(50);
        let report = breakdown_report("test", &jobs, &opts(2), &SimConfig::default()).unwrap();
        assert!(check_thread_scaling(&report, 8).is_err());
    }

    #[test]
    fn warm_and_compress_compose() {
        let jobs = clustersim::table2_sim_jobs(300);
        let o = BreakdownOpts {
            warm: true,
            compress: true,
            ..opts(4)
        };
        let report = breakdown_report("test wz", &jobs, &o, &SimConfig::default()).unwrap();
        assert_eq!(report.runs.len(), 6);
        check_warm_cache_effect(&report).unwrap();
        check_compression_effect(&report).unwrap();
    }
}
