//! Offline shim for `proptest`: a deterministic property-testing harness
//! covering exactly the API surface this workspace uses.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; reproduction is via the deterministic per-test seed.
//! * **Deterministic.** Each `proptest!` test derives its RNG seed from
//!   the test's name (override with `PROPTEST_SEED`), so failures
//!   reproduce run-to-run and machine-to-machine.
//! * **Regex strategies** support the subset actually used in-tree:
//!   concatenations of literal characters and character classes
//!   (`[a-z0-9_-]`, ranges, escapes) with `{lo,hi}` quantifiers.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive a seed from a test name (FNV-1a), unless `PROPTEST_SEED`
    /// overrides it.
    pub fn from_name(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::new(seed);
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform usize in `lo..hi` (half-open).
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        r.start + self.below((r.end - r.start) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject generated values failing `pred` (regenerates, bounded).
    fn prop_filter<F>(self, whence: impl fmt::Display, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: whence.to_string(),
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// recursive positions and returns the composite level. `depth`
    /// bounds the nesting; `_desired_size`/`_expected_branch` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for level in 0..depth {
            let composite = Arc::new(recurse(strat));
            let leaf = leaf.clone();
            // Deeper levels recurse with decreasing probability so the
            // expected size stays bounded.
            let p_recurse = 0.6f64.powi(level as i32 + 1).max(0.25);
            strat = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.next_f64() < p_recurse {
                    composite.gen_value(rng)
                } else {
                    leaf.gen_value(rng)
                }
            }));
        }
        strat
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| inner.gen_value(rng)))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Always generates a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(off)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// `any::<T>()` marker — arbitrary values of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary values of `T` (upstream's `any::<T>()`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn gen_value(&self, rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn gen_value(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        // Mix well-scaled finite values with raw bit patterns (which can
        // be huge, subnormal, infinite or NaN) like upstream `any::<f64>()`.
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            2 => -0.0,
            _ => {
                let mag = 10f64.powf(rng.next_f64() * 20.0 - 10.0);
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                sign * mag * rng.next_f64()
            }
        }
    }
}

// --- regex-subset string strategies ----------------------------------------

/// One parsed pattern element: a character class with a repetition range.
#[derive(Debug, Clone)]
struct PatternPiece {
    chars: Vec<char>,
    lo: usize,
    hi: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars.next().expect("unterminated character class");
        if c == ']' {
            break;
        }
        let c = if c == '\\' {
            match chars.next().expect("dangling escape") {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        // Range `a-z` iff '-' is followed by a non-']' char.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next(); // consume '-'
            match ahead.peek() {
                Some(&end) if end != ']' => {
                    chars.next(); // '-'
                    let end = chars.next().unwrap();
                    let (a, b) = (c as u32, end as u32);
                    assert!(a <= b, "inverted range in class");
                    for u in a..=b {
                        if let Some(ch) = char::from_u32(u) {
                            out.push(ch);
                        }
                    }
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_pattern(pat: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => parse_class(&mut chars),
            '\\' => vec![match chars.next().expect("dangling escape") {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }],
            other => vec![other],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut lo = None;
            loop {
                match chars.next().expect("unterminated quantifier") {
                    '}' => break,
                    ',' => {
                        lo = Some(digits.parse::<usize>().expect("bad quantifier"));
                        digits.clear();
                    }
                    d => digits.push(d),
                }
            }
            let last = digits.parse::<usize>().expect("bad quantifier");
            match lo {
                Some(l) => (l, last),
                None => (last, last),
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "inverted quantifier");
        pieces.push(PatternPiece {
            chars: class,
            lo,
            hi,
        });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = if p.lo == p.hi {
                p.lo
            } else {
                rng.usize_in(p.lo..p.hi + 1)
            };
            for _ in 0..n {
                out.push(p.chars[rng.usize_in(0..p.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { options }
}

/// Strategy choosing uniformly among alternatives.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config / errors / macros
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, one_of, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the current case, drawing fresh inputs instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy arms of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < cfg.cases {
                    $(let $arg = ($strat).gen_value(&mut rng);)+
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > 20 * cfg.cases + 1000 {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            let inputs: ::std::vec::Vec<::std::string::String> = vec![
                                $(format!("  {} = {:?}", stringify!($arg), &$arg)),+
                            ];
                            panic!(
                                "proptest {} failed at accepted case {}:\n{}\ninputs:\n{}",
                                stringify!($name),
                                accepted,
                                msg,
                                inputs.join("\n")
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".gen_value(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z][a-zA-Z0-9_]{0,6}".gen_value(&mut rng);
            assert!(!t.is_empty() && t.len() <= 7);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            let p = "[ -~\n]{0,120}".gen_value(&mut rng);
            assert!(p.len() <= 120);
            assert!(p.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            // Trailing '-' in a class is a literal.
            let d = "[a-c/-]{8}".gen_value(&mut rng);
            assert!(d.chars().all(|c| "abc/-".contains(c)));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let (a, b) = (1usize..5, -2.0f64..2.0).gen_value(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.gen_value(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn recursive_strategy_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn leaf_sum(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(b) => u64::from(*b),
                Tree::Node(v) => v.iter().map(leaf_sum).sum(),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(4);
        let mut max_seen = 0;
        let mut payload_sum = 0u64;
        for _ in 0..300 {
            let t = strat.gen_value(&mut rng);
            max_seen = max_seen.max(depth(&t));
            payload_sum += leaf_sum(&t);
        }
        assert!(max_seen >= 1, "recursion never taken");
        assert!(max_seen <= 3, "depth bound violated: {max_seen}");
        assert!(payload_sum > 0, "leaf payloads never populated");
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn self_hosted_addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_rejects_and_redraws(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0, "n = {n}");
        }
    }
}
