//! Offline shim for `parking_lot`: the `Mutex`/`Condvar` subset this
//! workspace uses, implemented over `std::sync` with parking_lot's
//! ergonomics — `lock()` returns the guard directly (a poisoned std lock
//! just hands back the inner guard: parking_lot has no lock poisoning),
//! and `Condvar::wait` takes `&mut MutexGuard`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(30));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
