//! Offline shim for the `rand` crate.
//!
//! Provides the exact API surface this workspace consumes: the
//! [`RngCore`]/[`Rng`] traits with `gen_range` over primitive ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! deterministic, statistically solid generator. It does **not**
//! reproduce upstream `rand`'s `StdRng` output stream (ChaCha12); all
//! in-tree consumers rely on per-seed determinism and statistical
//! quality only.

#![warn(missing_docs)]

use std::ops::Range;

/// Core random source: raw integer output.
pub trait RngCore {
    /// Next 32 bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is ≤ span/2^64 — negligible for the spans
                // used in this workspace (and irrelevant to its tests).
                let off = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(off)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Extension trait with the user-facing sampling helpers.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`rand`'s `gen_range`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)` (`rand`'s `gen::<f64>()` via `Standard`).
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix(&mut sm);
            }
            // All-zero state is the one forbidden state of xoshiro; the
            // SplitMix expansion cannot produce it, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
