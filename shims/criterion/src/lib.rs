//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! exposing the API surface the `bench` crate uses. It runs each closure
//! for a fixed measurement budget, reports mean time per iteration (and
//! throughput when configured), and prints one line per benchmark.
//!
//! No statistics, no HTML reports, no comparison with saved baselines —
//! just honest timings so `cargo bench` works offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            mean_ns: 0.0,
            iters: 0,
            budget,
        }
    }

    /// Time `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: one call, then scale batches.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let per_call = first.as_secs_f64();
        let budget = self.budget.as_secs_f64();
        let target_iters = ((budget / per_call) as u64).clamp(1, 1_000_000);

        let t0 = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        let total = t0.elapsed();
        self.iters = target_iters;
        self.mean_ns = total.as_nanos() as f64 / target_iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: these are smoke benchmarks, not publication runs.
        let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn run_one(
        &self,
        label: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        let mut line = format!(
            "bench {label:<48} {:>12}/iter  ({} iters)",
            human(b.mean_ns),
            b.iters
        );
        if let Some(tp) = throughput {
            let per_sec = match tp {
                Throughput::Bytes(n) => format!(
                    "{:.1} MiB/s",
                    n as f64 / (b.mean_ns * 1e-9) / (1024.0 * 1024.0)
                ),
                Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (b.mean_ns * 1e-9)),
            };
            line.push_str(&format!("  {per_sec}"));
        }
        println!("{line}");
    }

    /// Benchmark a single closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        self.criterion.run_one(&label, self.throughput, &mut f);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut g = |b: &mut Bencher| f(b, input);
        self.criterion.run_one(&label, self.throughput, &mut g);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declare a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("x", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("y", 4), &4usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
