//! Pinned golden prices for every chunked MC/LSM/Vasicek kernel.
//!
//! Each golden is the exact bit pattern (`f64::to_bits`) of the price a
//! kernel produces for a fixed `(model, option, config, chunk, lanes)`
//! tuple. The worker count is deliberately NOT part of the tuple — the
//! determinism contract says it can never change a bit — so every golden
//! is asserted at 1, 2 and 8 workers.
//!
//! ## Re-pin policy
//!
//! These constants may be rewritten ONLY when a PR intentionally changes
//! the sampling scheme (a different RNG-stream layout, a different draw
//! order), and at most once per such change. The lane goldens below were
//! pinned when the lane-ordered draw scheme was introduced: with
//! `lanes = L > 1` the normals of a chunk are consumed in
//! `(group, step, lane)` order instead of `(path, step)` order, which is
//! a different — equally valid — deterministic sample, so each supported
//! lane count owns its own golden. `lanes = 1` MUST keep matching the
//! pre-lane goldens forever: the scalar path is the pre-PR kernel,
//! byte for byte. A diff to any constant in this file is loud on
//! purpose; regenerate with
//!
//! ```text
//! cargo test -q --test kernel_goldens -- --ignored --nocapture regen
//! ```
//!
//! and justify the re-pin in the PR description.

use exec::ExecPolicy;
use pricing::methods::bond::mc_zcb_price_exec;
use pricing::methods::lsm::{lsm_basket_exec, lsm_heston_exec, lsm_vanilla_bs_exec, LsmConfig};
use pricing::methods::montecarlo::{
    mc_basket_exec, mc_heston_exec, mc_local_vol_exec, mc_vanilla_bs_exec, McConfig,
};
use pricing::models::{BlackScholes, Heston, LocalVol, MultiBlackScholes, Vasicek};
use pricing::options::{BasketOption, Vanilla};

/// Kernel names in table order.
const KERNELS: [&str; 8] = [
    "mc_vanilla_bs_exec",
    "mc_basket_exec",
    "mc_local_vol_exec",
    "mc_heston_exec",
    "mc_zcb_price_exec",
    "lsm_vanilla_bs_exec",
    "lsm_basket_exec",
    "lsm_heston_exec",
];

fn mc_cfg(paths: usize, time_steps: usize) -> McConfig {
    McConfig {
        paths,
        time_steps,
        antithetic: true,
        seed: 42,
    }
}

/// Price every kernel at the given policy, in [`KERNELS`] order.
fn prices(pol: &ExecPolicy) -> [f64; 8] {
    let bs = BlackScholes::new(100.0, 0.2, 0.05, 0.01);
    let call = Vanilla::european_call(100.0, 1.0);
    let mbs = MultiBlackScholes::new(4, 100.0, 0.2, 0.3, 0.05, 0.0);
    let bput = BasketOption::european_put(100.0, 1.0);
    let lv = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
    let hes = Heston::standard(100.0, 0.05);
    let vas = Vasicek::standard();
    let lsm_bs = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
    let aput = Vanilla::american_put(110.0, 1.0);
    let lsm_mbs = MultiBlackScholes::new(3, 100.0, 0.2, 0.3, 0.05, 0.0);
    let abput = BasketOption::american_put(100.0, 1.0);
    let lsm_cfg = LsmConfig {
        paths: 2_000,
        exercise_dates: 10,
        ..LsmConfig::default()
    };
    [
        mc_vanilla_bs_exec(&bs, &call, &mc_cfg(4_000, 1), pol).price,
        mc_basket_exec(&mbs, &bput, &mc_cfg(2_000, 1), pol).price,
        mc_local_vol_exec(&lv, &call, &mc_cfg(2_000, 16), pol).price,
        mc_heston_exec(&hes, &call, &mc_cfg(2_000, 16), pol).price,
        mc_zcb_price_exec(&vas, 2.0, &mc_cfg(2_000, 16), pol).price,
        lsm_vanilla_bs_exec(&lsm_bs, &aput, &lsm_cfg, pol).price,
        lsm_basket_exec(&lsm_mbs, &abput, &lsm_cfg, pol).price,
        lsm_heston_exec(&hes, &Vanilla::american_put(100.0, 1.0), &lsm_cfg, pol).price,
    ]
}

/// Golden bit patterns per lane count, in [`KERNELS`] order.
///
/// `GOLDEN_LANES1` is the pre-lane capture (the scalar kernels, byte for
/// byte). The lane tables were pinned when the lane kernels landed; note
/// the single-step kernels (`mc_vanilla_bs_exec`, `mc_basket_exec`)
/// consume draws in the same order at any lane count, so their lane
/// prices differ from scalar only by `mul_add` fusion — per-sample ulps
/// that happen to round to the same mean at these fixture sizes. The
/// path-dependent kernels consume draws in `(group, step, lane)` order
/// and own genuinely different goldens per lane count.
const GOLDEN_LANES1: [u64; 8] = [
    0x40233dec53a529b8, // mc_vanilla_bs_exec = 9.620943654929633
    0x4009f128eb7b315d, // mc_basket_exec = 3.242753829667136
    0x402694a100accd94, // mc_local_vol_exec = 11.290290852636453
    0x4024fb373666ef58, // mc_heston_exec = 10.490655613007831
    0x3fecf4c4add101f8, // mc_zcb_price_exec = 0.9048789400913497
    0x402eb4937f175afa, // lsm_vanilla_bs_exec = 15.35268780860996
    0x400fd65c54769848, // lsm_basket_exec = 3.9796682928745533
    0x4017a07d07ddda20, // lsm_heston_exec = 5.90672695437982
];

const GOLDEN_LANES4: [u64; 8] = [
    0x40233dec53a529b8, // mc_vanilla_bs_exec = 9.620943654929633
    0x4009f128eb7b315d, // mc_basket_exec = 3.242753829667136
    0x4026b778004aff32, // mc_local_vol_exec = 11.358337411074533
    0x4024af6a7e118443, // mc_heston_exec = 10.34260934795214
    0x3fecf4c7f47c16a9, // mc_zcb_price_exec = 0.9048805022327616
    0x402f79d482faa3d7, // lsm_vanilla_bs_exec = 15.737949460120872
    0x400f8e908573b883, // lsm_basket_exec = 3.9446115899982614
    0x40171440cf472a25, // lsm_heston_exec = 5.769778479307694
];

const GOLDEN_LANES8: [u64; 8] = [
    0x40233dec53a529b8, // mc_vanilla_bs_exec = 9.620943654929633
    0x4009f128eb7b315d, // mc_basket_exec = 3.242753829667136
    0x402666e8ae35edfe, // mc_local_vol_exec = 11.200993961413584
    0x4024770da4efffd3, // mc_heston_exec = 10.232525972649375
    0x3fecf4c187f9b93e, // mc_zcb_price_exec = 0.9048774390956067
    0x402f3e2c215acbbc, // lsm_vanilla_bs_exec = 15.62143043740604
    0x40102ff2ceb3869e, // lsm_basket_exec = 4.046824674327267
    0x401799ae0e0828df, // lsm_heston_exec = 5.90007802891543
];

fn golden(lanes: usize) -> &'static [u64; 8] {
    match lanes {
        1 => &GOLDEN_LANES1,
        4 => &GOLDEN_LANES4,
        8 => &GOLDEN_LANES8,
        other => panic!("no golden table for lane width {other}"),
    }
}

/// One-time regeneration helper (see the re-pin policy above).
#[test]
#[ignore]
fn regen() {
    for lanes in [1usize, 4, 8] {
        let p = prices(&ExecPolicy::new(1).lanes(lanes));
        println!("// lanes = {lanes}");
        for (name, v) in KERNELS.iter().zip(p) {
            println!("    0x{:016x}, // {name} = {v}", v.to_bits());
        }
    }
}

#[test]
fn goldens_hold_at_every_worker_count_and_lane_count() {
    for lanes in [1usize, 4, 8] {
        let want = golden(lanes);
        for w in [1usize, 2, 8] {
            let p = prices(&ExecPolicy::new(w).lanes(lanes));
            for ((name, v), want) in KERNELS.iter().zip(p).zip(want) {
                assert_eq!(
                    v.to_bits(),
                    *want,
                    "{name}: lanes={lanes} workers={w} drifted: got {v} ({:#018x})",
                    v.to_bits()
                );
            }
        }
    }
}

#[test]
fn path_dependent_lane_goldens_are_distinct_per_lane_count() {
    // Kernels whose draw order changes with the lane width (everything
    // past the two single-step samplers) must own distinct goldens.
    for k in 2..8 {
        assert_ne!(
            GOLDEN_LANES1[k], GOLDEN_LANES4[k],
            "{}: lanes=4 golden equals scalar",
            KERNELS[k]
        );
        assert_ne!(
            GOLDEN_LANES1[k], GOLDEN_LANES8[k],
            "{}: lanes=8 golden equals scalar",
            KERNELS[k]
        );
        assert_ne!(
            GOLDEN_LANES4[k], GOLDEN_LANES8[k],
            "{}: lanes=4 and lanes=8 goldens coincide",
            KERNELS[k]
        );
    }
}
