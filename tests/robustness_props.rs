//! Property-based robustness tests across the substrates: the interpreter
//! must never panic on arbitrary input, the farm must account for every
//! job under arbitrary topologies, and the pricing kernels must satisfy
//! no-arbitrage monotonicities across their whole parameter domains.

use proptest::prelude::*;

// ---------------------------------------------------------------------------
// nsplang: parser/interpreter never panic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interpreter_never_panics_on_garbage(src in "[ -~\\n]{0,120}") {
        // Arbitrary printable text: must lex/parse/run to Ok or Err,
        // never panic.
        let mut interp = nsplang::Interp::new();
        let _ = interp.run(&src);
    }

    #[test]
    fn interpreter_never_panics_on_plausible_programs(
        name in "[a-z]{1,6}",
        n in 0.0f64..1e6,
        m in 1u32..20,
    ) {
        // A generated identifier can collide with a language keyword
        // (`if`, `for`, ...) or shadow a builtin used by the program
        // below (`list`, `k`); assigning to those is a legitimate parse
        // or runtime error, not the panic this property is hunting.
        prop_assume!(!matches!(
            name.as_str(),
            "if" | "then" | "else" | "elseif" | "end" | "while" | "for"
                | "do" | "break" | "continue" | "return" | "function"
                | "endfunction" | "list" | "k"
        ));
        let src = format!(
            "{name} = {n}\nfor k = 1:{m} do\n {name} = {name} + k\nend\nL = list({name})\nS = serialize(L)\nB = S.unserialize[]\nok = B.equal[L]"
        );
        let mut interp = nsplang::Interp::new();
        let r = interp.run(&src);
        prop_assert!(r.is_ok(), "{r:?}");
        prop_assert_eq!(
            interp.get_bool("ok"),
            Some(true)
        );
    }
}

// ---------------------------------------------------------------------------
// pricing: no-arbitrage properties over the parameter domain
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn bs_call_monotone_in_strike_and_bounded(
        spot in 10.0f64..500.0,
        sigma in 0.01f64..1.5,
        rate in -0.02f64..0.15,
        t in 0.05f64..10.0,
        k1 in 10.0f64..500.0,
        dk in 1.0f64..100.0,
    ) {
        use pricing::methods::closed_form::bs_price;
        use pricing::models::BlackScholes;
        use pricing::options::Vanilla;
        let m = BlackScholes::new(spot, sigma, rate, 0.0);
        let c1 = bs_price(&m, &Vanilla::european_call(k1, t)).price;
        let c2 = bs_price(&m, &Vanilla::european_call(k1 + dk, t)).price;
        // Monotone decreasing in strike; bounded by spot; non-negative.
        prop_assert!(c2 <= c1 + 1e-9);
        prop_assert!(c1 <= spot + 1e-9);
        prop_assert!(c2 >= 0.0);
        // Strike-spread bound: 0 ≤ C(K) − C(K+dK) ≤ dK·e^{-rT}.
        prop_assert!(c1 - c2 <= dk * (-rate * t).exp() + 1e-9);
    }

    #[test]
    fn bs_put_call_parity_everywhere(
        spot in 10.0f64..500.0,
        sigma in 0.01f64..1.5,
        rate in -0.02f64..0.15,
        div in 0.0f64..0.08,
        k in 10.0f64..500.0,
        t in 0.05f64..10.0,
    ) {
        use pricing::methods::closed_form::bs_price;
        use pricing::models::BlackScholes;
        use pricing::options::Vanilla;
        let m = BlackScholes::new(spot, sigma, rate, div);
        let c = bs_price(&m, &Vanilla::european_call(k, t)).price;
        let p = bs_price(&m, &Vanilla::european_put(k, t)).price;
        let forward = spot * (-div * t).exp() - k * (-rate * t).exp();
        prop_assert!((c - p - forward).abs() < 1e-8 * spot.max(k));
    }

    #[test]
    fn barrier_dominated_by_vanilla_everywhere(
        spot in 90.0f64..300.0,
        sigma in 0.05f64..0.9,
        k_frac in 0.5f64..1.5,
        h_frac in 0.3f64..0.99,
        t in 0.1f64..5.0,
    ) {
        use pricing::methods::closed_form::{bs_price, down_out_call_price};
        use pricing::models::BlackScholes;
        use pricing::options::{Barrier, Vanilla};
        let m = BlackScholes::new(spot, sigma, 0.05, 0.0);
        let k = spot * k_frac;
        let h = (spot * h_frac).min(k); // closed form needs H ≤ K, H < S
        let dob = down_out_call_price(&m, &Barrier::down_out_call(k, h, t));
        let vanilla = bs_price(&m, &Vanilla::european_call(k, t)).price;
        prop_assert!(dob >= -1e-12);
        prop_assert!(dob <= vanilla + 1e-9, "dob {dob} vanilla {vanilla}");
    }

    #[test]
    fn implied_vol_inverts_for_arbitrary_market(
        spot in 50.0f64..200.0,
        sigma in 0.05f64..1.0,
        k_frac in 0.7f64..1.3,
        t in 0.1f64..5.0,
    ) {
        use pricing::methods::closed_form::bs_price;
        use pricing::methods::implied::implied_vol;
        use pricing::models::BlackScholes;
        use pricing::options::Vanilla;
        let m = BlackScholes::new(spot, sigma, 0.03, 0.01);
        let opt = Vanilla::european_call(spot * k_frac, t);
        let price = bs_price(&m, &opt).price;
        let lower = (spot * (-0.01f64 * t).exp()
            - opt.strike * (-0.03f64 * t).exp())
        .max(0.0);
        prop_assume!(price > 1e-4 && price - lower > 1e-4);
        let iv = implied_vol(&m, &opt, price).unwrap();
        prop_assert!((iv - sigma).abs() < 1e-4, "σ {sigma} recovered {iv}");
    }

    #[test]
    fn vasicek_bond_prices_are_discount_factors(
        r0 in -0.01f64..0.15,
        kappa in 0.05f64..3.0,
        theta in 0.0f64..0.12,
        sigma in 0.001f64..0.03,
        t in 0.1f64..30.0,
    ) {
        use pricing::models::Vasicek;
        let m = Vasicek::new(r0, kappa, theta, sigma);
        let p = m.zcb_price(t);
        prop_assert!(p > 0.0, "P {p}");
        // For non-pathological parameters the bond stays below the
        // zero-rate bound only when rates are positive.
        if r0 > 0.0 && theta > sigma * sigma / (2.0 * kappa * kappa) {
            prop_assert!(p < 1.05, "P {p} with positive rates");
        }
    }
}

// ---------------------------------------------------------------------------
// farm: completeness under arbitrary topology
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn farm_accounts_for_every_job(
        jobs in 1usize..30,
        slaves in 1usize..6,
        strategy_idx in 0usize..3,
    ) {
        use farm::portfolio::{save_portfolio, toy_portfolio};
        use farm::{run, FarmConfig, Transmission};
        let strategy = Transmission::ALL[strategy_idx];
        let dir = std::env::temp_dir().join(format!(
            "prop_farm_{jobs}_{slaves}_{strategy_idx}"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let portfolio = toy_portfolio(jobs);
        let files = save_portfolio(&portfolio, &dir).unwrap();
        let report = run(&files, &FarmConfig::new(slaves, strategy)).unwrap();
        prop_assert_eq!(report.completed(), jobs);
        let mut seen = vec![false; jobs];
        for o in &report.outcomes {
            prop_assert!(!seen[o.job], "job {} twice", o.job);
            seen[o.job] = true;
            prop_assert!(o.slave >= 1 && o.slave <= slaves);
        }
        prop_assert!(seen.iter().all(|&s| s));
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// minimpi: arbitrary message schedules deliver exactly once, in per-pair
// FIFO order
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn message_delivery_is_exactly_once_and_pairwise_fifo(
        payload_sizes in proptest::collection::vec(0usize..200, 1..25),
    ) {
        use minimpi::{World, ANY_SOURCE};
        let n = payload_sizes.len();
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                for (i, &sz) in payload_sizes.iter().enumerate() {
                    let mut msg = vec![0u8; sz + 4];
                    msg[..4].copy_from_slice(&(i as u32).to_be_bytes());
                    comm.send(&msg, 1, 5).unwrap();
                }
                Vec::new()
            } else {
                let mut seq = Vec::with_capacity(n);
                for _ in 0..n {
                    let (bytes, st) = comm.recv(ANY_SOURCE, 5).unwrap();
                    assert!(bytes.len() >= 4);
                    seq.push(u32::from_be_bytes([
                        bytes[0], bytes[1], bytes[2], bytes[3],
                    ]));
                    assert_eq!(st.src, 0);
                }
                seq
            }
        });
        // Same-pair same-tag messages arrive in send order.
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(&out[1], &expect);
    }
}
