//! Transport conformance suite: every behavioural promise of the
//! [`transport::Transport`] trait, proven against *both* shipped
//! backends through one shared harness:
//!
//! * the in-process [`transport::ChannelTransport`] (threads sharing
//!   condvar-guarded mailboxes), and
//! * the multi-process wire protocol of [`transport::UdsTransport`] —
//!   exercised here as a full Unix-domain-socket mesh inside one
//!   process (the trait makes no distinction; `minimpi::ProcessWorld`
//!   and `tests/shard_parity.rs` cover the spawned-children topology).
//!
//! The contract under test: ordered pairwise delivery, readiness-based
//! timed receives (deadline expiry without a hot loop, prompt wake-up
//! on arrival), identical truncation and kill fault surfaces, and
//! large-frame (> 64 KiB) roundtrips.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use transport::{ChannelGroup, Frame, Payload, Transport, TransportError, UdsTransport};

/// One fully connected group per backend, as trait objects so every
/// scenario runs verbatim against both.
fn backends(size: usize, tag: &str) -> Vec<(&'static str, Vec<Arc<dyn Transport>>)> {
    let group = ChannelGroup::new(size);
    let channel: Vec<Arc<dyn Transport>> = (0..size)
        .map(|r| Arc::new(group.endpoint(r)) as Arc<dyn Transport>)
        .collect();

    let dir = std::env::temp_dir().join(format!("transport_conf_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `connect` blocks until the mesh is complete, so all ranks dial in
    // parallel.
    let handles: Vec<_> = (0..size)
        .map(|r| {
            let dir = dir.clone();
            thread::spawn(move || UdsTransport::connect(&dir, r, size).expect("uds connect"))
        })
        .collect();
    let uds: Vec<Arc<dyn Transport>> = handles
        .into_iter()
        .map(|h| Arc::new(h.join().expect("uds connect thread")) as Arc<dyn Transport>)
        .collect();
    vec![("channel", channel), ("uds", uds)]
}

fn owned(src: usize, tag: i32, bytes: Vec<u8>) -> Frame {
    Frame::new(src, tag, Payload::Owned(bytes))
}

/// Spin (with sleeps) until `cond` holds — kill propagation on the
/// socket backend rides control frames, so it is eventually-consistent
/// where the channel backend is immediate.
fn wait_until(cond: impl Fn() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn delivery_is_ordered_per_pair_even_with_two_senders() {
    for (name, t) in backends(3, "ordered") {
        let recv = Arc::clone(&t[0]);
        let senders: Vec<_> = [1usize, 2]
            .into_iter()
            .map(|r| {
                let ep = Arc::clone(&t[r]);
                thread::spawn(move || {
                    for i in 0..100u8 {
                        ep.send(0, owned(r, 7, vec![r as u8, i])).expect("send");
                    }
                })
            })
            .collect();
        // Selective receives per source must see each sender's sequence
        // in send order, however the two streams interleave on the wire.
        for src in [1i32, 2] {
            for i in 0..100u8 {
                let f = recv
                    .match_deadline(src, 7, None, true)
                    .expect("recv")
                    .expect("no deadline set");
                assert_eq!(f.src, src as usize, "{name}: wrong source");
                assert_eq!(
                    f.payload.as_slice(),
                    &[src as u8, i],
                    "{name}: source {src} out of order at {i}"
                );
            }
        }
        for s in senders {
            s.join().unwrap();
        }
    }
}

#[test]
fn timed_receive_expires_and_wakes_on_arrival() {
    for (name, t) in backends(2, "timed") {
        // Expiry: an empty mailbox returns Ok(None) at the deadline.
        let t0 = Instant::now();
        let got = t[0]
            .match_deadline(1, 3, Some(t0 + Duration::from_millis(60)), true)
            .expect("deadline wait");
        assert!(got.is_none(), "{name}: phantom frame");
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(55),
            "{name}: woke {waited:?} before the deadline"
        );

        // Readiness: a frame posted mid-wait wakes the receiver long
        // before a generous deadline — no polling interval to ride out.
        let sender = Arc::clone(&t[1]);
        let poster = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            sender.send(0, owned(1, 3, vec![9])).expect("send");
        });
        let t1 = Instant::now();
        let f = t[0]
            .match_deadline(1, 3, Some(t1 + Duration::from_secs(5)), true)
            .expect("recv")
            .expect("frame must arrive");
        let latency = t1.elapsed();
        assert_eq!(f.payload.as_slice(), &[9]);
        assert!(
            latency < Duration::from_millis(1500),
            "{name}: wake-up took {latency:?} — receiver is polling, not readiness-driven"
        );
        poster.join().unwrap();
    }
}

#[test]
fn truncated_frames_surface_identically_and_can_be_discarded() {
    for (name, t) in backends(2, "trunc") {
        // A frame advertising 64 bytes but carrying 8 (the fault layer's
        // in-flight truncation shape; the socket backend ships it short
        // with the true advertised length).
        let mut f = owned(1, 4, vec![0xab; 64]);
        f.payload.truncate(8);
        assert!(f.truncated());
        t[1].send(0, f).expect("send truncated");
        t[1].send(0, owned(1, 4, vec![1, 2, 3])).expect("send intact");

        // A consuming match refuses the damaged frame but leaves it
        // queued: a probe still sees it first.
        let err = match t[0].match_deadline(1, 4, Some(Instant::now() + Duration::from_secs(5)), true)
        {
            Err(e) => e,
            Ok(Some(f)) => panic!("{name}: consumed a truncated frame: {f:?}"),
            Ok(None) => panic!("{name}: truncated frame never arrived"),
        };
        match err {
            TransportError::Truncated { needed, capacity } => {
                assert_eq!((needed, capacity), (64, 8), "{name}");
            }
            other => panic!("{name}: expected Truncated, got {other}"),
        }
        let probe = t[0].try_match(1, 4).expect("probe").expect("still queued");
        assert_eq!(probe.full_len, 64, "{name}: probe must see the damaged frame");

        // Discard removes it; the intact frame behind it is received.
        assert!(t[0].discard(1, 4).expect("discard"), "{name}");
        let f = t[0]
            .match_deadline(1, 4, Some(Instant::now() + Duration::from_secs(5)), true)
            .expect("recv intact")
            .expect("intact frame present");
        assert_eq!(f.payload.as_slice(), &[1, 2, 3], "{name}");
    }
}

#[test]
fn kill_fails_senders_fast_and_wakes_the_victim() {
    for (name, t) in backends(3, "kill") {
        // The victim blocks in a long timed wait; the kill must wake it
        // with an error, not let it ride out the deadline.
        let victim = Arc::clone(&t[1]);
        let blocked = thread::spawn(move || {
            victim.match_deadline(
                transport::ANY_SOURCE,
                transport::ANY_TAG,
                Some(Instant::now() + Duration::from_secs(30)),
                true,
            )
        });
        thread::sleep(Duration::from_millis(20));
        t[0].kill(1);

        let woke = blocked.join().expect("victim thread");
        assert!(
            woke.is_err(),
            "{name}: killed rank's wait returned {woke:?} instead of failing"
        );
        // Death is observed group-wide (asynchronously on the socket
        // backend), after which sends fail fast.
        for rank in [0usize, 2] {
            let ep = Arc::clone(&t[rank]);
            wait_until(|| ep.is_dead(1), "death visibility");
            match ep.send(1, owned(rank, 5, vec![0])) {
                Err(TransportError::Dead(1)) => {}
                other => panic!("{name}: send to dead rank returned {other:?}"),
            }
        }
        assert!(!t[0].is_dead(0) && !t[0].is_dead(2), "{name}: overkill");
    }
}

#[test]
fn large_frames_roundtrip_bit_for_bit() {
    const LEN: usize = 256 * 1024; // well past any 64 KiB socket buffer
    for (name, t) in backends(2, "large") {
        let pattern: Vec<u8> = (0..LEN).map(|i| (i * 31 % 251) as u8).collect();
        let echo = Arc::clone(&t[1]);
        let bouncer = thread::spawn(move || {
            let f = echo
                .match_deadline(0, 6, Some(Instant::now() + Duration::from_secs(10)), true)
                .expect("echo recv")
                .expect("echo frame");
            assert!(!f.truncated());
            echo.send(0, Frame::new(1, 6, f.payload)).expect("echo send");
        });
        t[0].send(1, owned(0, 6, pattern.clone())).expect("send");
        let back = t[0]
            .match_deadline(1, 6, Some(Instant::now() + Duration::from_secs(10)), true)
            .expect("recv")
            .expect("round trip");
        assert_eq!(back.full_len, LEN, "{name}");
        assert_eq!(back.payload.as_slice(), &pattern[..], "{name}: bytes differ");
        bouncer.join().unwrap();
    }
}

#[test]
fn shared_payload_fanout_copies_only_off_process() {
    for (name, t) in backends(3, "shared") {
        let blob = Arc::new(vec![0x42u8; 4096]);
        for dest in [1usize, 2] {
            t[0].send(
                dest,
                Frame::new(0, 8, Payload::Shared(Arc::clone(&blob))),
            )
            .expect("fan-out send");
        }
        for dest in [1usize, 2] {
            let f = t[dest]
                .match_deadline(0, 8, Some(Instant::now() + Duration::from_secs(5)), true)
                .expect("recv")
                .expect("fan-out frame");
            assert_eq!(f.payload.as_slice(), &blob[..], "{name}");
        }
        // The channel backend must declare (and deliver) zero-copy
        // semantics; the wire backend must not pretend to.
        if name == "channel" {
            assert!(t[0].shares_memory(), "{name}");
            // 1 live ref here + 2 consumed receivers dropped theirs.
            assert_eq!(Arc::strong_count(&blob), 1, "{name}: fan-out copied");
        } else {
            assert!(!t[0].shares_memory(), "{name}");
        }
    }
}
