//! Integration: the long-lived pricing service (`serve::Session`).
//!
//! Three contracts, end to end:
//!
//! * concurrent submitters get **bit-identical** prices to a one-shot
//!   `farm::run` over the same portfolio;
//! * a second identical request is served **from the memo** — zero
//!   fresh `Compute` events on the slaves;
//! * a slave killed mid-request still leaves **every admitted ticket
//!   answered exactly once** (the supervised scheduler re-dispatches).

use riskbench::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A session config with test-scale supervision timings.
fn quick_config(slaves: usize) -> ServeConfig {
    ServeConfig::new(slaves)
        .job_deadline(Duration::from_millis(500))
        .poll(Duration::from_millis(5))
}

fn toy_problems(count: usize) -> Vec<PremiaProblem> {
    toy_portfolio(count)
        .into_iter()
        .map(|j| j.problem)
        .collect()
}

// ---------------------------------------------------------------------------
// Bit-identical to the one-shot farm
// ---------------------------------------------------------------------------

#[test]
fn concurrent_submitters_match_one_shot_farm_bit_for_bit() {
    let count = 24;
    let jobs = toy_portfolio(count);

    // Ground truth: the one-shot farm over the same portfolio.
    let dir = std::env::temp_dir().join("it_serve_vs_farm");
    let _ = std::fs::remove_dir_all(&dir);
    let files = save_portfolio(&jobs, &dir).unwrap();
    let farm_report = run(&files, &FarmConfig::new(3, Transmission::SerializedLoad)).unwrap();
    let mut expected = vec![0u64; count];
    for o in &farm_report.outcomes {
        expected[o.job] = o.price.to_bits();
    }
    std::fs::remove_dir_all(&dir).ok();

    // The service: four submitter threads, six problems each.
    let session = Session::start(quick_config(3)).unwrap();
    let problems: Vec<PremiaProblem> = jobs.into_iter().map(|j| j.problem).collect();
    std::thread::scope(|scope| {
        let session = &session;
        let problems = &problems;
        let expected = &expected;
        for t in 0..4 {
            scope.spawn(move || {
                let slice: Vec<PremiaProblem> = problems[t * 6..(t + 1) * 6].to_vec();
                let ticket = session.submit(Request::new(slice)).unwrap();
                let response = ticket.wait().unwrap();
                assert!(response.all_priced(), "{:?}", response.results);
                for (i, r) in response.results.iter().enumerate() {
                    let priced = r.as_ref().unwrap();
                    assert_eq!(
                        priced.price.to_bits(),
                        expected[t * 6 + i],
                        "submitter {t} problem {i} differs from the one-shot farm"
                    );
                }
            });
        }
    });
    let report = session.shutdown().unwrap();
    assert_eq!(report.answered, 4);
    assert_eq!(report.failed, 0);
    // Every problem priced at most once; coalescing may have shaved
    // duplicates if toy portfolios repeat parameters.
    assert!(report.computed as usize <= count);
    assert_eq!(report.computed + report.memo_hits, count as u64);
}

// ---------------------------------------------------------------------------
// Mixed-class requests: the new workload classes flow through the service
// ---------------------------------------------------------------------------

#[test]
fn mixed_class_request_prices_every_workload_class_bit_for_bit() {
    // One representative of every job class — including the extension
    // classes (Bermudan max-call LSM, BSDE Picard, XVA/CVA) — in a
    // single request. The session must price each bit-identically to an
    // in-process compute of the same problem.
    let jobs: Vec<PortfolioJob> = JobClass::ALL
        .iter()
        .map(|&c| representative_problem(c, PortfolioScale::Quick))
        .collect();
    let expected: Vec<u64> = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price.to_bits())
        .collect();
    let mix = farm::workload::Workload::batch(jobs.clone()).class_mix();
    assert_eq!(mix.len(), JobClass::ALL.len(), "one of each class: {mix:?}");

    let session = Session::start(quick_config(3).job_deadline(Duration::from_secs(30))).unwrap();
    let problems: Vec<PremiaProblem> = jobs.into_iter().map(|j| j.problem).collect();
    let response = session
        .submit(Request::new(problems))
        .unwrap()
        .wait()
        .unwrap();
    assert!(response.all_priced(), "{:?}", response.results);
    for ((i, r), want) in response.results.iter().enumerate().zip(&expected) {
        assert_eq!(
            r.as_ref().unwrap().price.to_bits(),
            *want,
            "class {:?} priced differently through the service",
            JobClass::ALL[i]
        );
    }
    let report = session.shutdown().unwrap();
    assert_eq!(report.answered, 1);
    assert_eq!(report.failed, 0);
}

// ---------------------------------------------------------------------------
// Memoisation: the second identical request computes nothing
// ---------------------------------------------------------------------------

#[test]
fn identical_request_is_served_from_memo_without_compute() {
    let rec = Arc::new(Recorder::new(4));
    let session = Session::start(quick_config(3).recorder(rec.clone())).unwrap();
    let problems = toy_problems(8);

    let first = session
        .submit(Request::new(problems.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(first.all_priced());
    let computes_after_first = rec
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Compute)
        .count();
    assert!(computes_after_first > 0, "first wave must compute");

    let second = session
        .submit(Request::new(problems.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(second.all_priced());
    assert_eq!(
        second.memoised_count(),
        problems.len(),
        "every problem of the repeat must come from the memo"
    );
    // Bit-identical to the fresh answers.
    for (a, b) in first.results.iter().zip(&second.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_eq!(a.std_error.map(f64::to_bits), b.std_error.map(f64::to_bits));
    }

    let computes_after_second = rec
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Compute)
        .count();
    assert_eq!(
        computes_after_second, computes_after_first,
        "the repeat request must trigger zero fresh Compute events"
    );

    let report = session.shutdown().unwrap();
    assert_eq!(report.answered, 2);
    assert!(report.memo_hits >= problems.len() as u64);
    assert!(report.memo.hits >= problems.len() as u64);
}

// ---------------------------------------------------------------------------
// SLO surface: Enqueue/Admit/MemoHit land in the breakdown
// ---------------------------------------------------------------------------

#[test]
fn breakdown_reports_request_percentiles_and_memo_hits() {
    let rec = Arc::new(Recorder::new(3));
    let session = Session::start(quick_config(2).recorder(rec.clone())).unwrap();
    let problems = toy_problems(5);
    for _ in 0..3 {
        let r = session
            .submit(Request::new(problems.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.all_priced());
    }
    session.shutdown().unwrap();

    let b = Breakdown::from_events(&rec.events());
    assert_eq!(b.request_count(), 3);
    assert!(b.request_p50_s() > 0.0);
    assert!(b.request_p99_s() >= b.request_p50_s());
    assert!(b.memo_hits() >= 10, "waves 2 and 3 hit the memo");
    assert!(b.memo_hit_rate() > 0.0);
}

// ---------------------------------------------------------------------------
// Backpressure: typed shed, no blocking, nothing left unanswered
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_typed_error_and_answers_all_admitted() {
    // One slave, a queue of two, strict priority shares: class 1 may
    // hold one slot, so the second class-1 submission sheds while its
    // predecessor is still queued or in flight.
    let session = Session::start(
        quick_config(1)
            .queue_depth(2)
            .priorities(2)
            .inflight_bytes(1 << 20),
    )
    .unwrap();
    let problems = toy_problems(4);

    let mut tickets = Vec::new();
    let mut sheds = 0usize;
    for _ in 0..12 {
        match session.submit(Request::new(problems.clone()).priority(1)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded {
                priority,
                depth_limit,
                ..
            }) => {
                assert_eq!(priority, 1);
                assert_eq!(depth_limit, 1);
                sheds += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(!tickets.is_empty(), "some requests must be admitted");

    // Every admitted ticket is answered exactly once.
    for t in tickets {
        let r = t.wait().unwrap();
        assert!(r.all_priced(), "{:?}", r.results);
    }
    let report = session.shutdown().unwrap();
    if sheds > 0 {
        assert!(report.shed > 0, "sheds must surface in the report");
    }

    // Priority 0 keeps the full queue share even when class 1 sheds.
    let session = Session::start(quick_config(1).queue_depth(2).priorities(2)).unwrap();
    let urgent = session
        .submit(Request::new(toy_problems(2)).priority(0))
        .unwrap();
    assert!(urgent.wait().unwrap().all_priced());
    session.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Fault tolerance: a mid-request slave kill loses no ticket
// ---------------------------------------------------------------------------

#[test]
fn slave_killed_mid_request_still_answers_every_ticket_once() {
    // Ground truth prices, computed serially.
    let problems = toy_problems(12);
    let expected: Vec<u64> = problems
        .iter()
        .map(|p| p.compute().unwrap().price.to_bits())
        .collect();

    // Kill slave rank 2 a few MPI operations in — mid-portfolio. The
    // resident slave cycle is exactly 2 ops (recv job, send answer), so
    // op 5 lands on the answer send of its 3rd job: the job is already
    // dispatched to the rank when it dies, forcing a deadline requeue,
    // and the slave cannot die idle at a recv that might otherwise be
    // the shutdown sentinel.
    let plan = Arc::new(FaultPlan::new(0xC0FFEE).kill_rank_at_op(2, 5));
    let session = Session::start(
        quick_config(3)
            .fault_plan(plan)
            .job_deadline(Duration::from_millis(150)),
    )
    .unwrap();

    let mut tickets = Vec::new();
    for chunk in problems.chunks(4) {
        tickets.push(session.submit(Request::new(chunk.to_vec())).unwrap());
    }
    let mut responses = Vec::new();
    for t in tickets {
        responses.push(t.wait().unwrap());
    }
    let report = session.shutdown().unwrap();

    // Exactly one response per ticket, every problem priced, all
    // bit-identical to serial despite the death and re-dispatches.
    assert_eq!(responses.len(), 3);
    for (ri, r) in responses.iter().enumerate() {
        assert!(r.all_priced(), "request {ri}: {:?}", r.results);
        for (pi, res) in r.results.iter().enumerate() {
            assert_eq!(
                res.as_ref().unwrap().price.to_bits(),
                expected[ri * 4 + pi],
                "request {ri} problem {pi} differs from serial after the kill"
            );
        }
    }
    assert_eq!(report.answered, 3);
    assert_eq!(report.failed, 0);
    assert!(
        report.dead_slaves.contains(&2),
        "the killed slave must be reported dead: {:?}",
        report.dead_slaves
    );
}

// ---------------------------------------------------------------------------
// API edges
// ---------------------------------------------------------------------------

#[test]
fn empty_and_out_of_range_requests_are_rejected_up_front() {
    let session = Session::start(quick_config(1)).unwrap();
    assert!(matches!(
        session.submit(Request::new(Vec::new())),
        Err(ServeError::EmptyRequest)
    ));
    assert!(matches!(
        session.submit(Request::new(toy_problems(1)).priority(9)),
        Err(ServeError::InvalidPriority {
            priority: 9,
            classes: 3
        })
    ));
    session.shutdown().unwrap();
}

#[test]
fn invalid_config_collects_every_bad_field() {
    let Err(err) = Session::start(ServeConfig::new(0).queue_depth(0).threads(0)) else {
        panic!("invalid config must be rejected");
    };
    match err {
        ServeError::Config(issues) => {
            for field in ["slaves", "queue_depth", "threads"] {
                assert!(issues.has(field), "missing {field}: {issues}");
            }
        }
        other => panic!("expected Config error, got {other}"),
    }
}
