//! Integration tests of the portfolio generators and the pricing layer:
//! the §4.3 composition, financial sanity of the produced prices, and
//! XDR persistence of whole portfolios.

use riskbench::prelude::*;

#[test]
fn full_realistic_portfolio_counts() {
    let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
    assert_eq!(jobs.len(), 7931);
    let count = |c: JobClass| jobs.iter().filter(|j| j.class == c).count();
    assert_eq!(count(JobClass::VanillaClosedForm), 1952);
    assert_eq!(count(JobClass::BarrierPde), 1952);
    assert_eq!(count(JobClass::BasketMc), 525);
    assert_eq!(count(JobClass::LocalVolMc), 1025);
    assert_eq!(count(JobClass::AmericanPde), 1952);
    assert_eq!(count(JobClass::AmericanBasketLsm), 525);
}

#[test]
fn vanilla_grid_matches_paper_description() {
    // §4.3: "maturities quarterly distributed between 4 months and 8
    // years and strikes uniformly varying between 70% and 130% of the
    // spot price with a step of 1%".
    let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
    let vanillas: Vec<_> = jobs
        .iter()
        .filter(|j| j.class == JobClass::VanillaClosedForm)
        .collect();
    let strikes: std::collections::BTreeSet<i64> = vanillas
        .iter()
        .map(|j| (j.problem.option.strike() * 100.0).round() as i64)
        .collect();
    assert_eq!(strikes.len(), 61);
    assert_eq!(*strikes.iter().next().unwrap(), 7000); // 70% of 100
    assert_eq!(*strikes.iter().last().unwrap(), 13000); // 130%
    let maturities: std::collections::BTreeSet<i64> = vanillas
        .iter()
        .map(|j| (j.problem.option.maturity() * 1200.0).round() as i64)
        .collect();
    assert_eq!(maturities.len(), 32);
    assert_eq!(*maturities.iter().next().unwrap(), 400); // 4 months
}

#[test]
fn financial_sanity_across_one_maturity_slice() {
    // Within one maturity, vanilla call prices must decrease in strike,
    // and each barrier (down-out) price must not exceed its vanilla.
    let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
    let t = 1.0 / 3.0; // the 4-month slice
    let mut calls: Vec<(f64, f64)> = jobs
        .iter()
        .filter(|j| {
            j.class == JobClass::VanillaClosedForm && (j.problem.option.maturity() - t).abs() < 1e-9
        })
        .map(|j| {
            (
                j.problem.option.strike(),
                j.problem.compute().unwrap().price,
            )
        })
        .collect();
    calls.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert_eq!(calls.len(), 61);
    for w in calls.windows(2) {
        assert!(
            w[1].1 <= w[0].1 + 1e-9,
            "call price not decreasing in strike: {w:?}"
        );
    }
    // Barrier ≤ vanilla for matching contracts.
    for j in jobs
        .iter()
        .filter(|j| {
            j.class == JobClass::BarrierPde && (j.problem.option.maturity() - t).abs() < 1e-9
        })
        .take(10)
    {
        let k = j.problem.option.strike();
        let vanilla = calls
            .iter()
            .find(|(s, _)| (s - k).abs() < 1e-9)
            .expect("matching vanilla")
            .1;
        let b = j.problem.compute().unwrap().price;
        // Quick-scale PDE carries discretisation error; allow a small
        // tolerance on the dominance check.
        assert!(
            b <= vanilla + 0.05,
            "barrier {b} above vanilla {vanilla} at strike {k}"
        );
    }
}

#[test]
fn american_puts_dominate_intrinsic() {
    let jobs = realistic_portfolio(PortfolioScale::Quick, 97);
    for j in jobs.iter().filter(|j| j.class == JobClass::AmericanPde) {
        let price = j.problem.compute().unwrap().price;
        let intrinsic = (j.problem.option.strike() - 100.0).max(0.0);
        assert!(
            price >= intrinsic - 0.05,
            "American put below intrinsic: {} < {} (strike {})",
            price,
            intrinsic,
            j.problem.option.strike()
        );
    }
}

#[test]
fn portfolio_files_round_trip_en_masse() {
    let dir = std::env::temp_dir().join("it_portfolio_files");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = realistic_portfolio(PortfolioScale::Quick, 61);
    let files = save_portfolio(&jobs, &dir).unwrap();
    assert_eq!(files.len(), jobs.len());
    for (job, file) in jobs.iter().zip(&files) {
        let v = riskbench::xdrser::load(file).unwrap();
        assert_eq!(PremiaProblem::from_value(&v).unwrap(), job.problem);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn toy_portfolio_is_the_table2_workload() {
    let jobs = toy_portfolio(10_000);
    assert_eq!(jobs.len(), 10_000);
    // All closed-form — "priced using closed-form formula" (§4.2).
    assert!(jobs
        .iter()
        .all(|j| matches!(j.problem.method, MethodSpec::ClosedForm)));
    // And genuinely fast: price 1000 of them and check sub-second total.
    let t0 = std::time::Instant::now();
    for j in jobs.iter().take(1000) {
        j.problem.compute().unwrap();
    }
    assert!(
        t0.elapsed().as_secs_f64() < 1.0,
        "closed-form pricing too slow: {:?}",
        t0.elapsed()
    );
}
