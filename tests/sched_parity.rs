//! The PR-5 tentpole proof: the live threaded farm and the discrete-event
//! cluster simulator drive the *same* [`sched::Scheduler`] state machine,
//! so on a matched workload they must render **byte-identical** decision
//! traces — fault-free and under a seeded fault plan alike.
//!
//! The trace is timestamp-free (events and actions only), so the two
//! worlds agree iff they feed the scheduler the same event sequence. The
//! workload is engineered to make that sequence timing-robust:
//!
//! * per-job compute costs are integer multiples (`COSTS`, in "grains")
//!   of a runtime-calibrated Monte-Carlo unit, so every pair of competing
//!   completion thresholds is separated by at least one full grain;
//! * under fair processor sharing (the 1-core CI box) event order follows
//!   per-slave *cumulative-CPU* thresholds, which a uniform slowdown
//!   cannot reorder;
//! * the seeded fault kills slave 4 at its first result send — two full
//!   grains away from the nearest neighbouring answers on either side —
//!   so the burial lands in the same inter-answer gap in both worlds.

use riskbench::clustersim::{
    simulate_farm_sched, SimCaches, SimConfig, SimFault, SimJob, SimSchedOpts,
};
use riskbench::prelude::*;
use riskbench::pricing::models::BlackScholes;
use riskbench::sched::Supervision;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-job compute costs in grains. Slave 4 is primed with the 20-grain
/// straggler (job 3); everyone else climbs a ladder with >= 1-grain gaps
/// between any two competing completion thresholds.
const COSTS: [usize; 16] = [1, 2, 3, 20, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
const SLAVES: usize = 4;

/// Target wall-clock per grain of Monte-Carlo compute.
const GRAIN_S: f64 = 0.025;

/// One grain of Monte-Carlo work, calibrated at runtime: time a probe,
/// then scale the path count so one grain costs ~[`GRAIN_S`] of CPU.
fn paths_per_grain() -> usize {
    let probe = mc_problem(50_000, 7);
    probe.compute().unwrap(); // warm up (code paths, allocator)
    let t0 = Instant::now();
    probe.compute().unwrap();
    let t = t0.elapsed().as_secs_f64().max(1e-6);
    ((GRAIN_S / t * 50_000.0) as usize).clamp(2_000, 2_000_000)
}

fn mc_problem(paths: usize, seed: u64) -> PremiaProblem {
    PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 95.0,
            maturity: 1.0,
        },
        MethodSpec::MonteCarlo {
            paths,
            time_steps: 8,
            antithetic: false,
            seed,
        },
    )
}

/// Matched workload: live problem files whose compute costs are
/// `COSTS[k] * unit` Monte-Carlo paths, and sim jobs whose compute is
/// `COSTS[k]` simulated seconds — same ratios, same decision sequence.
fn matched_workload(dir: &std::path::Path) -> (Vec<PathBuf>, Vec<SimJob>) {
    let unit = paths_per_grain();
    let jobs: Vec<PortfolioJob> = COSTS
        .iter()
        .enumerate()
        .map(|(k, &c)| PortfolioJob {
            id: k,
            class: JobClass::LocalVolMc,
            problem: mc_problem(c * unit, 100 + k as u64),
        })
        .collect();
    let files = save_portfolio(&jobs, dir).unwrap();
    let sim_jobs: Vec<SimJob> = jobs
        .iter()
        .enumerate()
        .map(|(k, j)| SimJob {
            id: k,
            class: j.class,
            bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: COSTS[k] as f64,
        })
        .collect();
    (files, sim_jobs)
}

fn sim_trace(jobs: &[SimJob], opts: &SimSchedOpts) -> String {
    let (out, trace) = simulate_farm_sched(
        jobs,
        SLAVES,
        Transmission::SerializedLoad,
        &SimConfig::default(),
        &mut SimCaches::new(),
        None,
        opts,
    )
    .unwrap();
    assert_eq!(out.per_slave.iter().sum::<usize>(), COSTS.len());
    trace.expect("record_trace was set").render()
}

#[test]
fn fault_free_live_and_sim_traces_are_byte_identical() {
    let dir = std::env::temp_dir().join("it_sched_parity_plain");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);

    let live = run(
        &files,
        &FarmConfig::new(SLAVES, Transmission::SerializedLoad).record_trace(true),
    )
    .unwrap();
    assert_eq!(live.completed(), COSTS.len());
    let live_trace = live.trace.expect("record_trace was set").render();

    let sim = sim_trace(
        &sim_jobs,
        &SimSchedOpts {
            record_trace: true,
            ..Default::default()
        },
    );

    // The tentpole claim, literally: byte identity.
    assert_eq!(
        live_trace, sim,
        "plain-farm decision traces diverged\n-- live --\n{live_trace}\n-- sim --\n{sim}"
    );
    // Sanity: the trace starts with the Fig. 4 priming round.
    assert!(
        live_trace.starts_with("ready(1) -> dispatch(0->1)\nready(2) -> dispatch(1->2)\n"),
        "unexpected priming: {live_trace}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn staged_rounds_live_and_sim_traces_are_byte_identical() {
    // The same matched 16-job ladder, now split into four declared
    // rounds of four. The round barrier parks finished slaves until the
    // straggler of each round answers, then refills them all — the
    // staged machine's decisions must agree byte for byte between the
    // live farm and the staged simulation.
    let dir = std::env::temp_dir().join("it_sched_parity_staged");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);
    let rounds: Vec<usize> = (0..COSTS.len()).map(|k| k / SLAVES).collect();

    let live = run(
        &files,
        &FarmConfig::new(SLAVES, Transmission::SerializedLoad)
            .rounds(rounds.clone())
            .record_trace(true),
    )
    .unwrap();
    assert_eq!(live.completed(), COSTS.len());
    let live_trace = live.trace.expect("record_trace was set").render();

    let sim = sim_trace(
        &sim_jobs,
        &SimSchedOpts {
            record_trace: true,
            rounds: Some(rounds),
            ..Default::default()
        },
    );
    assert_eq!(
        live_trace, sim,
        "staged decision traces diverged\n-- live --\n{live_trace}\n-- sim --\n{sim}"
    );
    // The barrier is visible: job 4 (round 1) is dispatched by the
    // answer of job 3, the 20-grain straggler of round 0 — never by the
    // earlier answers of jobs 0..2.
    assert!(
        live_trace.contains("answer(3,4) -> accept(3,4) dispatch(4->"),
        "round barrier missing from trace: {live_trace}"
    );
    for early in ["accept(0,1) dispatch", "accept(1,2) dispatch"] {
        assert!(
            !live_trace.contains(early),
            "round-blocked job dispatched early: {live_trace}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn staged_bsde_picard_live_and_sim_traces_are_byte_identical() {
    // The dependency-aware workload itself: a 3-round Labart–Lelong
    // Picard iteration, one single-sweep job per round, each round's
    // dispatch patched with the previous round's price. The patching is
    // payload-only, so the live decision trace must still match the
    // staged simulation byte for byte.
    use riskbench::farm::workload::Workload;
    use riskbench::pricing::methods::bsde::{bsde_picard_iterates, BsdeConfig};
    use riskbench::pricing::options::Vanilla;

    let picard_rounds = 3;
    let problem = PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 100.0,
            maturity: 1.0,
        },
        MethodSpec::Bsde {
            paths: 4_000,
            time_steps: 12,
            rate_spread: 0.05,
            picard_rounds,
            y_prev: 0.0,
            seed: 99,
        },
    );
    let w = Workload::bsde_picard(problem).unwrap();
    assert_eq!(w.round_count(), picard_rounds, ">= 2 dependent rounds");

    let dir = std::env::temp_dir().join("it_sched_parity_bsde");
    let _ = std::fs::remove_dir_all(&dir);
    let live = riskbench::farm::run_workload(
        &w,
        &dir,
        &FarmConfig::new(SLAVES, Transmission::SerializedLoad).record_trace(true),
    )
    .unwrap();
    assert_eq!(live.completed(), picard_rounds);
    let live_trace = live.trace.as_ref().expect("record_trace was set").render();

    let sim_jobs: Vec<SimJob> = w
        .jobs()
        .iter()
        .map(|j| SimJob {
            id: j.id,
            class: j.class,
            bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: 1.0,
        })
        .collect();
    let (out, trace) = simulate_farm_sched(
        &sim_jobs,
        SLAVES,
        Transmission::SerializedLoad,
        &SimConfig::default(),
        &mut SimCaches::new(),
        None,
        &SimSchedOpts {
            record_trace: true,
            rounds: w.rounds().map(|r| r.to_vec()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.per_slave.iter().sum::<usize>(), picard_rounds);
    let sim = trace.expect("record_trace was set").render();
    assert_eq!(
        live_trace, sim,
        "BSDE staged traces diverged\n-- live --\n{live_trace}\n-- sim --\n{sim}"
    );

    // And the farm's staged answers are the in-process Picard iterates,
    // bit for bit — the data flow crossed the rounds correctly.
    let cfg = BsdeConfig {
        paths: 4_000,
        time_steps: 12,
        rate_spread: 0.05,
        picard_rounds,
        y_prev: 0.0,
        seed: 99,
    };
    let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
    let iterates = bsde_picard_iterates(&m, &Vanilla::european_call(100.0, 1.0), &cfg, None);
    let by_job = live.by_job();
    for (r, it) in iterates.iter().enumerate() {
        let (job, got, _) = by_job[r];
        assert_eq!(job, r);
        assert_eq!(got.to_bits(), it.price.to_bits(), "round {r} iterate");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_fault_live_and_sim_traces_are_byte_identical() {
    let dir = std::env::temp_dir().join("it_sched_parity_fault");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);

    // Slave rank 4 (primed with the 20-grain job 3) dies at comm op 2 —
    // its first result send, i.e. *after* computing. Generous deadlines
    // and timeouts keep the deadline/idle machinery out of the trace; a
    // zero backoff makes the requeued job eligible at the next answer.
    let sup = SupervisorConfig {
        job_deadline: Duration::from_secs(60),
        max_attempts: 4,
        backoff_base: Duration::ZERO,
        poll: Duration::from_millis(5),
        slave_idle_timeout: Duration::from_secs(60),
        payload_timeout: Duration::from_secs(10),
    };
    let plan = Arc::new(FaultPlan::new(1).kill_rank_at_op(4, 2));
    let live = run(
        &files,
        &FarmConfig::new(SLAVES, Transmission::SerializedLoad)
            .supervisor(sup)
            .fault_plan(plan)
            .record_trace(true),
    )
    .unwrap();
    assert_eq!(live.completed(), COSTS.len(), "all jobs recovered");
    assert_eq!(live.dead_slaves, vec![4]);
    assert_eq!(live.retries, 1);
    assert!(live.failed_jobs.is_empty());
    let live_trace = live.trace.expect("record_trace was set").render();

    // Simulated twin: 0-based slave 3 dies answering its first dispatch,
    // detected half a (simulated) grain later — inside the same
    // inter-answer gap (18, 22) the live poll lands in.
    let sim = sim_trace(
        &sim_jobs,
        &SimSchedOpts {
            supervision: Some(Supervision {
                deadline_ns: 3_600_000_000_000,
                max_attempts: 4,
                backoff_base_ns: 0,
            }),
            record_trace: true,
            faults: vec![SimFault {
                slave: 3,
                fatal_dispatch: 0,
                detect_delay_s: 0.5,
            }],
            ..Default::default()
        },
    );

    // The burial must appear, verbatim, in both traces...
    for (world, trace) in [("live", &live_trace), ("sim", &sim)] {
        assert!(
            trace.contains("dead(4) -> bury(4) requeue(3)\n"),
            "{world} trace lacks the burial: {trace}"
        );
    }
    // ...and the traces must agree byte for byte.
    assert_eq!(
        live_trace, sim,
        "supervised decision traces diverged\n-- live --\n{live_trace}\n-- sim --\n{sim}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
