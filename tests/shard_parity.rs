//! The sharded tentpole proofs, per shard and per backend:
//!
//! * **decision-trace parity** — with whole-shard leases (`lease == 0`,
//!   nothing to steal) every peer master drives exactly one
//!   [`sched::Scheduler`] round over its contiguous partition, so its
//!   recorded trace must be **byte-identical** to
//!   `clustersim::simulate_farm_sched` run on that partition — on the
//!   in-process channel backend *and* on the multi-process socket
//!   backend;
//! * **price bit-identity across backends** — the same portfolio priced
//!   by threads and by spawned child processes (work-stealing enabled)
//!   must agree with the serial reference bit for bit.
//!
//! The workload borrows `tests/sched_parity.rs`'s timing robustness:
//! per-job costs are integer grains of a runtime-calibrated Monte-Carlo
//! unit, every pair of competing completion thresholds at least one
//! grain apart, so fair processor sharing (including the concurrent
//! peer shard's load) cannot reorder a shard's event sequence.

use riskbench::clustersim::{simulate_farm_sched, SimCaches, SimConfig, SimJob, SimSchedOpts};
use riskbench::farm::shard::{
    run_sharded, shard_slave_entry, ShardConfig, TransportKind, SHARD_SLAVE_ENTRY,
};
use riskbench::minimpi::ProcessWorld;
use riskbench::prelude::*;
use riskbench::pricing::models::BlackScholes;
use std::path::PathBuf;
use std::time::Instant;

/// Per-job costs in grains, one ladder per shard. With 2 slaves the
/// completion thresholds are 1, 2, 4, 6, 9, 12, 16, 20 — no two closer
/// than one grain.
const COSTS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const SHARDS: usize = 2;
const SLAVES_PER_SHARD: usize = 2;

/// Target wall-clock per grain of Monte-Carlo compute.
const GRAIN_S: f64 = 0.025;

/// The process-backend children re-execute this test binary pointed at
/// this `#[test]` (libtest offers no other hook into `main`); in a
/// normal test run the spawn environment is absent and this is a no-op.
#[test]
fn process_child_bootstrap() {
    let _ = ProcessWorld::child_entry(&[(SHARD_SLAVE_ENTRY, shard_slave_entry)]);
}

fn mc_problem(paths: usize, seed: u64) -> PremiaProblem {
    PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 95.0,
            maturity: 1.0,
        },
        MethodSpec::MonteCarlo {
            paths,
            time_steps: 8,
            antithetic: false,
            seed,
        },
    )
}

fn paths_per_grain() -> usize {
    let probe = mc_problem(50_000, 7);
    probe.compute().unwrap(); // warm up (code paths, allocator)
    let t0 = Instant::now();
    probe.compute().unwrap();
    let t = t0.elapsed().as_secs_f64().max(1e-6);
    ((GRAIN_S / t * 50_000.0) as usize).clamp(2_000, 2_000_000)
}

/// `SHARDS` copies of the grain ladder on disk, plus the matched
/// simulator jobs for one shard's partition (both shards are
/// identically shaped, but each gets distinct MC seeds).
fn matched_workload(dir: &std::path::Path) -> (Vec<PathBuf>, Vec<SimJob>) {
    let unit = paths_per_grain();
    let jobs: Vec<PortfolioJob> = (0..SHARDS * COSTS.len())
        .map(|k| PortfolioJob {
            id: k,
            class: JobClass::LocalVolMc,
            problem: mc_problem(COSTS[k % COSTS.len()] * unit, 100 + k as u64),
        })
        .collect();
    let files = save_portfolio(&jobs, dir).unwrap();
    let sim_jobs: Vec<SimJob> = COSTS
        .iter()
        .enumerate()
        .map(|(k, &c)| SimJob {
            id: k,
            class: JobClass::LocalVolMc,
            bytes: riskbench::xdrser::serialize_to_bytes(&jobs[k].problem.to_value()).len(),
            compute: c as f64,
        })
        .collect();
    (files, sim_jobs)
}

/// One simulated scheduler round over a shard's partition.
fn sim_shard_trace(jobs: &[SimJob]) -> String {
    let (out, trace) = simulate_farm_sched(
        jobs,
        SLAVES_PER_SHARD,
        Transmission::SerializedLoad,
        &SimConfig::default(),
        &mut SimCaches::new(),
        None,
        &SimSchedOpts {
            record_trace: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.per_slave.iter().sum::<usize>(), jobs.len());
    trace.expect("record_trace was set").render()
}

fn trace_parity_on(backend: TransportKind, tag: &str) {
    let dir = std::env::temp_dir().join(format!("it_shard_parity_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);

    let mut cfg = ShardConfig::new(SHARDS, SLAVES_PER_SHARD)
        .backend(backend)
        .record_trace(true);
    if backend == TransportKind::Process {
        cfg.process_bootstrap = Some("process_child_bootstrap".into());
    }
    let report = run_sharded(&files, &cfg).unwrap();
    assert_eq!(report.completed(), files.len());
    assert!(report.steals.is_empty(), "lease 0 leaves nothing to steal");

    let sim = sim_shard_trace(&sim_jobs);
    for (shard, traces) in report.traces.iter().enumerate() {
        assert_eq!(traces.len(), 1, "shard {shard}: one round, one trace");
        let live = traces[0].render();
        // The tentpole claim, literally: byte identity, per shard.
        assert_eq!(
            live, sim,
            "{tag} shard {shard} diverged from its simulated partition\n\
             -- live --\n{live}\n-- sim --\n{sim}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_shard_traces_match_the_simulator_on_the_channel_backend() {
    trace_parity_on(TransportKind::Channel, "channel");
}

#[test]
fn per_shard_traces_match_the_simulator_on_the_process_backend() {
    trace_parity_on(TransportKind::Process, "process");
}

#[test]
fn process_prices_are_bit_identical_to_channel_and_serial() {
    let dir = std::env::temp_dir().join("it_shard_parity_bits");
    let _ = std::fs::remove_dir_all(&dir);
    // Fixed path counts — bit-identity needs determinism, not matched
    // timing. Stealing stays on so non-contiguous rounds are covered.
    let jobs: Vec<PortfolioJob> = (0..12)
        .map(|k| PortfolioJob {
            id: k,
            class: JobClass::LocalVolMc,
            problem: mc_problem(20_000 + 1_000 * (k % 4), 500 + k as u64),
        })
        .collect();
    let files = save_portfolio(&jobs, &dir).unwrap();
    let serial: Vec<u64> = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price.to_bits())
        .collect();

    let prices = |backend: TransportKind| -> Vec<u64> {
        let mut cfg = ShardConfig::new(2, 2).stealing(2).backend(backend);
        if backend == TransportKind::Process {
            cfg.process_bootstrap = Some("process_child_bootstrap".into());
        }
        let report = run_sharded(&files, &cfg).unwrap();
        assert_eq!(report.completed(), files.len());
        report.by_job().iter().map(|&(_, p, _)| p.to_bits()).collect()
    };

    let channel = prices(TransportKind::Channel);
    let process = prices(TransportKind::Process);
    assert_eq!(channel, serial, "channel backend diverged from serial");
    assert_eq!(process, serial, "process backend diverged from serial");
    std::fs::remove_dir_all(&dir).ok();
}
