//! Integration: the full Fig. 4/5 pipeline across crates — portfolio
//! files on disk → master → minimpi transmission (all three strategies) →
//! slave compute → results — checked against serial evaluation.

use riskbench::prelude::*;

/// Plain farm via the unified [`farm::run`] entry point.
fn run_plain_farm(
    files: &[std::path::PathBuf],
    slaves: usize,
    strategy: Transmission,
) -> Result<FarmReport, FarmError> {
    run(files, &FarmConfig::new(slaves, strategy))
}

fn setup(tag: &str, count: usize) -> (Vec<std::path::PathBuf>, Vec<f64>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("it_farm_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(count);
    let files = save_portfolio(&jobs, &dir).unwrap();
    let expected: Vec<f64> = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .collect();
    (files, expected, dir)
}

#[test]
fn all_strategies_price_identically_to_serial() {
    let (files, expected, dir) = setup("strategies", 60);
    for strategy in Transmission::ALL {
        let report = run_plain_farm(&files, 3, strategy).unwrap();
        assert_eq!(report.completed(), 60, "{strategy}");
        for o in &report.outcomes {
            assert_eq!(
                o.price.to_bits(),
                expected[o.job].to_bits(),
                "{strategy}: job {} differs from serial",
                o.job
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heterogeneous_portfolio_through_the_farm() {
    // A strided §4.3 portfolio: every method family crosses the wire.
    let dir = std::env::temp_dir().join("it_farm_hetero");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = realistic_portfolio(PortfolioScale::Quick, 300);
    assert!(jobs.len() >= 20, "stride too coarse: {}", jobs.len());
    let files = save_portfolio(&jobs, &dir).unwrap();
    let report = run_plain_farm(&files, 4, Transmission::SerializedLoad).unwrap();
    assert_eq!(report.completed(), jobs.len());
    // Spot-check a few against direct computation.
    for o in report.outcomes.iter().take(5) {
        let direct = jobs[o.job].problem.compute().unwrap().price;
        assert_eq!(o.price.to_bits(), direct.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regression_suite_through_the_farm_like_table1() {
    // §4.1: the non-regression tests, parallelised.
    let dir = std::env::temp_dir().join("it_farm_regression");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = regression_portfolio(PortfolioScale::Quick);
    let files = save_portfolio(&jobs, &dir).unwrap();
    let report = run_plain_farm(&files, 4, Transmission::SerializedLoad).unwrap();
    assert_eq!(report.completed(), jobs.len());
    // Every job answered exactly once with a finite price.
    let mut seen = vec![false; jobs.len()];
    for o in &report.outcomes {
        assert!(!seen[o.job]);
        seen[o.job] = true;
        assert!(o.price.is_finite());
    }
    assert!(seen.iter().all(|&s| s));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_and_hierarchical_agree_with_flat_farm() {
    let (files, expected, dir) = setup("variants", 24);
    let batched =
        farm::batching::run_batched_farm(&files, 3, Transmission::SerializedLoad, 5).unwrap();
    let hier =
        farm::hierarchy::run_hierarchical_farm(&files, 2, 2, Transmission::SerializedLoad).unwrap();
    for report in [batched, hier] {
        assert_eq!(report.completed(), 24);
        for o in &report.outcomes {
            assert_eq!(o.price.to_bits(), expected[o.job].to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn farm_scales_on_real_cores() {
    // Wall-clock sanity: with compute-heavy jobs, 4 slaves should beat 1
    // slave clearly (not asserting a precise ratio — CI machines vary).
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        < 4
    {
        eprintln!("skipping: fewer than 4 cores");
        return;
    }
    let dir = std::env::temp_dir().join("it_farm_scaling");
    let _ = std::fs::remove_dir_all(&dir);
    // American PDE problems are the heavy class.
    let jobs: Vec<PortfolioJob> = realistic_portfolio(PortfolioScale::Quick, 40)
        .into_iter()
        .filter(|j| j.class == JobClass::AmericanPde)
        .take(16)
        .collect();
    let files: Vec<_> = {
        std::fs::create_dir_all(&dir).unwrap();
        jobs.iter()
            .map(|j| {
                let p = dir.join(format!("pb-{}.bin", j.id));
                riskbench::xdrser::save(&p, &j.problem.to_value()).unwrap();
                p
            })
            .collect()
    };
    let t1 = run_plain_farm(&files, 1, Transmission::SerializedLoad)
        .unwrap()
        .elapsed;
    let t4 = run_plain_farm(&files, 4, Transmission::SerializedLoad)
        .unwrap()
        .elapsed;
    assert!(
        t4.as_secs_f64() < 0.75 * t1.as_secs_f64(),
        "no speedup: 1 slave {t1:?}, 4 slaves {t4:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn risk_sweep_through_the_farm() {
    // §1 end to end: sweep a small book, farm it, aggregate Greeks.
    use farm::risk::{aggregate_risk, outcomes_to_prices, risk_sweep, BumpSpec};
    let dir = std::env::temp_dir().join("it_farm_risk");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let claims = toy_portfolio(6);
    let bump = BumpSpec::default();
    let sweep = risk_sweep(&claims, &bump);
    let files: Vec<_> = sweep
        .iter()
        .enumerate()
        .map(|(k, j)| {
            let p = dir.join(format!("pb-{k}.bin"));
            riskbench::xdrser::save(&p, &j.problem.to_value()).unwrap();
            p
        })
        .collect();
    let report = run_plain_farm(&files, 3, Transmission::SerializedLoad).unwrap();
    assert_eq!(report.completed(), sweep.len());
    let prices = outcomes_to_prices(sweep.len(), &report.outcomes);
    assert!(prices.iter().all(|p| p.is_finite()));
    let risks = aggregate_risk(&sweep, &prices, &bump, &|_| 100.0);
    assert_eq!(risks.len(), 6);
    // Calls: positive delta in (0,1], positive vega.
    for r in &risks {
        assert!(r.delta > 0.0 && r.delta <= 1.0 + 1e-9, "delta {}", r.delta);
        assert!(r.vega >= 0.0, "vega {}", r.vega);
    }
    std::fs::remove_dir_all(&dir).ok();
}
