//! Integration: the paper's script shapes executed by the `nsplang`
//! interpreter, including the Fig. 4/5 master/slave portfolio pricer on a
//! live `minimpi` world with one interpreter per rank.

use minimpi::World;
use nsplang::Interp;
use std::rc::Rc;

#[test]
fn section_3_3_premia_session() {
    let src = r#"
P = premia_create()
P.set_asset[str="equity"]
P.set_model[str="BlackScholes1dim"]
P.set_option[str="CallEuro"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
"#;
    let mut i = Interp::new();
    i.run(src).unwrap();
    let price = i.get_scalar("price").unwrap();
    assert!((price - 10.4506).abs() < 1e-3);
}

#[test]
fn fig2_sload_session() {
    let dir = std::env::temp_dir().join("it_nsp_fig2");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let src = format!(
        r#"
H.A = rand(4,5)
H.B = rand(4,1)
save('{d}/saved.bin', H)
S = sload('{d}/saved.bin')
H1 = S.unserialize[]
ok = H1.equal[H]
"#,
        d = dir.display()
    );
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_bool("ok"), Some(true));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obj_send_recv_between_interpreted_ranks() {
    // §3.2's A=list('string',%t,rand(4,4)); MPI_Send_Obj / MPI_Recv_Obj
    // example, with an interpreter on each rank.
    let outputs = World::run(2, |comm| {
        let rank = comm.rank();
        let mut interp = Interp::with_comm(Rc::new(comm));
        if rank == 0 {
            interp
                .run(
                    "MCW = mpicomm_create('WORLD')\nA = list('string', %t, rand(4,4))\nMPI_Send_Obj(A, 1, 3, MCW)\nMPI_Send_Obj(A, 1, 4, MCW)",
                )
                .unwrap();
            true
        } else {
            interp
                .run(
                    "MCW = mpicomm_create('WORLD')\nB = MPI_Recv_Obj(0, 3, MCW)\nC = MPI_Recv_Obj(0, 4, MCW)\nok = B.equal[C]",
                )
                .unwrap();
            interp.get_bool("ok").unwrap()
        }
    });
    assert!(outputs[1]);
}

#[test]
fn fig4_style_farm_runs_interpreted() {
    fig4_farm_on_engine(nsplang::Engine::Tree, "it_nsp_fig4");
}

#[test]
fn fig4_style_farm_runs_on_vm() {
    // Same protocol, every rank's interpreter on the bytecode VM.
    fig4_farm_on_engine(nsplang::Engine::Vm, "it_nsp_fig4_vm");
}

fn fig4_farm_on_engine(engine: nsplang::Engine, tag: &str) {
    // Scaled-down Fig. 4/5: 8 problems, 1 master + 2 slaves, full
    // pack/probe/mpibuf protocol.
    let dir = std::env::temp_dir().join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = farm::portfolio::toy_portfolio(8);
    for (k, job) in jobs.iter().enumerate() {
        riskbench::xdrser::save(
            dir.join(format!("pb-{}.bin", k + 1)),
            &job.problem.to_value(),
        )
        .unwrap();
    }
    let script = format!(
        r#"
TAG = 7
MCW = mpicomm_create('WORLD')
mpi_rank = MPI_Comm_rank(MCW)
mpi_size = MPI_Comm_size(MCW)

function send_pb(name, slv, TAG, MCW)
  ser_obj = sload(name)
  MPI_Send_Obj(name, slv, TAG, MCW)
  pack_obj = MPI_Pack(ser_obj, MCW)
  MPI_Send(pack_obj, slv, TAG, MCW)
endfunction

function [sl, result] = receive_res(TAG, MCW)
  stat = MPI_Probe(-1, -1, MCW)
  sl = stat.src
  result = MPI_Recv_Obj(sl, TAG, MCW)
endfunction

if mpi_rank <> 0 then
  while %t then
    name = MPI_Recv_Obj(0, TAG, MCW)
    if name == '' then break end
    stat = MPI_Probe(-1, -1, MCW)
    elems = MPI_Get_elements(stat, '')
    pack_obj = mpibuf_create(elems)
    stat = MPI_Recv(pack_obj, 0, TAG, MCW)
    ser_obj = MPI_Unpack(pack_obj, MCW)
    P = unserialize(ser_obj)
    P.compute[]
    L = P.get_method_results[]
    MPI_Send_Obj(L(1)(3), 0, TAG, MCW)
  end
else
  Lpb = list()
  for k = 1:8 do
    Lpb.add_last['{d}/pb-' + string(k) + '.bin']
  end
  res = list()
  slv = 1
  sent = 0
  for k = 1:min(mpi_size-1, 8) do
    send_pb(Lpb(k), slv, TAG, MCW)
    slv = slv + 1
    sent = sent + 1
  end
  Lpb(1:sent) = []
  for pb = Lpb' do
    [sl, result] = receive_res(TAG, MCW)
    res.add_last[list(sl, result)]
    send_pb(pb, sl, TAG, MCW)
  end
  for k = 1:sent do
    [sl, result] = receive_res(TAG, MCW)
    res.add_last[list(sl, result)]
  end
  for slv = 1:mpi_size-1 do
    MPI_Send_Obj('', slv, TAG, MCW)
  end
  total = 0
  for r = res do
    total = total + r(2)
  end
  n_res = size(res, '*')
"#,
        d = dir.display()
    ) + "\nend\n";

    let outputs = World::run(3, move |comm| {
        let rank = comm.rank();
        let mut interp = Interp::with_comm(Rc::new(comm));
        interp.set_engine(engine);
        interp
            .run(&script)
            .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        if rank == 0 {
            Some((
                interp.get_scalar("total").unwrap(),
                interp.get_scalar("n_res").unwrap(),
            ))
        } else {
            None
        }
    });
    let (total, n_res) = outputs[0].unwrap();
    assert_eq!(n_res, 8.0);
    let serial: f64 = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .sum();
    assert!(
        (total - serial).abs() < 1e-9,
        "scripted {total} vs serial {serial}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interpreter_errors_are_reported_not_panicking() {
    let mut i = Interp::new();
    assert!(i.run("x = undefined_thing + 1").is_err());
    assert!(i.run("P = premia_create()\nP.compute[]").is_err()); // incomplete problem
    assert!(i.run("L = list(1)\ny = L(5)").is_err()); // out of bounds
}

#[test]
fn shipped_scripts_parse() {
    // The standalone scripts in scripts/ must stay syntactically valid.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let mut found = 0;
    for entry in std::fs::read_dir(&root).expect("scripts directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("nsp") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        nsplang::parse_program(&src)
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
        found += 1;
    }
    assert!(found >= 4, "expected the shipped scripts, found {found}");
}

#[test]
fn fig2_script_runs_standalone() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let src = std::fs::read_to_string(root.join("fig2_sload.nsp")).unwrap();
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_bool("ok"), Some(true));
    assert_eq!(i.get_bool("ok2"), Some(true));
}

#[test]
fn section33_script_runs_standalone() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let src = std::fs::read_to_string(root.join("section33_premia.nsp")).unwrap();
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_bool("ok"), Some(true));
}

#[test]
fn rates_workflow_through_interpreter() {
    // The §2 interest-rate extension is reachable from scripts too.
    let src = r#"
P = premia_create()
P.set_asset[str="rates"]
P.set_model[str="Vasicek1dim"]
P.set_option[str="ZCBond"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
"#;
    let mut i = Interp::new();
    i.run(src).unwrap();
    let price = i.get_scalar("price").unwrap();
    assert!(price > 0.0 && price < 1.0, "ZCB price {price}");
}

// ---- engine equivalence battery ---------------------------------------------
//
// Every script below runs on both engines (tree-walker and bytecode VM) and
// must produce bit-identical global bindings (compared as XDR bytes),
// identical RNG states, identical `disp` output, and — for failing scripts —
// identical rendered error messages including `line:col` spans.

mod engine_equivalence {
    use nsplang::{Engine, Interp, NspError};
    use std::collections::BTreeMap;

    fn snapshot(i: &Interp) -> BTreeMap<String, String> {
        i.globals()
            .map(|(name, v)| {
                let repr = match v.to_value() {
                    Ok(val) => format!("{:?}", riskbench::xdrser::serialize_to_bytes(&val)),
                    Err(e) => format!("unserializable: {e}"),
                };
                (name.to_string(), repr)
            })
            .collect()
    }

    fn run_both(src: &str) -> (Interp, Result<(), NspError>, Interp, Result<(), NspError>) {
        let mut t = Interp::new();
        let rt = t.run(src);
        let mut v = Interp::with_engine(Engine::Vm);
        let rv = v.run(src);
        (t, rt, v, rv)
    }

    #[track_caller]
    fn assert_agree(src: &str) {
        let (t, rt, v, rv) = run_both(src);
        match (&rt, &rv) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error mismatch on:\n{src}")
            }
            _ => panic!("engines disagree on success: tree={rt:?} vm={rv:?} on:\n{src}"),
        }
        assert_eq!(t.output, v.output, "disp output mismatch on:\n{src}");
        assert_eq!(t.rng_state(), v.rng_state(), "rng divergence on:\n{src}");
        assert_eq!(snapshot(&t), snapshot(&v), "binding mismatch on:\n{src}");
    }

    #[test]
    fn scalars_strings_bools_arith() {
        assert_agree("x = 1 + 2*3 - 4/2\ns = 'a' + 'b'\nb = %t\nc = ~%f\nn = -x");
        assert_agree("x = 2 < 3\ny = 2 >= 3\nz = 'ab' == 'ab'\nw = 1 <> 2");
        assert_agree("a = %t && %f\nb = %t || %f");
    }

    #[test]
    fn matrices_ranges_transpose() {
        assert_agree("m = [1, 2; 3, 4]\nt = m'\ne = []\nr = 1:5\nr2 = 1:2:9\ns = m(1,2) + r(3)");
        assert_agree("m = [1, 2, 3]\nm(2) = 7\nm(1:2) + 0\nv = m(1:2)\nq = m([3,1])");
        assert_agree("m = rand(3,3)\ns = size(m)\n[r, c] = size(m)\nn = size(m, '*')");
    }

    #[test]
    fn float_index_truncation_matches() {
        // Nsp/Matlab-style `as usize` truncation happens in the shared
        // helper; both engines must agree bit-for-bit.
        assert_agree("m = [10, 20, 30]\na = m(2.9)\nb = m(2)\nok = a == b");
        assert_agree("L = list(10, 20, 30)\na = L(2.9)\nb = L(2)\nok = a == b");
    }

    #[test]
    fn and_or_are_eager_both_engines() {
        // Both operand sides evaluate (no short-circuit), in source order —
        // visible through disp side effects.
        assert_agree(
            "function [r] = lhs()\n  disp('lhs')\n  r = %f\nendfunction\n\
             function [r] = rhs()\n  disp('rhs')\n  r = %t\nendfunction\n\
             a = lhs() && rhs()\nb = lhs() || rhs()",
        );
    }

    #[test]
    fn lists_nested_and_writeback() {
        assert_agree("L = list(1, 'two', %t)\nx = L(2)\nn = length(L)");
        assert_agree("L = list(list(1, 2), list(3))\nx = L(1)(2)\ny = L(2)(1)");
        assert_agree(
            "L = list()\nfor k = 1:5 do\n  L.add_last[k*k]\nend\ns = L(5)\nn = length(L)",
        );
        assert_agree("L = list(1,2,3,4,5)\nL(2) = 'x'\nL(4) = []\nn = length(L)");
        assert_agree("L = list(1,2,3,4,5)\nk = 2\nL(1:k) = []\nn = length(L)\nh = L(1)");
    }

    #[test]
    fn hashes_and_field_chains() {
        assert_agree("H.A = 1\nH.B = 'two'\nx = H.A + 1\ny = H('B')");
        assert_agree("H = hash_create(a=1, b=2)\nx = H.a + H.b");
        // Field assignment on a non-hash errors identically.
        assert_agree("G = 5\nG.A = 1");
        // Auto-created hash then overwritten field.
        assert_agree("H.A = 1\nH.A = 2\nx = H.A");
    }

    #[test]
    fn control_flow_loops() {
        assert_agree(
            "s = 0\nfor k = 1:10 do\n  if k == 3 then continue end\n  if k == 8 then break end\n  s = s + k\nend",
        );
        assert_agree(
            "s = 0\nk = 0\nwhile k < 10 do\n  k = k + 1\n  if k == 4 then continue end\n  s = s + k\nend",
        );
        assert_agree(
            "s = 0\nfor i = 1:3 do\n  for j = 1:3 do\n    if j == 2 then break end\n    s = s + i*10 + j\n  end\nend",
        );
        assert_agree("t = 0\nfor v = [5, 6; 7, 8] do\n  t = t + v(1)\nend");
        assert_agree("t = ''\nfor v = list('a', 'b') do\n  t = t + v\nend");
        assert_agree("x = 1\nif x > 2 then y = 'big'\nelseif x > 0 then y = 'small'\nelse y = 'neg'\nend");
    }

    #[test]
    fn top_level_return_and_flow_errors() {
        assert_agree("x = 1\nreturn\nx = 2");
        // Flow escapes at top level error without a span in both engines.
        assert_agree("break");
        assert_agree("continue");
        assert_agree("for k = 1:3 do\n  y = k\nend\nbreak");
    }

    #[test]
    fn functions_recursion_and_scoping() {
        assert_agree(
            "function [r] = fib(n)\n  if n < 2 then\n    r = n\n  else\n    r = fib(n-1) + fib(n-2)\n  end\nendfunction\nx = fib(12)",
        );
        // Dynamic scoping: function bodies read caller bindings.
        assert_agree("g = 42\nfunction [r] = f()\n  r = g + 1\nendfunction\nx = f()");
        // ...but cannot mutate them (assignments are call-local).
        assert_agree("g = 1\nfunction [r] = f()\n  g = 99\n  r = g\nendfunction\nx = f()\nok = g == 1");
        assert_agree(
            "function [a, b] = two()\n  a = 1\n  b = 2\nendfunction\n[p, q] = two()\ns = two()",
        );
        assert_agree("function [r] = f(x)\n  r = x\nendfunction\ny = f(1, 2, 3)");
        assert_agree("function [r] = f()\n  z = 1\nendfunction\ny = f()");
        assert_agree("function noret(x)\n  d = x\nendfunction\nnoret(3)\ny = 1");
        // break/continue inside a function body but outside a loop end the
        // call like falling off the end (Flow unwinds to call_user).
        assert_agree("function [r] = f()\n  r = 1\n  break\n  r = 2\nendfunction\nx = f()");
        // User function shadows a builtin.
        assert_agree("function [r] = rand()\n  r = 7\nendfunction\nx = rand()");
        // Variable shadows a function name: call becomes indexing.
        assert_agree("f = [10, 20]\nx = f(2)");
        // Redefinition: later def wins.
        assert_agree(
            "function [r] = f()\n  r = 1\nendfunction\na = f()\nfunction [r] = f()\n  r = 2\nendfunction\nb = f()",
        );
    }

    #[test]
    fn multi_assign_arity_errors() {
        assert_agree("[a, b] = 1 + 1");
        assert_agree("x = 5\n[a, b] = x");
        assert_agree("function [r] = one()\n  r = 1\nendfunction\n[a, b] = one()");
        assert_agree("L = list(1, 2)\n[a, b] = L(1)");
    }

    #[test]
    fn rng_and_reseed_mid_script() {
        assert_agree("a = rand()\nb = rand(2,2)\nc = rand(3)");
        assert_agree(
            "a = rand()\nreseed(42)\nb = rand()\nreseed(42)\nc = rand()\nok = b == c\nd = rand(2,3)",
        );
        // Draw order through function calls and loops.
        assert_agree(
            "function [r] = draw()\n  r = rand()\nendfunction\ns = 0\nfor k = 1:5 do\n  s = s + draw()\nend",
        );
    }

    #[test]
    fn error_scripts_identical_messages_and_spans() {
        assert_agree("x = undefined_thing + 1");
        assert_agree("x = 1\ny = x + undefined_thing");
        assert_agree("L = list(1)\ny = L(5)");
        assert_agree("m = [1, 2]\ny = m(9)");
        assert_agree("m = [1, 2]\nm(9) = 0");
        assert_agree("x = 'a' - 1");
        assert_agree("if 5 then y = 1 end\nz = list()\nif z then y = 2 end");
        assert_agree("unknown_fn(1, 2)");
        assert_agree("x = 1\ny = 2\nz = [1,2](3)");
        assert_agree("for k = 1:3 do\n  y = k(2)\nend");
        assert_agree("H.A.B = 1");
    }

    #[test]
    fn serialization_builtins_agree() {
        assert_agree(
            "A = list('s', %t, rand(2,2))\nS = serialize(A)\nB = unserialize(S)\nok = B.equal[A]",
        );
    }

    #[test]
    fn exec_binds_in_caller_scope_both_engines() {
        let dir = std::env::temp_dir().join("it_nsp_exec_equiv");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let inner = dir.join("inner.nsp");
        std::fs::write(&inner, "shared = shared + 1\nfresh = rand()\n").unwrap();
        let src = format!(
            "shared = 1\nexec('{p}')\nexec('{p}')\nok = shared == 3",
            p = inner.display()
        );
        assert_agree(&src);
        // exec inside a function binds into the function's scope, which
        // evaporates on return — the global must stay untouched.
        let src = format!(
            "shared = 1\nfunction [r] = f()\n  shared = 10\n  exec('{p}')\n  r = shared\nendfunction\nx = f()\nok = shared == 1",
            p = inner.display()
        );
        assert_agree(&src);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn premia_session_agrees() {
        assert_agree(
            "P = premia_create()\nP.set_asset[str=\"equity\"]\nP.set_model[str=\"BlackScholes1dim\"]\nP.set_option[str=\"CallEuro\"]\nP.set_method[str=\"CF\"]\nP.compute[]\nL = P.get_method_results[]\nprice = L(1)(3)",
        );
    }

    #[test]
    fn new_workload_class_sessions_agree() {
        // The heterogeneous workload classes are reachable by their
        // Premia-style registry names from scripts, and both engines
        // price them bit-identically: BSDE Picard (Labart–Lelong),
        // XVA/CVA on a netting set, and the multi-dimensional Bermudan
        // max-call via LSM.
        assert_agree(
            "P = premia_create()\nP.set_asset[str=\"equity\"]\nP.set_model[str=\"BlackScholes1dim\"]\nP.set_option[str=\"CallEuro\"]\nP.set_method[str=\"MC_BSDE_LabartLelong\", paths=2048, time_steps=12]\nP.compute[]\nL = P.get_method_results[]\nprice = L(1)(3)",
        );
        assert_agree(
            "P = premia_create()\nP.set_asset[str=\"equity\"]\nP.set_model[str=\"BlackScholes1dim\"]\nP.set_option[str=\"NettingSetForward\"]\nP.set_method[str=\"MC_XVA_CVA\", paths=1024, time_steps=16]\nP.compute[]\nL = P.get_method_results[]\ncva = L(1)(3)",
        );
        assert_agree(
            "P = premia_create()\nP.set_asset[str=\"equity\"]\nP.set_model[str=\"BlackScholesNdim\"]\nP.set_option[str=\"CallMaxBermuda\"]\nP.set_method[str=\"MC_AM_LongstaffSchwartz\", paths=1024, exercise_dates=8, basis_degree=2]\nP.compute[]\nL = P.get_method_results[]\nprice = L(1)(3)",
        );
    }

    #[test]
    fn method_tuning_kwargs_agree() {
        // Keyword overrides patch the named spec; typos and knobs the
        // method doesn't have must fail identically on both engines.
        assert_agree(
            "P = premia_create()\nP.set_method[str=\"MC_BSDE_LabartLelong\", picard_rounds=1, y_prev=0.5, seed=7]",
        );
        assert_agree(
            "P = premia_create()\nP.set_method[str=\"MC_BSDE_LabartLelong\", bogus_knob=1]",
        );
        assert_agree("P = premia_create()\nP.set_method[str=\"CF\", paths=10]");
    }

    #[test]
    fn scripted_picard_sweeps_agree_with_one_shot() {
        // The scripted BSDE driver: one Picard sweep per compute[],
        // feeding y_prev forward — exactly the staged farm's contract —
        // must land bit-for-bit on the one-shot multi-round run. `ok`
        // is an exact float comparison, so snapshot equality across
        // engines plus the tree-engine check below pins both.
        let src = "y = 0\nfor k = 1:3 do\n  P = premia_create()\n  P.set_asset[str=\"equity\"]\n  P.set_model[str=\"BlackScholes1dim\"]\n  P.set_option[str=\"CallEuro\"]\n  P.set_method[str=\"MC_BSDE_LabartLelong\", paths=2048, time_steps=12, picard_rounds=1, y_prev=y]\n  P.compute[]\n  L = P.get_method_results[]\n  y = L(1)(3)\nend\nQ = premia_create()\nQ.set_asset[str=\"equity\"]\nQ.set_model[str=\"BlackScholes1dim\"]\nQ.set_option[str=\"CallEuro\"]\nQ.set_method[str=\"MC_BSDE_LabartLelong\", paths=2048, time_steps=12, picard_rounds=3]\nQ.compute[]\nM = Q.get_method_results[]\nok = y == M(1)(3)";
        assert_agree(src);
        let mut i = Interp::new();
        i.run(src).unwrap();
        assert_eq!(i.get_bool("ok"), Some(true), "sweeps must equal one-shot");
    }

    #[test]
    fn fig4_shaped_master_loop_agrees() {
        // The paper's master-side list plumbing (no MPI): build the job
        // list, range-delete the sent prefix, iterate the transposed rest.
        assert_agree(
            "Lpb = list()\nfor k = 1:8 do\n  Lpb.add_last['pb-' + string(k) + '.bin']\nend\nsent = 2\nLpb(1:sent) = []\nnames = ''\nfor pb = Lpb' do\n  names = names + pb\nend\nn = length(Lpb)",
        );
    }
}

// ---- explicit span rendering ------------------------------------------------

mod error_spans {
    use nsplang::{Engine, Interp};

    /// Rendered `line:col` spans for three representative bad scripts, on
    /// both engines (lexer, runtime-in-statement, runtime-in-nested-block).
    fn rendered(src: &str, engine: Engine) -> String {
        let mut i = Interp::with_engine(engine);
        i.run(src).unwrap_err().to_string()
    }

    #[test]
    fn lex_error_carries_position() {
        for e in [Engine::Tree, Engine::Vm] {
            let msg = rendered("x = 1\ny = @", e);
            assert!(
                msg.contains("2:5"),
                "lex error should point at 2:5, got: {msg}"
            );
        }
    }

    #[test]
    fn runtime_error_points_at_statement() {
        for e in [Engine::Tree, Engine::Vm] {
            let msg = rendered("x = 1\ny = x + undefined_thing", e);
            assert_eq!(msg, "nsp error at 2:1: undefined variable undefined_thing");
        }
    }

    #[test]
    fn nested_statement_span_wins() {
        for e in [Engine::Tree, Engine::Vm] {
            let msg = rendered("ok = 1\nfor k = 1:3 do\n  y = k(2)\nend", e);
            assert_eq!(msg, "nsp error at 3:3: index 2 out of bounds");
        }
    }
}

// ---- both engines under MPI -------------------------------------------------

#[test]
fn rank_parallel_send_recv_agrees_across_engines() {
    use nsplang::Engine;
    // The §3.2 object send/recv exchange, once per engine; receiving rank
    // must see bit-identical bytes (same RNG stream on rank 0).
    let run_with = |engine: Engine| -> Vec<u8> {
        let outputs = World::run(2, move |comm| {
            let rank = comm.rank();
            let mut interp = Interp::with_comm(Rc::new(comm));
            interp.set_engine(engine);
            if rank == 0 {
                interp
                    .run("MCW = mpicomm_create('WORLD')\nA = list('string', %t, rand(4,4))\nMPI_Send_Obj(A, 1, 3, MCW)")
                    .unwrap();
                Vec::new()
            } else {
                interp
                    .run("MCW = mpicomm_create('WORLD')\nB = MPI_Recv_Obj(0, 3, MCW)")
                    .unwrap();
                riskbench::xdrser::serialize_to_bytes(
                    &interp.get_value("B").unwrap(),
                )
            }
        });
        outputs[1].clone()
    };
    let tree_bytes = run_with(Engine::Tree);
    let vm_bytes = run_with(Engine::Vm);
    assert!(!tree_bytes.is_empty());
    assert_eq!(tree_bytes, vm_bytes, "cross-rank payloads must be bit-identical");
}
