//! Integration: the paper's script shapes executed by the `nsplang`
//! interpreter, including the Fig. 4/5 master/slave portfolio pricer on a
//! live `minimpi` world with one interpreter per rank.

use minimpi::World;
use nsplang::Interp;
use std::rc::Rc;

#[test]
fn section_3_3_premia_session() {
    let src = r#"
P = premia_create()
P.set_asset[str="equity"]
P.set_model[str="BlackScholes1dim"]
P.set_option[str="CallEuro"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
"#;
    let mut i = Interp::new();
    i.run(src).unwrap();
    let price = i.get_value("price").unwrap().as_scalar().unwrap();
    assert!((price - 10.4506).abs() < 1e-3);
}

#[test]
fn fig2_sload_session() {
    let dir = std::env::temp_dir().join("it_nsp_fig2");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let src = format!(
        r#"
H.A = rand(4,5)
H.B = rand(4,1)
save('{d}/saved.bin', H)
S = sload('{d}/saved.bin')
H1 = S.unserialize[]
ok = H1.equal[H]
"#,
        d = dir.display()
    );
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_value("ok").unwrap().as_bool(), Some(true));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obj_send_recv_between_interpreted_ranks() {
    // §3.2's A=list('string',%t,rand(4,4)); MPI_Send_Obj / MPI_Recv_Obj
    // example, with an interpreter on each rank.
    let outputs = World::run(2, |comm| {
        let rank = comm.rank();
        let mut interp = Interp::with_comm(Rc::new(comm));
        if rank == 0 {
            interp
                .run(
                    "MCW = mpicomm_create('WORLD')\nA = list('string', %t, rand(4,4))\nMPI_Send_Obj(A, 1, 3, MCW)\nMPI_Send_Obj(A, 1, 4, MCW)",
                )
                .unwrap();
            true
        } else {
            interp
                .run(
                    "MCW = mpicomm_create('WORLD')\nB = MPI_Recv_Obj(0, 3, MCW)\nC = MPI_Recv_Obj(0, 4, MCW)\nok = B.equal[C]",
                )
                .unwrap();
            interp.get_value("ok").unwrap().as_bool().unwrap()
        }
    });
    assert!(outputs[1]);
}

#[test]
fn fig4_style_farm_runs_interpreted() {
    // Scaled-down Fig. 4/5: 8 problems, 1 master + 2 slaves, full
    // pack/probe/mpibuf protocol.
    let dir = std::env::temp_dir().join("it_nsp_fig4");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = farm::portfolio::toy_portfolio(8);
    for (k, job) in jobs.iter().enumerate() {
        riskbench::xdrser::save(
            dir.join(format!("pb-{}.bin", k + 1)),
            &job.problem.to_value(),
        )
        .unwrap();
    }
    let script = format!(
        r#"
TAG = 7
MCW = mpicomm_create('WORLD')
mpi_rank = MPI_Comm_rank(MCW)
mpi_size = MPI_Comm_size(MCW)

function send_pb(name, slv, TAG, MCW)
  ser_obj = sload(name)
  MPI_Send_Obj(name, slv, TAG, MCW)
  pack_obj = MPI_Pack(ser_obj, MCW)
  MPI_Send(pack_obj, slv, TAG, MCW)
endfunction

function [sl, result] = receive_res(TAG, MCW)
  stat = MPI_Probe(-1, -1, MCW)
  sl = stat.src
  result = MPI_Recv_Obj(sl, TAG, MCW)
endfunction

if mpi_rank <> 0 then
  while %t then
    name = MPI_Recv_Obj(0, TAG, MCW)
    if name == '' then break end
    stat = MPI_Probe(-1, -1, MCW)
    elems = MPI_Get_elements(stat, '')
    pack_obj = mpibuf_create(elems)
    stat = MPI_Recv(pack_obj, 0, TAG, MCW)
    ser_obj = MPI_Unpack(pack_obj, MCW)
    P = unserialize(ser_obj)
    P.compute[]
    L = P.get_method_results[]
    MPI_Send_Obj(L(1)(3), 0, TAG, MCW)
  end
else
  Lpb = list()
  for k = 1:8 do
    Lpb.add_last['{d}/pb-' + string(k) + '.bin']
  end
  res = list()
  slv = 1
  sent = 0
  for k = 1:min(mpi_size-1, 8) do
    send_pb(Lpb(k), slv, TAG, MCW)
    slv = slv + 1
    sent = sent + 1
  end
  Lpb(1:sent) = []
  for pb = Lpb' do
    [sl, result] = receive_res(TAG, MCW)
    res.add_last[list(sl, result)]
    send_pb(pb, sl, TAG, MCW)
  end
  for k = 1:sent do
    [sl, result] = receive_res(TAG, MCW)
    res.add_last[list(sl, result)]
  end
  for slv = 1:mpi_size-1 do
    MPI_Send_Obj('', slv, TAG, MCW)
  end
  total = 0
  for r = res do
    total = total + r(2)
  end
  n_res = size(res, '*')
"#,
        d = dir.display()
    ) + "\nend\n";

    let outputs = World::run(3, |comm| {
        let rank = comm.rank();
        let mut interp = Interp::with_comm(Rc::new(comm));
        interp
            .run(&script)
            .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        if rank == 0 {
            Some((
                interp.get_value("total").unwrap().as_scalar().unwrap(),
                interp.get_value("n_res").unwrap().as_scalar().unwrap(),
            ))
        } else {
            None
        }
    });
    let (total, n_res) = outputs[0].unwrap();
    assert_eq!(n_res, 8.0);
    let serial: f64 = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .sum();
    assert!(
        (total - serial).abs() < 1e-9,
        "scripted {total} vs serial {serial}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interpreter_errors_are_reported_not_panicking() {
    let mut i = Interp::new();
    assert!(i.run("x = undefined_thing + 1").is_err());
    assert!(i.run("P = premia_create()\nP.compute[]").is_err()); // incomplete problem
    assert!(i.run("L = list(1)\ny = L(5)").is_err()); // out of bounds
}

#[test]
fn shipped_scripts_parse() {
    // The standalone scripts in scripts/ must stay syntactically valid.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let mut found = 0;
    for entry in std::fs::read_dir(&root).expect("scripts directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("nsp") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        nsplang::parse_program(&src)
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
        found += 1;
    }
    assert!(found >= 4, "expected the shipped scripts, found {found}");
}

#[test]
fn fig2_script_runs_standalone() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let src = std::fs::read_to_string(root.join("fig2_sload.nsp")).unwrap();
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_value("ok").unwrap().as_bool(), Some(true));
    assert_eq!(i.get_value("ok2").unwrap().as_bool(), Some(true));
}

#[test]
fn section33_script_runs_standalone() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let src = std::fs::read_to_string(root.join("section33_premia.nsp")).unwrap();
    let mut i = Interp::new();
    i.run(&src).unwrap();
    assert_eq!(i.get_value("ok").unwrap().as_bool(), Some(true));
}

#[test]
fn rates_workflow_through_interpreter() {
    // The §2 interest-rate extension is reachable from scripts too.
    let src = r#"
P = premia_create()
P.set_asset[str="rates"]
P.set_model[str="Vasicek1dim"]
P.set_option[str="ZCBond"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
"#;
    let mut i = Interp::new();
    i.run(src).unwrap();
    let price = i.get_value("price").unwrap().as_scalar().unwrap();
    assert!(price > 0.0 && price < 1.0, "ZCB price {price}");
}
