//! Property-based integration tests of the serialization stack: arbitrary
//! Nsp value trees survive serialize/unserialize, save/load/sload, the
//! compressor, and MPI pack/unpack — the invariants every transmission
//! strategy rests on.

use nspval::{BoolMatrix, Hash, List, Matrix, StrMatrix, Value};
use proptest::prelude::*;

/// Strategy generating arbitrary Nsp values (depth-bounded).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::scalar),
        any::<bool>().prop_map(Value::boolean),
        "[a-zA-Z0-9 _.:/-]{0,24}".prop_map(Value::string),
        (
            1usize..5,
            1usize..5,
            proptest::collection::vec(-1e6f64..1e6, 1..25)
        )
            .prop_map(|(r, c, mut data)| {
                data.resize(r * c, 0.0);
                Value::Real(Matrix::from_col_major(r, c, data))
            }),
        (1usize..4, proptest::collection::vec(any::<bool>(), 1..4)).prop_map(|(r, mut data)| {
            let c = data.len();
            let mut full = Vec::with_capacity(r * c);
            for _ in 0..r {
                full.extend(data.iter().copied());
            }
            data.clear();
            Value::Bool(BoolMatrix::from_col_major(r, c, {
                full.truncate(r * c);
                full
            }))
        }),
        proptest::collection::vec("[a-z]{0,8}", 1..4).prop_map(|v| Value::Str(StrMatrix::row(v))),
        Just(Value::None),
        Just(Value::empty_matrix()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| Value::List(List::from_vec(items))),
            proptest::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,6}", inner), 0..4).prop_map(
                |pairs| {
                    let mut h = Hash::new();
                    for (k, v) in pairs {
                        h.set(&k, v);
                    }
                    Value::Hash(h)
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_unserialize_round_trips(v in arb_value()) {
        let s = xdrser::serialize(&v);
        let back = xdrser::unserialize(&s).unwrap();
        prop_assert!(v.equal(&back));
    }

    #[test]
    fn compressed_serial_round_trips(v in arb_value()) {
        let s = xdrser::serialize(&v);
        let c = xdrser::compress_serial(&s).unwrap();
        // Transparent decompression inside unserialize (§3.2).
        let back = xdrser::unserialize(&c).unwrap();
        prop_assert!(v.equal(&back));
    }

    #[test]
    fn compress_bytes_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let c = xdrser::compress::compress_bytes(&bytes);
        let d = xdrser::compress::decompress_bytes(&c).unwrap();
        prop_assert_eq!(d, bytes);
    }

    #[test]
    fn incompressible_noise_round_trips(seed in any::<u64>(), len in 0usize..4000) {
        // xorshift noise: essentially incompressible, so the stream is
        // dominated by literals + flag bytes. Must still round trip and
        // never blow up more than the 9/8 worst case plus the header.
        let mut x = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        let c = xdrser::compress::compress_bytes(&bytes);
        prop_assert!(c.len() <= 8 + bytes.len() + bytes.len() / 8 + 1);
        let d = xdrser::compress::decompress_bytes(&c).unwrap();
        prop_assert_eq!(d, bytes);
    }

    #[test]
    fn corrupted_compressed_stream_never_panics(
        v in arb_value(),
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        // Flip one byte anywhere in a genuine compressed stream (header
        // included): decompression must return Ok or Err, never panic,
        // and never allocate past what the guarded header admits.
        let mut c = xdrser::compress::compress_bytes(&xdrser::serialize_to_bytes(&v));
        let pos = ((c.len() - 1) as f64 * pos_frac) as usize;
        c[pos] ^= byte;
        let _ = xdrser::compress::decompress_bytes(&c);
    }

    #[test]
    fn hostile_length_header_rejected(
        claim in any::<u64>(),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Hand-built stream: valid magic, arbitrary claimed length,
        // arbitrary token bytes. Claims beyond the 9x expansion bound
        // must be rejected before any allocation happens.
        let claim = (claim & 0xFFFF_FFFF) as u32;
        let mut s = Vec::with_capacity(8 + tail.len());
        s.extend_from_slice(b"NSPZ");
        s.extend_from_slice(&claim.to_be_bytes());
        s.extend_from_slice(&tail);
        let r = xdrser::compress::decompress_bytes(&s);
        if claim as usize > tail.len() * 9 + 8 {
            prop_assert!(r.is_err());
        }
        // Otherwise Ok or Err are both legitimate — just no panic.
    }

    #[test]
    fn save_load_sload_agree(v in arb_value(), salt in 0u64..u64::MAX) {
        let dir = std::env::temp_dir().join("it_xdr_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("v-{salt:x}.bin"));
        xdrser::save(&path, &v).unwrap();
        let loaded = xdrser::load(&path).unwrap();
        prop_assert!(v.equal(&loaded));
        let s = xdrser::sload(&path).unwrap();
        let expected = xdrser::serialize_to_bytes(&v);
        prop_assert_eq!(s.bytes(), expected.as_slice());
        let unsealed = xdrser::unserialize(&s).unwrap();
        prop_assert!(v.equal(&unsealed));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_never_panics(v in arb_value(), cut_frac in 0.0f64..1.0) {
        let bytes = xdrser::serialize_to_bytes(&v);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return an error or a value — never panic.
        let _ = xdrser::unserialize_bytes(&bytes[..cut]);
    }

    #[test]
    fn corruption_never_panics(v in arb_value(), pos_frac in 0.0f64..1.0, byte in any::<u8>()) {
        let mut bytes = xdrser::serialize_to_bytes(&v);
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] = byte;
        }
        let _ = xdrser::unserialize_bytes(&bytes);
    }
}

#[test]
fn mpi_object_transmission_preserves_arbitrary_values() {
    // A fixed set of tricky values through actual minimpi transmission.
    use minimpi::World;
    let values = vec![
        Value::scalar(f64::MAX),
        Value::scalar(-0.0),
        Value::string(""),
        Value::list(vec![Value::None, Value::empty_matrix()]),
        {
            let mut h = nspval::Hash::new();
            h.set(
                "nested",
                Value::list(vec![Value::Serial(xdrser::serialize(&Value::scalar(1.0)))]),
            );
            Value::Hash(h)
        },
    ];
    let out = World::run(2, |comm| {
        if comm.rank() == 0 {
            for v in &values {
                comm.send_obj(v, 1, 0).unwrap();
            }
            true
        } else {
            for v in &values {
                let (got, _) = comm.recv_obj_serial(0, 0).unwrap();
                assert!(got.equal(v), "mismatch: {got:?} vs {v:?}");
            }
            true
        }
    });
    assert!(out.iter().all(|&b| b));
}
