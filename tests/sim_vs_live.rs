//! Agreement between the discrete-event simulator and the live threaded
//! farm at small scale: the simulator, fed with *measured* per-class
//! costs, must predict the live farm's wall-clock within a reasonable
//! band, and both must show the same qualitative scaling.

use riskbench::clustersim::{simulate_farm, NfsCache, SimConfig, SimJob};
use riskbench::prelude::*;

/// Plain farm via the unified [`farm::run`] entry point.
fn run_plain_farm(
    files: &[std::path::PathBuf],
    slaves: usize,
    strategy: Transmission,
) -> Result<FarmReport, FarmError> {
    run(files, &FarmConfig::new(slaves, strategy))
}

/// Build matched live files + sim jobs for a compute-heavy workload.
fn matched_workload(dir: &std::path::Path) -> (Vec<std::path::PathBuf>, Vec<SimJob>) {
    let jobs: Vec<PortfolioJob> = realistic_portfolio(PortfolioScale::Quick, 130)
        .into_iter()
        .filter(|j| {
            matches!(
                j.class,
                JobClass::AmericanPde | JobClass::BarrierPde | JobClass::LocalVolMc
            )
        })
        .collect();
    assert!(jobs.len() >= 15, "{} jobs", jobs.len());
    std::fs::create_dir_all(dir).unwrap();
    let files: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(k, j)| {
            let p = dir.join(format!("pb-{k}.bin"));
            riskbench::xdrser::save(&p, &j.problem.to_value()).unwrap();
            p
        })
        .collect();
    // Measure each job's real compute cost once.
    let sim_jobs: Vec<SimJob> = jobs
        .iter()
        .enumerate()
        .map(|(k, j)| {
            let t0 = std::time::Instant::now();
            j.problem.compute().unwrap();
            SimJob {
                id: k,
                class: j.class,
                bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
                compute: t0.elapsed().as_secs_f64(),
            }
        })
        .collect();
    (files, sim_jobs)
}

#[test]
fn simulator_predicts_live_makespan_within_band() {
    let dir = std::env::temp_dir().join("it_sim_vs_live");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);
    let cfg = SimConfig::default();

    // On a single-core machine two live slaves time-share one CPU, which
    // the simulator (one CPU per slave) cannot model — restrict to one
    // slave there.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let slave_counts: &[usize] = if cores >= 3 { &[1, 2] } else { &[1] };
    for &slaves in slave_counts {
        let live = run_plain_farm(&files, slaves, Transmission::SerializedLoad)
            .unwrap()
            .elapsed
            .as_secs_f64();
        let sim = simulate_farm(
            &sim_jobs,
            slaves,
            Transmission::SerializedLoad,
            &cfg,
            &mut NfsCache::new(),
        )
        .makespan;
        let ratio = live / sim;
        // Thread scheduling noise and measurement jitter are real; demand
        // agreement within a factor of two, which is tight enough to
        // catch structural modelling errors.
        assert!(
            (0.5..2.0).contains(&ratio),
            "slaves={slaves}: live {live:.3}s vs sim {sim:.3}s (ratio {ratio:.2})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_fault_supervision_is_free() {
    // Regression guard for the supervised master: under a zero-fault
    // plan (and under no plan at all) the supervised farm must produce
    // byte-identical job→(price, std_error) results to the plain
    // Fig. 4 master — supervision may only change behaviour when faults
    // actually occur.
    use riskbench::minimpi::FaultPlan;
    use std::sync::Arc;

    let run_supervised = |files: &[std::path::PathBuf],
                          slaves: usize,
                          strategy: Transmission,
                          cfg: &SupervisorConfig,
                          plan: Option<Arc<FaultPlan>>| {
        let mut fc = FarmConfig::new(slaves, strategy).supervisor(cfg.clone());
        if let Some(plan) = plan {
            fc = fc.fault_plan(plan);
        }
        run(files, &fc)
    };

    let dir = std::env::temp_dir().join("it_zero_fault_supervised");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, _) = matched_workload(&dir);

    let plain = run_plain_farm(&files, 2, Transmission::SerializedLoad).unwrap();
    let cfg = SupervisorConfig::from_cost_model(&riskbench::farm::calibrate::paper_costs(), 2.0);
    let inert = Arc::new(FaultPlan::new(2024));
    let supervised = run_supervised(
        &files,
        2,
        Transmission::SerializedLoad,
        &cfg,
        Some(Arc::clone(&inert)),
    )
    .unwrap();
    let unplanned = run_supervised(&files, 2, Transmission::SerializedLoad, &cfg, None).unwrap();

    // The inert plan must not have injected anything...
    assert!(inert.events().is_empty());
    // ...and the reports must agree exactly, job for job, bit for bit
    // (completion *order* is scheduling-dependent; the sorted view is
    // the invariant).
    let key = |r: &FarmReport| -> Vec<(usize, u64, Option<u64>)> {
        r.by_job()
            .into_iter()
            .map(|(j, p, se)| (j, p.to_bits(), se.map(f64::to_bits)))
            .collect()
    };
    assert_eq!(key(&plain), key(&supervised));
    assert_eq!(key(&plain), key(&unplanned));
    // No phantom degradation bookkeeping either.
    assert!(supervised.failed_jobs.is_empty());
    assert_eq!(supervised.retries, 0);
    assert!(supervised.dead_slaves.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_and_live_emit_identical_per_job_event_kinds() {
    // The tentpole diffability claim: the simulator's event stream uses
    // the *same* per-job phase schema as the live instrumented farm, so
    // one Breakdown aggregator can compare them phase by phase.
    use riskbench::clustersim::simulate_farm_recorded;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join("it_sim_vs_live_kinds");
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(10);
    let files = save_portfolio(&jobs, &dir).unwrap();
    let sim_jobs: Vec<SimJob> = jobs
        .iter()
        .enumerate()
        .map(|(k, j)| SimJob {
            id: k,
            class: j.class,
            bytes: riskbench::xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            compute: 1e-4,
        })
        .collect();

    for strategy in Transmission::ALL {
        let live_rec = Arc::new(Recorder::new(3));
        let report = run(
            &files,
            &FarmConfig::new(2, strategy).recorder(live_rec.clone()),
        )
        .unwrap();
        assert_eq!(report.completed(), 10, "{strategy}");

        let sim_rec = Recorder::new(3);
        simulate_farm_recorded(
            &sim_jobs,
            2,
            strategy,
            &SimConfig::default(),
            &mut NfsCache::new(),
            Some(&sim_rec),
        );

        let kinds = |events: &[Event], job: i64| -> BTreeSet<EventKind> {
            events
                .iter()
                .filter(|e| e.job == job)
                .map(|e| e.kind)
                // Diagnostic marks (CopySaved, ComputeChunk, Steal) are
                // data-dependent bookkeeping, not phases: the live farm
                // emits CopySaved only when an allocation actually gets
                // recycled, which no phase schema should legislate.
                .filter(|k| !EventKind::DIAGNOSTIC.contains(k))
                .collect()
        };
        let live_events = live_rec.events();
        let sim_events = sim_rec.events();
        for job in 0..10i64 {
            assert_eq!(
                kinds(&live_events, job),
                kinds(&sim_events, job),
                "{strategy} job {job}: live vs sim phase schema diverged"
            );
        }
        assert_eq!(live_rec.dropped(), 0);
        assert_eq!(sim_rec.dropped(), 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulator_and_live_farm_agree_on_scaling_direction() {
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        < 4
    {
        eprintln!("skipping: fewer than 4 cores");
        return;
    }
    let dir = std::env::temp_dir().join("it_sim_vs_live_scaling");
    let _ = std::fs::remove_dir_all(&dir);
    let (files, sim_jobs) = matched_workload(&dir);
    let cfg = SimConfig::default();

    let live1 = run_plain_farm(&files, 1, Transmission::SerializedLoad)
        .unwrap()
        .elapsed
        .as_secs_f64();
    let live3 = run_plain_farm(&files, 3, Transmission::SerializedLoad)
        .unwrap()
        .elapsed
        .as_secs_f64();
    let sim1 = simulate_farm(
        &sim_jobs,
        1,
        Transmission::SerializedLoad,
        &cfg,
        &mut NfsCache::new(),
    )
    .makespan;
    let sim3 = simulate_farm(
        &sim_jobs,
        3,
        Transmission::SerializedLoad,
        &cfg,
        &mut NfsCache::new(),
    )
    .makespan;
    // Both must improve substantially from 1 to 3 slaves.
    assert!(live3 < 0.8 * live1, "live: {live1:.3} -> {live3:.3}");
    assert!(sim3 < 0.8 * sim1, "sim: {sim1:.3} -> {sim3:.3}");
    std::fs::remove_dir_all(&dir).ok();
}
