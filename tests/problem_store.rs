//! Integration: the tiered problem store under the live farm.
//!
//! Every byte of problem data reaches the farm through a
//! [`ProblemStore`]; these tests prove the store layer is *correct*, not
//! just fast: cold and warm cached runs price bit-identically to direct
//! disk reads under all three transmission strategies, rewritten files
//! are revalidated (never served stale), explicit invalidation forces a
//! reload, eviction respects the byte budget, and the whole stack
//! survives fault injection under the supervised master.

use riskbench::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn setup(count: usize, tag: &str) -> (Vec<PortfolioJob>, Vec<PathBuf>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("it_problem_store_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(count);
    let files = save_portfolio(&jobs, &dir).unwrap();
    (jobs, files, dir)
}

/// Sorted `(job, price bits)` view of a report.
fn by_job(r: &FarmReport) -> Vec<(usize, u64)> {
    let mut v: Vec<(usize, u64)> = r
        .outcomes
        .iter()
        .map(|o| (o.job, o.price.to_bits()))
        .collect();
    v.sort();
    v
}

#[test]
fn cold_and_warm_cache_match_direct_disk_under_every_strategy() {
    let (_jobs, files, dir) = setup(24, "strategies");
    for strategy in Transmission::ALL {
        // Reference: direct disk reads (the default DirStore path).
        let direct = run(&files, &FarmConfig::new(2, strategy)).unwrap();
        assert_eq!(direct.completed(), 24, "{strategy}");

        // One cache shared by a cold then a warm run.
        let cache = Arc::new(CachingStore::over_dir(16 << 20));
        let cfg = FarmConfig::new(2, strategy).store(cache.clone());
        let cold = run(&files, &cfg).unwrap();
        let warm = run(&files, &cfg).unwrap();

        assert_eq!(by_job(&direct), by_job(&cold), "{strategy}: cold differs");
        assert_eq!(by_job(&direct), by_job(&warm), "{strategy}: warm differs");

        let stats = cache.stats();
        assert_eq!(stats.misses, 24, "{strategy}: every file misses once");
        assert!(stats.hits >= 24, "{strategy}: warm run must hit: {stats:?}");
        assert!(stats.hit_rate() > 0.0, "{strategy}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewritten_problem_file_is_never_served_stale() {
    let (_jobs, files, dir) = setup(10, "rewrite");
    let cache = Arc::new(CachingStore::over_dir(16 << 20));
    let cfg = FarmConfig::new(2, Transmission::SerializedLoad).store(cache.clone());
    let before = run(&files, &cfg).unwrap();

    // Rewrite job 3's file with a *different* problem (different
    // problem → different length → the fingerprint moves).
    let replacement = PremiaProblem::create("BlackScholes1dim", "PutEuro", "CF").unwrap();
    riskbench::xdrser::save(&files[3], &replacement.to_value()).unwrap();
    let expected = replacement.compute().unwrap().price;

    let after = run(&files, &cfg).unwrap();
    let price_of = |r: &FarmReport, job: usize| {
        r.outcomes
            .iter()
            .find(|o| o.job == job)
            .map(|o| o.price)
            .unwrap()
    };
    assert_eq!(
        price_of(&after, 3).to_bits(),
        expected.to_bits(),
        "cache served the pre-rewrite problem"
    );
    // Untouched jobs still priced identically (and from cache).
    for job in (0..10).filter(|&j| j != 3) {
        assert_eq!(
            price_of(&before, job).to_bits(),
            price_of(&after, job).to_bits(),
            "job {job}"
        );
    }
    assert!(cache.stats().invalidations >= 1, "{:?}", cache.stats());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explicit_invalidation_forces_a_backend_reload() {
    let (_jobs, files, dir) = setup(6, "invalidate");
    let cache = Arc::new(CachingStore::over_dir(16 << 20));
    let cfg = FarmConfig::new(2, Transmission::SerializedLoad).store(cache.clone());
    run(&files, &cfg).unwrap();
    let misses_cold = cache.stats().misses;
    assert_eq!(misses_cold, 6);

    for f in &files {
        cache.invalidate(f);
    }
    let report = run(&files, &cfg).unwrap();
    assert_eq!(report.completed(), 6);
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 6, "{stats:?}");
    assert_eq!(stats.misses, 12, "invalidated entries must re-read disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tight_budget_evicts_but_never_corrupts() {
    let (_jobs, files, dir) = setup(20, "evict");
    // Budget holds roughly three problem files: constant churn.
    let one = std::fs::metadata(&files[0]).unwrap().len();
    let cache = Arc::new(CachingStore::over_dir(3 * one + one / 2));
    let cfg = FarmConfig::new(2, Transmission::SerializedLoad).store(cache.clone());

    let direct = run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
    let squeezed = run(&files, &cfg).unwrap();
    let again = run(&files, &cfg).unwrap();

    assert_eq!(by_job(&direct), by_job(&squeezed));
    assert_eq!(by_job(&direct), by_job(&again));
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "budget never forced an eviction: {stats:?}"
    );
    assert!(
        stats.resident_bytes <= cache.budget(),
        "budget exceeded: {stats:?}"
    );
    assert!(stats.resident_entries <= 3, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetched_run_warms_the_cache_it_shares_with_the_master() {
    let (_jobs, files, dir) = setup(12, "prefetch");
    let cache = Arc::new(CachingStore::over_dir(16 << 20));
    let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
        .store(cache.clone())
        .prefetch(4);
    let direct = run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
    let prefetched = run(&files, &cfg).unwrap();
    assert_eq!(by_job(&direct), by_job(&prefetched));
    let stats = cache.stats();
    // Prefetcher + master both fetch each file; whichever lands second
    // is a hit, so hits must be substantial even on a "cold" run.
    assert!(stats.hits > 0, "prefetch produced no cache hits: {stats:?}");
    assert_eq!(stats.misses, 12, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cached_store_survives_truncation_chaos_under_supervision() {
    // The store layer must not break exactly-once accounting when the
    // wire is unreliable: a seed-driven truncation plan under the
    // supervised master, with every fetch routed through a shared cache.
    let (jobs, files, dir) = setup(16, "chaos");
    let expected: Vec<f64> = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .collect();
    let sup = SupervisorConfig {
        job_deadline: Duration::from_millis(150),
        max_attempts: 5,
        backoff_base: Duration::from_millis(2),
        poll: Duration::from_millis(10),
        slave_idle_timeout: Duration::from_millis(900),
        payload_timeout: Duration::from_millis(150),
    };
    let cache = Arc::new(CachingStore::over_dir(16 << 20));
    let plan = Arc::new(FaultPlan::new(0x5EED).with_truncate_rate(0.04));
    let report = run(
        &files,
        &FarmConfig::new(3, Transmission::SerializedLoad)
            .store(cache.clone())
            .supervisor(sup)
            .fault_plan(plan),
    )
    .unwrap();

    // Exactly-once over outcomes ∪ failed_jobs, bit-exact prices.
    let mut seen = vec![false; expected.len()];
    for o in &report.outcomes {
        assert!(!seen[o.job], "job {} twice", o.job);
        seen[o.job] = true;
        assert_eq!(
            o.price.to_bits(),
            expected[o.job].to_bits(),
            "job {} priced wrong under chaos",
            o.job
        );
    }
    for &j in &report.failed_jobs {
        assert!(!seen[j], "job {j} both done and failed");
        seen[j] = true;
    }
    assert!(seen.iter().all(|&s| s), "jobs lost under chaos");
    assert!(cache.stats().fetches > 0);
    std::fs::remove_dir_all(&dir).ok();
}
