//! Deterministic chaos suite: the supervised Robin-Hood farm run under
//! `minimpi`'s seed-driven fault injection.
//!
//! Every scenario here is *reproducible*: a [`minimpi::FaultPlan`]
//! derives each drop/delay/truncate/kill decision purely from
//! `(seed, rank, operation index)`, so the injected schedule is a
//! function of the seed — not of thread interleaving — and a failing
//! seed replays exactly. The suite proves the tentpole claims:
//!
//! * a slave killed mid-portfolio loses nothing: its in-flight job is
//!   requeued and totals match the fault-free run;
//! * message loss is survived under all three transmission strategies
//!   via deadlines + bounded retries;
//! * total collapse (every slave dead) aborts cleanly with
//!   [`farm::FarmError::AllSlavesDead`] instead of hanging;
//! * arbitrary `(jobs, slaves, seed)` combinations account for every
//!   job exactly once across `outcomes ∪ failed_jobs`.

use farm::portfolio::{save_portfolio, toy_portfolio};
use farm::supervisor::SupervisorConfig;
use farm::{run, FarmConfig, FarmError, FarmReport, Transmission};
use minimpi::{FaultPlan, SendFault};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use transport::queue;

/// Plain farm via the unified [`farm::run`] entry point.
fn run_plain_farm(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
) -> Result<FarmReport, FarmError> {
    run(files, &FarmConfig::new(slaves, strategy))
}

/// Supervised farm (with optional fault plan) via [`farm::run`].
fn run_supervised(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
    cfg: &SupervisorConfig,
    plan: Option<Arc<FaultPlan>>,
) -> Result<FarmReport, FarmError> {
    let mut fc = FarmConfig::new(slaves, strategy).supervisor(cfg.clone());
    if let Some(plan) = plan {
        fc = fc.fault_plan(plan);
    }
    run(files, &fc)
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Run `f` under a hard wall-clock bound. A chaos scenario that hangs is
/// itself the bug this suite exists to catch, so the watchdog fails the
/// test instead of letting the harness time out opaquely.
fn with_watchdog<T, F>(secs: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = queue::channel();
    let h = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(Some(v)) => {
            h.join().expect("scenario thread panicked");
            v
        }
        Ok(None) => panic!("chaos scenario exceeded the {secs}s watchdog (hang)"),
        // Disconnected without a value: the scenario thread panicked
        // before sending — join to surface its panic message.
        Err(_) => {
            h.join().expect("scenario thread panicked");
            unreachable!("sender dropped without sending or panicking")
        }
    }
}

/// A portfolio on disk plus its serially computed reference prices.
fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, Vec<f64>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("farm_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(count);
    let paths = save_portfolio(&jobs, &dir).unwrap();
    let expected: Vec<f64> = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .collect();
    (paths, expected, dir)
}

/// Test-scale supervisor timings: jobs price in microseconds, so short
/// deadlines keep retry turnarounds (and the whole suite) fast.
fn chaos_config() -> SupervisorConfig {
    SupervisorConfig {
        job_deadline: Duration::from_millis(150),
        max_attempts: 5,
        backoff_base: Duration::from_millis(2),
        poll: Duration::from_millis(10),
        slave_idle_timeout: Duration::from_millis(900),
        payload_timeout: Duration::from_millis(150),
    }
}

/// Every job appears exactly once across `outcomes ∪ failed_jobs`, and
/// every reported price matches the serial reference bit for bit.
fn assert_exactly_once(report: &FarmReport, expected: &[f64]) {
    let mut seen = vec![false; expected.len()];
    for o in &report.outcomes {
        assert!(o.job < expected.len(), "outcome for unknown job {}", o.job);
        assert!(!seen[o.job], "job {} accounted twice", o.job);
        seen[o.job] = true;
        assert_eq!(
            o.price.to_bits(),
            expected[o.job].to_bits(),
            "job {}: farm {} vs serial {}",
            o.job,
            o.price,
            expected[o.job]
        );
    }
    for &j in &report.failed_jobs {
        assert!(j < expected.len(), "failed unknown job {j}");
        assert!(!seen[j], "job {j} both completed and failed");
        seen[j] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "jobs unaccounted for: {:?}",
        seen.iter()
            .enumerate()
            .filter_map(|(j, &s)| (!s).then_some(j))
            .collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// Scenario: slave killed mid-portfolio
// ---------------------------------------------------------------------------

#[test]
fn slave_killed_mid_portfolio_loses_no_jobs() {
    let (report, expected) = with_watchdog(60, || {
        let (paths, expected, dir) = setup(24, "kill_mid");
        // Slave rank 2 dies at its 11th MPI call. A SerializedLoad job
        // cycle is exactly 3 ops (recv name, recv payload, send result),
        // so op 11 lands *mid-cycle* — inside the payload recv of its 4th
        // dispatch — guaranteeing the master has a job in flight on the
        // rank when it dies (op 10, the cycle boundary, would race the
        // master's dispatch and sometimes die idle).
        let plan = Arc::new(FaultPlan::new(0xC0FFEE).kill_rank_at_op(2, 11));
        let report = run_supervised(
            &paths,
            3,
            Transmission::SerializedLoad,
            &chaos_config(),
            Some(plan),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (report, expected)
    });
    // Nothing lost: the dead slave's in-flight job was requeued and the
    // totals match the fault-free (serial) reference exactly.
    assert_exactly_once(&report, &expected);
    assert!(report.failed_jobs.is_empty(), "{:?}", report.failed_jobs);
    assert_eq!(report.completed(), expected.len());
    // The degradation was observed and recorded.
    assert_eq!(report.dead_slaves, vec![2], "dead slave not detected");
    assert!(report.retries >= 1, "requeue not recorded");
    // The dead slave did some work before dying; the survivors finished.
    assert_eq!(report.per_slave.iter().sum::<usize>(), expected.len());
    assert!(report.per_slave[1] > 0 && report.per_slave[3] > 0);
}

#[test]
fn same_seed_reproduces_identical_schedule_and_results() {
    // The headline determinism property. (1) The decision table is a pure
    // function of the seed: two plans built alike agree on every verdict.
    let mk_plan = || {
        FaultPlan::new(0xDEAD_BEEF)
            .with_drop_rate(0.08)
            .with_delay_rate(0.05, Duration::from_millis(1), Duration::from_millis(5))
            .with_truncate_rate(0.04)
            .kill_rank_at_op(3, 40)
    };
    let (a, b) = (mk_plan(), mk_plan());
    for rank in 0..5 {
        for payload in [8usize, 120, 4096] {
            assert_eq!(
                a.send_schedule(rank, 300, payload),
                b.send_schedule(rank, 300, payload),
                "schedule diverged for rank {rank} payload {payload}"
            );
        }
    }

    // (2) Two full chaos runs under the same seed agree on the outcome:
    // same surviving results, same failures, same dead slaves.
    let run_once = |tag: &str| {
        let (paths, expected, dir) = setup(18, tag);
        let plan = Arc::new(FaultPlan::new(0xDEAD_BEEF).kill_rank_at_op(3, 12));
        let r = run_supervised(
            &paths,
            3,
            Transmission::FullLoad,
            &chaos_config(),
            Some(plan),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (r, expected)
    };
    let ((r1, expected), (r2, _)) =
        with_watchdog(120, move || (run_once("repro_a"), run_once("repro_b")));
    assert_exactly_once(&r1, &expected);
    assert_exactly_once(&r2, &expected);
    assert_eq!(r1.by_job(), r2.by_job(), "results diverged across replays");
    assert_eq!(r1.dead_slaves, r2.dead_slaves);
    assert_eq!(r1.failed_jobs, r2.failed_jobs);
}

// ---------------------------------------------------------------------------
// Scenario: total collapse
// ---------------------------------------------------------------------------

#[test]
fn all_slaves_dead_fails_cleanly_not_hangs() {
    let err = with_watchdog(30, || {
        let (paths, _expected, dir) = setup(12, "collapse");
        // Both slaves die almost immediately.
        let plan = Arc::new(
            FaultPlan::new(7)
                .kill_rank_at_op(1, 2)
                .kill_rank_at_op(2, 2),
        );
        let err = run_supervised(
            &paths,
            2,
            Transmission::SerializedLoad,
            &chaos_config(),
            Some(plan),
        )
        .unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        err
    });
    match err {
        FarmError::AllSlavesDead {
            completed,
            remaining,
        } => {
            assert_eq!(completed + remaining, 12, "jobs unaccounted at collapse");
            assert!(remaining > 0, "collapse with nothing remaining");
        }
        other => panic!("expected AllSlavesDead, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Scenario: message loss + retry, all three transmission strategies
// ---------------------------------------------------------------------------

#[test]
fn dropped_dispatch_is_retried_under_every_strategy() {
    for strategy in Transmission::ALL {
        let (report, expected) = with_watchdog(60, move || {
            let (paths, expected, dir) = setup(10, &format!("drop_{strategy:?}"));
            // The master's very first send (job 0's name message) is lost
            // in flight; the job must come back via deadline + retry.
            let plan = Arc::new(FaultPlan::new(11).force_send(0, 0, SendFault::Drop));
            let report = run_supervised(&paths, 2, strategy, &chaos_config(), Some(plan)).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            (report, expected)
        });
        assert_exactly_once(&report, &expected);
        assert!(
            report.failed_jobs.is_empty(),
            "{strategy:?}: jobs failed {:?}",
            report.failed_jobs
        );
        assert!(
            report.retries >= 1,
            "{strategy:?}: drop survived without a recorded retry"
        );
        assert!(report.dead_slaves.is_empty(), "{strategy:?}: false burial");
    }
}

#[test]
fn truncated_result_is_retried() {
    let (report, expected) = with_watchdog(60, || {
        let (paths, expected, dir) = setup(8, "trunc_result");
        // Slave 1's first reply (its result for its first job) is
        // truncated in flight: the master must discard the mangled frame
        // and recover the job by deadline.
        let plan = Arc::new(FaultPlan::new(13).force_send(1, 0, SendFault::Truncate(3)));
        let report =
            run_supervised(&paths, 2, Transmission::Nfs, &chaos_config(), Some(plan)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (report, expected)
    });
    assert_exactly_once(&report, &expected);
    assert!(report.failed_jobs.is_empty());
    assert!(report.retries >= 1, "truncation survived without a retry");
}

#[test]
fn delayed_results_are_deduplicated_not_double_counted() {
    let (report, expected) = with_watchdog(60, || {
        let (paths, expected, dir) = setup(8, "dedup");
        // Slave 1's first reply is delayed past the job deadline: the
        // master requeues the job, then the straggler answer arrives and
        // must be dropped as a duplicate (first answer wins).
        let plan = Arc::new(FaultPlan::new(17).force_send(
            1,
            0,
            SendFault::Delay(Duration::from_millis(400)),
        ));
        let report =
            run_supervised(&paths, 2, Transmission::Nfs, &chaos_config(), Some(plan)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (report, expected)
    });
    // Exactly-once accounting is the whole assertion here: the delayed
    // duplicate must not show up as an eleventh outcome.
    assert_exactly_once(&report, &expected);
    assert!(report.retries >= 1);
}

// ---------------------------------------------------------------------------
// Zero-fault equivalence: supervision must be free when nothing fails
// ---------------------------------------------------------------------------

#[test]
fn inert_plan_supervised_farm_matches_unsupervised_exactly() {
    let ((plain, supervised, supervised_none), expected) = with_watchdog(60, || {
        let (paths, expected, dir) = setup(20, "inert_eq");
        let plain = run_plain_farm(&paths, 3, Transmission::SerializedLoad).unwrap();
        let inert = Arc::new(FaultPlan::new(99));
        assert!(inert.is_inert());
        let supervised = run_supervised(
            &paths,
            3,
            Transmission::SerializedLoad,
            &chaos_config(),
            Some(Arc::clone(&inert)),
        )
        .unwrap();
        assert!(inert.events().is_empty(), "inert plan injected something");
        let supervised_none = run_supervised(
            &paths,
            3,
            Transmission::SerializedLoad,
            &chaos_config(),
            None,
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        ((plain, supervised, supervised_none), expected)
    });
    assert_exactly_once(&plain, &expected);
    assert_exactly_once(&supervised, &expected);
    // Job-for-job, bit-for-bit identical results.
    assert_eq!(plain.by_job(), supervised.by_job());
    assert_eq!(plain.by_job(), supervised_none.by_job());
    assert!(supervised.failed_jobs.is_empty());
    assert_eq!(supervised.retries, 0, "phantom retries without faults");
    assert!(supervised.dead_slaves.is_empty());
}

// ---------------------------------------------------------------------------
// Property: arbitrary topology × arbitrary fault seed, exactly-once
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_job_accounted_exactly_once_under_arbitrary_faults(
        jobs in 1usize..16,
        slaves in 1usize..5,
        seed in 0u64..1_000_000,
        kill_first_slave in any::<bool>(),
    ) {
        let report = with_watchdog(120, move || {
            let dir = std::env::temp_dir().join(format!(
                "farm_chaos_prop_{jobs}_{slaves}_{seed}_{kill_first_slave}"
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let portfolio = toy_portfolio(jobs);
            let paths = save_portfolio(&portfolio, &dir).unwrap();
            let expected: Vec<f64> = portfolio
                .iter()
                .map(|j| j.problem.compute().unwrap().price)
                .collect();
            let mut plan = FaultPlan::new(seed).with_drop_rate(0.03);
            if kill_first_slave {
                plan = plan.kill_rank_at_op(1, 7);
            }
            let strategy = Transmission::ALL[(seed % 3) as usize];
            let out = run_supervised(
                &paths,
                slaves,
                strategy,
                &chaos_config(),
                Some(Arc::new(plan)),
            );
            std::fs::remove_dir_all(&dir).ok();
            (out, expected)
        });
        let (out, expected) = report;
        match out {
            Ok(report) => {
                // Exactly-once partition of the portfolio.
                let mut seen = vec![false; expected.len()];
                for o in &report.outcomes {
                    prop_assert!(o.job < expected.len());
                    prop_assert!(!seen[o.job], "job {} twice", o.job);
                    seen[o.job] = true;
                    prop_assert_eq!(
                        o.price.to_bits(), expected[o.job].to_bits(),
                        "job {} wrong price", o.job
                    );
                }
                for &j in &report.failed_jobs {
                    prop_assert!(!seen[j], "job {j} both done and failed");
                    seen[j] = true;
                }
                prop_assert!(seen.iter().all(|&s| s), "jobs lost");
            }
            // Legitimate only when the topology could actually collapse.
            Err(FarmError::AllSlavesDead { completed, remaining }) => {
                prop_assert!(kill_first_slave && slaves == 1);
                prop_assert_eq!(completed + remaining, jobs);
            }
            Err(other) => prop_assert!(false, "unexpected farm error: {other}"),
        }
    }
}
