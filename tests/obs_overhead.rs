//! Observability must be free when disabled: a recorder-less run through
//! the unified [`farm::run`] entry point must produce exactly the same
//! report — job for job, price bit for price bit — whatever combination
//! of store features (cache, wire compression, prefetch) is switched on,
//! and enabling a recorder must not change any numerical result either.

use riskbench::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("it_obs_overhead_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(count);
    let files = save_portfolio(&jobs, &dir).unwrap();
    (files, dir)
}

/// Sorted `(job, price bits, std_error bits)` view of a report.
fn by_job(r: &FarmReport) -> Vec<(usize, u64, Option<u64>)> {
    r.by_job()
        .into_iter()
        .map(|(j, p, se)| (j, p.to_bits(), se.map(f64::to_bits)))
        .collect()
}

#[test]
fn recorder_on_changes_no_numbers() {
    let (files, dir) = setup(25, "rec_eq");
    let baseline = run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
    let rec = Arc::new(Recorder::new(3));
    let recorded = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad).recorder(rec.clone()),
    )
    .unwrap();
    assert_eq!(by_job(&baseline), by_job(&recorded));
    // And the recorder actually saw the run.
    assert!(!rec.events().is_empty());
    assert_eq!(rec.dropped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_features_without_recorder_change_no_numbers() {
    // The store instrumentation (cache hit/miss marks, compress spans,
    // prefetch spans) must be a strict no-op when no recorder is
    // attached: every feature combination prices bit-identically to the
    // plain farm, under every transmission strategy.
    let (files, dir) = setup(30, "store_eq");
    for strategy in Transmission::ALL {
        let baseline = run(&files, &FarmConfig::new(2, strategy)).unwrap();
        let combos: Vec<FarmConfig> = vec![
            FarmConfig::new(2, strategy).cache_bytes(1 << 20),
            FarmConfig::new(2, strategy).compress_wire(1),
            FarmConfig::new(2, strategy)
                .cache_bytes(1 << 20)
                .prefetch(4),
            FarmConfig::new(2, strategy)
                .cache_bytes(1 << 20)
                .compress_wire(1)
                .prefetch(8),
        ];
        for (i, cfg) in combos.iter().enumerate() {
            let got = run(&files, cfg).unwrap();
            assert_eq!(
                by_job(&baseline),
                by_job(&got),
                "{strategy} combo {i}: store features changed prices"
            );
            assert!(got.failed_jobs.is_empty());
            assert_eq!(got.retries, 0);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_cache_without_recorder_matches_cold_exactly() {
    // Re-running against an externally owned warm cache must also be
    // numerically invisible — with the recorder disabled the only
    // observable difference is the store's own hit statistics.
    let (files, dir) = setup(20, "warm_eq");
    let store = Arc::new(CachingStore::over_dir(8 << 20));
    let cfg = FarmConfig::new(2, Transmission::SerializedLoad).store(store.clone());
    let cold = run(&files, &cfg).unwrap();
    let warm = run(&files, &cfg).unwrap();
    assert_eq!(by_job(&cold), by_job(&warm));
    let stats = store.stats();
    assert_eq!(stats.misses, 20, "cold pass should miss once per file");
    assert!(stats.hits >= 20, "warm pass should hit the cache");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lanes_off_is_bit_identical_to_the_pre_lane_default() {
    // Off-by-default discipline for the SIMD-lane kernels: an explicit
    // `lanes(1)` — with or without a recorder — must price bit-for-bit
    // like the plain config, and must emit no LaneBatch marks.
    let (files, dir) = setup(20, "lanes_off");
    let baseline = run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
    let scalar = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad).lanes(1),
    )
    .unwrap();
    assert_eq!(by_job(&baseline), by_job(&scalar));
    let rec = Arc::new(Recorder::new(3));
    let recorded = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad)
            .lanes(1)
            .recorder(rec.clone()),
    )
    .unwrap();
    assert_eq!(by_job(&baseline), by_job(&recorded));
    let lane_marks = rec
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::LaneBatch)
        .count();
    assert_eq!(lane_marks, 0, "lanes(1) must not emit LaneBatch marks");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn laned_recorder_changes_no_numbers_and_marks_every_compute() {
    // With lanes on, the recorder is still numerically free: the loud
    // run prices bit-identically to the silent laned run, and every
    // chunked compute carries exactly one LaneBatch mark with the width.
    let (files, dir) = setup(12, "lanes_loud");
    let silent = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad).lanes(8),
    )
    .unwrap();
    let rec = Arc::new(Recorder::new(3));
    let loud = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad)
            .lanes(8)
            .recorder(rec.clone()),
    )
    .unwrap();
    assert_eq!(by_job(&silent), by_job(&loud));
    let bd = Breakdown::from_events(&rec.events());
    assert!(bd.count_of(EventKind::LaneBatch) > 0, "no LaneBatch marks");
    assert_eq!(bd.lane_width(), 8.0);
    assert_eq!(rec.dropped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breakdown_from_recorded_farm_is_consistent() {
    let (files, dir) = setup(30, "breakdown");
    let rec = Arc::new(Recorder::new(4));
    let report = run(
        &files,
        &FarmConfig::new(3, Transmission::SerializedLoad).recorder(rec.clone()),
    )
    .unwrap();
    let events = rec.events();
    let bd = Breakdown::from_events(&events);
    // Every phase-seconds figure is finite and non-negative; compute got
    // attributed once per job; total phase time fits in the cpu-seconds
    // budget of the run.
    assert!(bd.total_s().is_finite() && bd.total_s() >= 0.0);
    let compute_events = events
        .iter()
        .filter(|e| e.kind == EventKind::Compute)
        .count();
    assert_eq!(compute_events, 30);
    let budget = report.elapsed.as_secs_f64() * 4.0;
    assert!(
        bd.total_s() <= budget * 1.5 + 1e-3,
        "phases {}s vs budget {budget}s",
        bd.total_s()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_and_prefetch_events_only_appear_with_recorder() {
    // With a recorder sized to include the prefetcher's virtual rank the
    // store spans show up; the numbers still match the silent run.
    let (files, dir) = setup(16, "store_events");
    let silent = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad)
            .cache_bytes(1 << 20)
            .prefetch(4),
    )
    .unwrap();
    let rec = Arc::new(Recorder::new(4)); // ranks 0..=2 + prefetch rank 3
    let loud = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad)
            .cache_bytes(1 << 20)
            .prefetch(4)
            .recorder(rec.clone()),
    )
    .unwrap();
    assert_eq!(by_job(&silent), by_job(&loud));
    let events = rec.events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert!(count(EventKind::Prefetch) > 0, "no prefetch spans recorded");
    assert!(
        count(EventKind::CacheHit) + count(EventKind::CacheMiss) > 0,
        "no cache marks recorded"
    );
    assert_eq!(rec.dropped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
