//! Observability must be free when disabled: a recorder-less run through
//! the unified [`farm::run`] entry point must produce exactly the same
//! report — job for job, price bit for price bit — as the legacy
//! pre-observability entry points, and enabling a recorder must not
//! change any numerical result either.

use riskbench::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("it_obs_overhead_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = toy_portfolio(count);
    let files = save_portfolio(&jobs, &dir).unwrap();
    (files, dir)
}

/// Sorted `(job, price bits, std_error bits)` view of a report.
fn by_job(r: &FarmReport) -> Vec<(usize, u64, Option<u64>)> {
    r.by_job()
        .into_iter()
        .map(|(j, p, se)| (j, p.to_bits(), se.map(f64::to_bits)))
        .collect()
}

#[test]
fn recorder_off_matches_legacy_entry_point_exactly() {
    let (files, dir) = setup(40, "legacy_eq");
    for strategy in Transmission::ALL {
        #[allow(deprecated)]
        let legacy = farm::run_farm(&files, 3, strategy).unwrap();
        let unified = run(&files, &FarmConfig::new(3, strategy)).unwrap();
        assert_eq!(by_job(&legacy), by_job(&unified), "{strategy}");
        assert_eq!(legacy.completed(), 40, "{strategy}");
        assert!(unified.failed_jobs.is_empty());
        assert_eq!(unified.retries, 0);
        assert!(unified.dead_slaves.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recorder_on_changes_no_numbers() {
    let (files, dir) = setup(25, "rec_eq");
    let baseline = run(&files, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
    let rec = Arc::new(Recorder::new(3));
    let recorded = run(
        &files,
        &FarmConfig::new(2, Transmission::SerializedLoad).recorder(rec.clone()),
    )
    .unwrap();
    assert_eq!(by_job(&baseline), by_job(&recorded));
    // And the recorder actually saw the run.
    assert!(!rec.events().is_empty());
    assert_eq!(rec.dropped(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervised_legacy_wrapper_matches_unified_route() {
    let (files, dir) = setup(20, "sup_eq");
    let cfg = SupervisorConfig::default();
    #[allow(deprecated)]
    let legacy =
        farm::run_supervised_farm(&files, 2, Transmission::Nfs, &cfg, None).unwrap();
    let unified = run(
        &files,
        &FarmConfig::new(2, Transmission::Nfs).supervisor(cfg),
    )
    .unwrap();
    assert_eq!(by_job(&legacy), by_job(&unified));
    assert!(legacy.failed_jobs.is_empty() && unified.failed_jobs.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breakdown_from_recorded_farm_is_consistent() {
    let (files, dir) = setup(30, "breakdown");
    let rec = Arc::new(Recorder::new(4));
    let report = run(
        &files,
        &FarmConfig::new(3, Transmission::SerializedLoad).recorder(rec.clone()),
    )
    .unwrap();
    let events = rec.events();
    let bd = Breakdown::from_events(&events);
    // Every phase-seconds figure is finite and non-negative; compute got
    // attributed once per job; total phase time fits in the cpu-seconds
    // budget of the run.
    assert!(bd.total_s().is_finite() && bd.total_s() >= 0.0);
    let compute_events = events
        .iter()
        .filter(|e| e.kind == EventKind::Compute)
        .count();
    assert_eq!(compute_events, 30);
    let budget = report.elapsed.as_secs_f64() * 4.0;
    assert!(
        bd.total_s() <= budget * 1.5 + 1e-3,
        "phases {}s vs budget {budget}s",
        bd.total_s()
    );
    std::fs::remove_dir_all(&dir).ok();
}
