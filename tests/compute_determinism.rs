//! Bit-identity battery for the chunked compute executor.
//!
//! The contract under test (see `docs/PARALLEL.md`): for every
//! parallelised kernel, the `*_exec` entry points produce **bit-identical**
//! prices for any worker count, because determinism is carried by the
//! chunk layout (fixed-size chunks, one seeded RNG stream per chunk,
//! reduction in chunk order) and never by the thread schedule. The worker
//! count may change *when* a chunk runs, never *what* it computes.
//!
//! Separately, the default farm configuration (`threads = 1`) must keep
//! using the legacy sequential kernels byte-for-byte — intra-slave
//! parallelism is strictly opt-in.

use exec::ExecPolicy;
use pricing::methods::lsm::{lsm_vanilla_bs_exec, LsmConfig};
use pricing::methods::montecarlo::{mc_vanilla_bs_exec, McConfig};
use pricing::models::{BlackScholes, Vasicek};
use pricing::options::Vanilla;
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use proptest::prelude::*;

/// Worker counts that must all agree bitwise.
const WORKERS: [usize; 3] = [1, 2, 8];

fn bits(x: f64) -> u64 {
    x.to_bits()
}

// ---------------------------------------------------------------------------
// One test per parallelised kernel family
// ---------------------------------------------------------------------------

#[test]
fn mc_call_bit_identical_across_worker_counts() {
    let m = BlackScholes::new(100.0, 0.25, 0.04, 0.01);
    let opt = Vanilla::european_call(105.0, 1.5);
    for &antithetic in &[false, true] {
        let cfg = McConfig {
            paths: 30_000,
            time_steps: 1,
            antithetic,
            seed: 7,
        };
        let base = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        for &w in &WORKERS[1..] {
            let r = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(w));
            assert_eq!(
                bits(r.price),
                bits(base.price),
                "MC call price drifted at {w} workers (antithetic={antithetic})"
            );
            assert_eq!(
                bits(r.std_error),
                bits(base.std_error),
                "MC call std error drifted at {w} workers"
            );
        }
    }
}

#[test]
fn lsm_american_put_bit_identical_across_worker_counts() {
    let m = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
    let opt = Vanilla::american_put(110.0, 1.0);
    let cfg = LsmConfig {
        paths: 4_000,
        ..LsmConfig::default()
    };
    let base = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
    for &w in &WORKERS[1..] {
        let r = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(w));
        assert_eq!(
            bits(r.price),
            bits(base.price),
            "LSM put price drifted at {w} workers"
        );
    }
}

#[test]
fn vasicek_bond_bit_identical_across_worker_counts() {
    use pricing::methods::bond::mc_zcb_price_exec;
    let m = Vasicek::new(0.03, 0.8, 0.05, 0.015);
    let cfg = McConfig {
        paths: 8_000,
        time_steps: 32,
        antithetic: false,
        seed: 99,
    };
    let base = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(1));
    for &w in &WORKERS[1..] {
        let r = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(w));
        assert_eq!(
            bits(r.price),
            bits(base.price),
            "Vasicek ZCB price drifted at {w} workers"
        );
    }
}

#[test]
fn chunk_size_is_part_of_the_contract_thread_count_is_not() {
    // Same chunk ⇒ same bits at any worker count; a different chunk is a
    // different (equally valid) estimator. This is the boundary of the
    // determinism contract, stated as a test so nobody "fixes" it.
    let m = BlackScholes::new(100.0, 0.25, 0.04, 0.01);
    let opt = Vanilla::european_call(105.0, 1.5);
    let cfg = McConfig {
        paths: 30_000,
        time_steps: 1,
        antithetic: false,
        seed: 7,
    };
    let a = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(512));
    let b = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).chunk(512));
    let c = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).chunk(256));
    assert_eq!(bits(a.price), bits(b.price));
    assert_ne!(
        bits(a.price),
        bits(c.price),
        "different chunk sizes should give different (valid) samples"
    );
    // Both estimates still agree to Monte-Carlo accuracy.
    assert!((a.price - c.price).abs() < 4.0 * (a.std_error + c.std_error));
}

#[test]
fn problem_level_compute_with_matches_across_worker_counts() {
    // The farm-facing entry point: a PremiaProblem routed through
    // compute_with(pol) must satisfy the same contract as the raw kernels.
    let p = PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 95.0,
            maturity: 2.0,
        },
        MethodSpec::MonteCarlo {
            paths: 20_000,
            time_steps: 16,
            antithetic: true,
            seed: 4242,
        },
    );
    let base = p.compute_with(&ExecPolicy::new(1)).unwrap();
    for &w in &WORKERS[1..] {
        let r = p.compute_with(&ExecPolicy::new(w)).unwrap();
        assert_eq!(bits(r.price), bits(base.price), "{w} workers");
    }
}

// ---------------------------------------------------------------------------
// Property: the contract holds over the seed/path space, not just at
// hand-picked points
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mc_bit_identity_over_seeds(
        seed in 0u64..1_000_000,
        paths in 500usize..6_000,
        strike in 60.0f64..150.0,
    ) {
        let m = BlackScholes::new(100.0, 0.25, 0.04, 0.0);
        let opt = Vanilla::european_call(strike, 1.0);
        let cfg = McConfig { paths, time_steps: 1, antithetic: false, seed };
        let r1 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let r2 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2));
        let r8 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        prop_assert_eq!(bits(r1.price), bits(r2.price));
        prop_assert_eq!(bits(r1.price), bits(r8.price));
        prop_assert_eq!(bits(r1.std_error), bits(r8.std_error));
    }

    #[test]
    fn lsm_bit_identity_over_seeds(
        seed in 0u64..1_000_000,
        paths in 500usize..3_000,
    ) {
        let m = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
        let opt = Vanilla::american_put(100.0, 1.0);
        let cfg = LsmConfig { paths, seed, ..LsmConfig::default() };
        let r1 = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let r8 = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        prop_assert_eq!(bits(r1.price), bits(r8.price));
    }
}
