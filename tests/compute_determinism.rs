//! Bit-identity battery for the chunked compute executor.
//!
//! The contract under test (see `docs/PARALLEL.md`): for every
//! parallelised kernel, the `*_exec` entry points produce **bit-identical**
//! prices for any worker count, because determinism is carried by the
//! chunk layout (fixed-size chunks, one seeded RNG stream per chunk,
//! reduction in chunk order) and never by the thread schedule. The worker
//! count may change *when* a chunk runs, never *what* it computes.
//!
//! Separately, the default farm configuration (`threads = 1`) must keep
//! using the legacy sequential kernels byte-for-byte — intra-slave
//! parallelism is strictly opt-in.
//!
//! The SIMD lane width joins the chunk size on the *other* side of the
//! contract: `lanes` is part of the sampled result (lane kernels consume
//! each chunk's RNG stream in `(group, step, lane)` order), so a fixed
//! lane count must be bit-identical across worker counts while different
//! lane counts are different (equally valid) estimators. `lanes = 1` is
//! the scalar kernel, byte-for-byte.

use exec::ExecPolicy;
use pricing::methods::lsm::{lsm_vanilla_bs_exec, LsmConfig};
use pricing::methods::montecarlo::{mc_vanilla_bs_exec, McConfig};
use pricing::models::{BlackScholes, Vasicek};
use pricing::options::Vanilla;
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use proptest::prelude::*;

/// Worker counts that must all agree bitwise.
const WORKERS: [usize; 3] = [1, 2, 8];

fn bits(x: f64) -> u64 {
    x.to_bits()
}

// ---------------------------------------------------------------------------
// One test per parallelised kernel family
// ---------------------------------------------------------------------------

#[test]
fn mc_call_bit_identical_across_worker_counts() {
    let m = BlackScholes::new(100.0, 0.25, 0.04, 0.01);
    let opt = Vanilla::european_call(105.0, 1.5);
    for &antithetic in &[false, true] {
        let cfg = McConfig {
            paths: 30_000,
            time_steps: 1,
            antithetic,
            seed: 7,
        };
        let base = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        for &w in &WORKERS[1..] {
            let r = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(w));
            assert_eq!(
                bits(r.price),
                bits(base.price),
                "MC call price drifted at {w} workers (antithetic={antithetic})"
            );
            assert_eq!(
                bits(r.std_error),
                bits(base.std_error),
                "MC call std error drifted at {w} workers"
            );
        }
    }
}

#[test]
fn lsm_american_put_bit_identical_across_worker_counts() {
    let m = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
    let opt = Vanilla::american_put(110.0, 1.0);
    let cfg = LsmConfig {
        paths: 4_000,
        ..LsmConfig::default()
    };
    let base = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
    for &w in &WORKERS[1..] {
        let r = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(w));
        assert_eq!(
            bits(r.price),
            bits(base.price),
            "LSM put price drifted at {w} workers"
        );
    }
}

#[test]
fn vasicek_bond_bit_identical_across_worker_counts() {
    use pricing::methods::bond::mc_zcb_price_exec;
    let m = Vasicek::new(0.03, 0.8, 0.05, 0.015);
    let cfg = McConfig {
        paths: 8_000,
        time_steps: 32,
        antithetic: false,
        seed: 99,
    };
    let base = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(1));
    for &w in &WORKERS[1..] {
        let r = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(w));
        assert_eq!(
            bits(r.price),
            bits(base.price),
            "Vasicek ZCB price drifted at {w} workers"
        );
    }
}

#[test]
fn chunk_size_is_part_of_the_contract_thread_count_is_not() {
    // Same chunk ⇒ same bits at any worker count; a different chunk is a
    // different (equally valid) estimator. This is the boundary of the
    // determinism contract, stated as a test so nobody "fixes" it.
    let m = BlackScholes::new(100.0, 0.25, 0.04, 0.01);
    let opt = Vanilla::european_call(105.0, 1.5);
    let cfg = McConfig {
        paths: 30_000,
        time_steps: 1,
        antithetic: false,
        seed: 7,
    };
    let a = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(512));
    let b = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).chunk(512));
    let c = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).chunk(256));
    assert_eq!(bits(a.price), bits(b.price));
    assert_ne!(
        bits(a.price),
        bits(c.price),
        "different chunk sizes should give different (valid) samples"
    );
    // Both estimates still agree to Monte-Carlo accuracy.
    assert!((a.price - c.price).abs() < 4.0 * (a.std_error + c.std_error));
}

// ---------------------------------------------------------------------------
// SIMD lanes: part of the result contract, like the chunk size
// ---------------------------------------------------------------------------

/// Supported lane widths, all of which must honour the worker-count
/// contract independently.
const LANES: [usize; 3] = [1, 4, 8];

#[test]
fn every_kernel_bit_identical_across_worker_counts_at_each_lane_width() {
    use pricing::methods::bond::mc_zcb_price_exec;
    use pricing::methods::lsm::{lsm_basket_exec, lsm_heston_exec};
    use pricing::methods::montecarlo::{mc_basket_exec, mc_heston_exec, mc_local_vol_exec};
    use pricing::models::{Heston, LocalVol, MultiBlackScholes};
    use pricing::options::BasketOption;

    let bs = BlackScholes::new(100.0, 0.25, 0.04, 0.01);
    let call = Vanilla::european_call(105.0, 1.5);
    let mbs = MultiBlackScholes::new(3, 100.0, 0.2, 0.3, 0.05, 0.0);
    let bput = BasketOption::european_put(100.0, 1.0);
    let lv = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
    let hes = Heston::standard(100.0, 0.05);
    let vas = Vasicek::new(0.03, 0.8, 0.05, 0.015);
    let aput = Vanilla::american_put(110.0, 1.0);
    let abput = BasketOption::american_put(100.0, 1.0);
    let mc = McConfig {
        paths: 3_000,
        time_steps: 8,
        antithetic: true,
        seed: 7,
    };
    let lsm = LsmConfig {
        paths: 2_000,
        exercise_dates: 8,
        ..LsmConfig::default()
    };
    // (name, price-at-policy) for every laned kernel family.
    type PriceFn<'a> = Box<dyn Fn(&ExecPolicy) -> f64 + 'a>;
    let kernels: Vec<(&str, PriceFn)> = vec![
        (
            "mc_vanilla",
            Box::new(|p| mc_vanilla_bs_exec(&bs, &call, &mc, p).price),
        ),
        (
            "mc_basket",
            Box::new(|p| mc_basket_exec(&mbs, &bput, &mc, p).price),
        ),
        (
            "mc_local_vol",
            Box::new(|p| mc_local_vol_exec(&lv, &call, &mc, p).price),
        ),
        (
            "mc_heston",
            Box::new(|p| mc_heston_exec(&hes, &call, &mc, p).price),
        ),
        (
            "mc_zcb",
            Box::new(|p| mc_zcb_price_exec(&vas, 2.0, &mc, p).price),
        ),
        (
            "lsm_vanilla",
            Box::new(|p| lsm_vanilla_bs_exec(&bs, &aput, &lsm, p).price),
        ),
        (
            "lsm_basket",
            Box::new(|p| lsm_basket_exec(&mbs, &abput, &lsm, p).price),
        ),
        (
            "lsm_heston",
            Box::new(|p| lsm_heston_exec(&hes, &aput, &lsm, p).price),
        ),
    ];
    for (name, price) in &kernels {
        for lanes in LANES {
            let base = price(&ExecPolicy::new(1).lanes(lanes));
            for &w in &WORKERS[1..] {
                let r = price(&ExecPolicy::new(w).lanes(lanes));
                assert_eq!(
                    bits(r),
                    bits(base),
                    "{name}: price drifted at {w} workers with {lanes} lanes"
                );
            }
        }
    }
}

#[test]
fn lane_width_is_part_of_the_contract_like_the_chunk_size() {
    // A path-dependent kernel consumes draws in lane order, so each lane
    // width is a different (equally valid) estimator — all within
    // Monte-Carlo accuracy of each other.
    use pricing::methods::montecarlo::mc_local_vol_exec;
    use pricing::models::LocalVol;
    let lv = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
    let call = Vanilla::european_call(105.0, 1.5);
    let cfg = McConfig {
        paths: 20_000,
        time_steps: 8,
        antithetic: false,
        seed: 11,
    };
    let s = mc_local_vol_exec(&lv, &call, &cfg, &ExecPolicy::new(4).lanes(1));
    let l4 = mc_local_vol_exec(&lv, &call, &cfg, &ExecPolicy::new(4).lanes(4));
    let l8 = mc_local_vol_exec(&lv, &call, &cfg, &ExecPolicy::new(4).lanes(8));
    assert_ne!(bits(s.price), bits(l4.price));
    assert_ne!(bits(l4.price), bits(l8.price));
    assert!((s.price - l8.price).abs() < 4.0 * (s.std_error + l8.std_error));
}

#[test]
fn lane_tail_handles_path_counts_not_divisible_by_the_width() {
    // Chunks whose length is not a multiple of the lane width finish
    // with a scalar tail on the same chunk stream. Odd path counts must
    // stay worker-count-stable, and a chunk shorter than the lane width
    // (all tail) must still consume its stream in a well-defined order.
    use pricing::methods::montecarlo::mc_heston_exec;
    use pricing::models::Heston;
    let hes = Heston::standard(100.0, 0.05);
    let call = Vanilla::european_call(105.0, 1.5);
    for paths in [1usize, 3, 7, 1_021, 4_099] {
        let cfg = McConfig {
            paths,
            time_steps: 4,
            antithetic: false,
            seed: 5,
        };
        for lanes in LANES[1..].iter().copied() {
            let base = mc_heston_exec(&hes, &call, &cfg, &ExecPolicy::new(1).lanes(lanes));
            for &w in &WORKERS[1..] {
                let r = mc_heston_exec(&hes, &call, &cfg, &ExecPolicy::new(w).lanes(lanes));
                assert_eq!(
                    bits(r.price),
                    bits(base.price),
                    "heston: {paths} paths, {lanes} lanes, {w} workers"
                );
            }
        }
    }
    // A chunk of 4 paths under 8 lanes is *all* tail — scalar draws on
    // the chunk stream — so it matches the scalar kernel on the same
    // chunk layout exactly.
    let cfg = McConfig {
        paths: 64,
        time_steps: 4,
        antithetic: false,
        seed: 5,
    };
    let all_tail = mc_heston_exec(&hes, &call, &cfg, &ExecPolicy::new(2).chunk(4).lanes(8));
    let scalar = mc_heston_exec(&hes, &call, &cfg, &ExecPolicy::new(2).chunk(4).lanes(1));
    assert_eq!(bits(all_tail.price), bits(scalar.price));
}

#[test]
fn problem_level_compute_with_matches_across_worker_counts() {
    // The farm-facing entry point: a PremiaProblem routed through
    // compute_with(pol) must satisfy the same contract as the raw kernels.
    let p = PremiaProblem::new(
        ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
        OptionSpec::Call {
            strike: 95.0,
            maturity: 2.0,
        },
        MethodSpec::MonteCarlo {
            paths: 20_000,
            time_steps: 16,
            antithetic: true,
            seed: 4242,
        },
    );
    let base = p.compute_with(&ExecPolicy::new(1)).unwrap();
    for &w in &WORKERS[1..] {
        let r = p.compute_with(&ExecPolicy::new(w)).unwrap();
        assert_eq!(bits(r.price), bits(base.price), "{w} workers");
    }
}

// ---------------------------------------------------------------------------
// Property: the contract holds over the seed/path space, not just at
// hand-picked points
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mc_bit_identity_over_seeds(
        seed in 0u64..1_000_000,
        paths in 500usize..6_000,
        strike in 60.0f64..150.0,
    ) {
        let m = BlackScholes::new(100.0, 0.25, 0.04, 0.0);
        let opt = Vanilla::european_call(strike, 1.0);
        let cfg = McConfig { paths, time_steps: 1, antithetic: false, seed };
        let r1 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let r2 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2));
        let r8 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        prop_assert_eq!(bits(r1.price), bits(r2.price));
        prop_assert_eq!(bits(r1.price), bits(r8.price));
        prop_assert_eq!(bits(r1.std_error), bits(r8.std_error));
    }

    #[test]
    fn lsm_bit_identity_over_seeds(
        seed in 0u64..1_000_000,
        paths in 500usize..3_000,
    ) {
        let m = BlackScholes::new(100.0, 0.3, 0.05, 0.0);
        let opt = Vanilla::american_put(100.0, 1.0);
        let cfg = LsmConfig { paths, seed, ..LsmConfig::default() };
        let r1 = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let r8 = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        prop_assert_eq!(bits(r1.price), bits(r8.price));
    }

    #[test]
    fn lane_bit_identity_over_seeds_and_ragged_path_counts(
        seed in 0u64..1_000_000,
        paths in 500usize..6_000,
    ) {
        // Arbitrary path counts (almost never lane-aligned): every lane
        // width stays worker-count-stable, and an explicit `lanes(1)` is
        // byte-for-byte the default scalar policy.
        let m = BlackScholes::new(100.0, 0.25, 0.04, 0.0);
        let opt = Vanilla::european_call(105.0, 1.0);
        let cfg = McConfig { paths, time_steps: 1, antithetic: false, seed };
        let plain = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let scalar = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).lanes(1));
        prop_assert_eq!(bits(plain.price), bits(scalar.price));
        prop_assert_eq!(bits(plain.std_error), bits(scalar.std_error));
        for lanes in [4usize, 8] {
            let w1 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1).lanes(lanes));
            let w8 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8).lanes(lanes));
            prop_assert_eq!(bits(w1.price), bits(w8.price));
            prop_assert_eq!(bits(w1.std_error), bits(w8.std_error));
        }
    }
}
