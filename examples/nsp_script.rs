//! Run the paper's Nsp listings as *scripts* through the `nsplang`
//! interpreter — the Fig. 3 "two ways of accessing the library" point:
//! the same Premia/MPI/serialization toolboxes are reachable from the
//! scripting language.
//!
//! Executes (a) the §3.3 Premia session, (b) the Fig. 2 `sload` session,
//! and (c) a Fig. 4/5-shaped master/slave portfolio pricer, with one
//! interpreter per MPI rank over a 4-rank `minimpi` world.
//!
//! Run with: `cargo run --example nsp_script --release`

use minimpi::World;
use nsplang::{Interp, NValue};
use std::rc::Rc;

const SECTION_3_3: &str = r#"
P = premia_create()
P.set_asset[str="equity"]
P.set_model[str="BlackScholes1dim"]
P.set_option[str="CallEuro"]
P.set_method[str="CF"]
P.compute[]
L = P.get_method_results[]
price = L(1)(3)
disp('price = ' + string(price))
"#;

fn fig2_script(dir: &str) -> String {
    format!(
        r#"
H.A = rand(4,5)
H.B = rand(4,1)
save('{dir}/saved.bin', H)
S = sload('{dir}/saved.bin')   // we directly create a Serial object
H1 = S.unserialize[]
ok = H1.equal[H]
disp('sload round trip ok')
A = 1:100
S2 = serialize(A)
S3 = S2.compress[]
A1 = S3.unserialize[]
ok2 = A1.equal[A]
"#
    )
}

/// The Fig. 4/5 portfolio pricer, adapted: same protocol (prime every
/// slave, refeed on answers, empty-name stop message), with the job list
/// built in-script.
fn fig4_script(dir: &str, n_jobs: usize) -> String {
    format!(
        r#"
TAG = 7
MPI_COMM_WORLD = mpicomm_create('WORLD')
mpi_rank = MPI_Comm_rank(MPI_COMM_WORLD)
mpi_size = MPI_Comm_size(MPI_COMM_WORLD)

function send_premia_pb(name, slv, TAG, MPI_COMM_WORLD)
  ser_obj = sload(name)                       // serialized load
  MPI_Send_Obj(name, slv, TAG, MPI_COMM_WORLD)  // send name
  pack_obj = MPI_Pack(ser_obj, MPI_COMM_WORLD)  // pack
  MPI_Send(pack_obj, slv, TAG, MPI_COMM_WORLD)  // send the packed object
endfunction

function [sl, result] = receive_res(TAG, MPI_COMM_WORLD)
  stat = MPI_Probe(-1, -1, MPI_COMM_WORLD)
  sl = stat.src
  result = MPI_Recv_Obj(sl, TAG, MPI_COMM_WORLD)
endfunction

if mpi_rank <> 0 then // Slave part
  while %t then
    name = MPI_Recv_Obj(0, TAG, MPI_COMM_WORLD)   // receives the name
    if name == '' then break end
    stat = MPI_Probe(-1, -1, MPI_COMM_WORLD)
    elems = MPI_Get_elements(stat, '')
    pack_obj = mpibuf_create(elems)               // buffer for the packed object
    stat = MPI_Recv(pack_obj, 0, TAG, MPI_COMM_WORLD)
    ser_obj = MPI_Unpack(pack_obj, MPI_COMM_WORLD) // unpack
    P = unserialize(ser_obj)                       // unserialize
    P.compute[]
    L = P.get_method_results[]
    MPI_Send_Obj(L(1)(3), 0, TAG, MPI_COMM_WORLD)  // send the price back
  end
else // Master part
  Lpb = list()
  for k = 1:{n_jobs} do
    Lpb.add_last['{dir}/pb-' + string(k) + '.bin']
  end
  Nt = size(Lpb, '*')
  res = list()
  slv = 1
  sent = 0
  for k = 1:min(mpi_size-1, Nt) do
    send_premia_pb(Lpb(k), slv, TAG, MPI_COMM_WORLD)
    slv = slv + 1
    sent = sent + 1
  end
  Lpb(1:sent) = []
  for pb = Lpb' do
    [sl, result] = receive_res(TAG, MPI_COMM_WORLD)
    res.add_last[list(sl, result)]
    send_premia_pb(pb, sl, TAG, MPI_COMM_WORLD)
  end
  for k = 1:sent do // we still have `sent` receives to perform
    [sl, result] = receive_res(TAG, MPI_COMM_WORLD)
    res.add_last[list(sl, result)]
  end
  for slv = 1:mpi_size-1 do // tell all slaves to stop working
    MPI_Send_Obj('', slv, TAG, MPI_COMM_WORLD)
  end
  total = 0
  for r = res do
    total = total + r(2)
  end
  disp('portfolio value = ' + string(total))
  save('{dir}/pb-res.bin', res)
end
"#
    )
}

fn main() {
    // (a) §3.3 session.
    println!("== §3.3 Premia session (interpreted) ==");
    let mut i = Interp::new();
    i.echo = true;
    i.run(SECTION_3_3).expect("section 3.3 script");

    // (b) Fig. 2 sload session.
    println!("\n== Fig. 2 sload session (interpreted) ==");
    let dir = std::env::temp_dir().join("riskbench_nsp_script");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut i = Interp::new();
    i.echo = true;
    i.run(&fig2_script(&dir.display().to_string()))
        .expect("fig2 script");
    assert_eq!(i.get_bool("ok"), Some(true));
    assert_eq!(i.get_bool("ok2"), Some(true));

    // (c) Fig. 4/5 parallel pricer: write a small portfolio, run the
    // script on 4 MPI ranks (1 master + 3 slaves).
    println!("\n== Fig. 4/5 master/slave pricer (interpreted, 4 ranks) ==");
    let jobs = farm::portfolio::toy_portfolio(12);
    for (k, job) in jobs.iter().enumerate() {
        let path = dir.join(format!("pb-{}.bin", k + 1));
        riskbench::xdrser::save(&path, &job.problem.to_value()).unwrap();
    }
    let script = fig4_script(&dir.display().to_string(), jobs.len());
    let outputs = World::run(4, |comm| {
        let rank = comm.rank();
        let mut interp = Interp::with_comm(Rc::new(comm));
        interp.run(&script).expect("fig4 script");
        (rank, interp.output)
    });
    for (rank, out) in &outputs {
        for line in out {
            println!("rank {rank}: {line}");
        }
    }
    // Cross-check the scripted result against the Rust API.
    let serial: f64 = jobs
        .iter()
        .map(|j| j.problem.compute().unwrap().price)
        .sum();
    println!("serial Rust total  = {serial:.6}");
    let res = riskbench::xdrser::load(dir.join("pb-res.bin")).unwrap();
    let total: f64 = res
        .as_list()
        .unwrap()
        .iter()
        .map(|r| r.as_list().unwrap().get(1).unwrap().as_scalar().unwrap())
        .sum();
    println!("scripted farm total = {total:.6}");
    assert!((serial - total).abs() < 1e-9, "script and API disagree");
    println!("script == Rust API: ok");
    let _ = NValue::scalar(0.0);
    std::fs::remove_dir_all(&dir).ok();
}
