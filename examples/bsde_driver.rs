//! Drive the Labart–Lelong BSDE Picard iteration three ways and check
//! the iterates agree **bit for bit**:
//!
//! 1. an Nsp *script* that loops one-sweep `compute[]` calls, feeding
//!    each round's price back in through `y_prev=` — the scripted
//!    equivalent of the staged farm's cross-round patching;
//! 2. the in-process Rust API (`bsde_picard_iterates`);
//! 3. the staged farm itself (`Workload::bsde_picard` + `run_workload`),
//!    one dependent round per sweep.
//!
//! Run with: `cargo run --example bsde_driver --release`

use farm::workload::Workload;
use farm::{run_workload, FarmConfig, Transmission};
use nsplang::{Engine, Interp};
use pricing::methods::bsde::{bsde_picard_iterates, BsdeConfig};
use pricing::models::BlackScholes;
use pricing::options::Vanilla;
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};

const PATHS: usize = 4_000;
const TIME_STEPS: usize = 12;
const ROUNDS: usize = 3;
const SEED: u64 = 99;

fn driver_script() -> String {
    format!(
        r#"
Ys = list()
y = 0
for k = 1:{ROUNDS} do
  P = premia_create()
  P.set_asset[str="equity"]
  P.set_model[str="BlackScholes1dim"]
  P.set_option[str="CallEuro"]
  P.set_method[str="MC_BSDE_LabartLelong", paths={PATHS}, time_steps={TIME_STEPS}, picard_rounds=1, y_prev=y, seed={SEED}]
  P.compute[]
  L = P.get_method_results[]
  y = L(1)(3)
  Ys.add_last[y]
  disp('sweep ' + string(k) + ': y = ' + string(y))
end
"#
    )
}

fn scripted_iterates(engine: Engine) -> Vec<f64> {
    let mut i = Interp::with_engine(engine);
    i.echo = true;
    i.run(&driver_script()).expect("driver script");
    i.get_value("Ys")
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_scalar().unwrap())
        .collect()
}

fn main() {
    // (1) The scripted driver, on both interpreter engines.
    println!("== scripted Picard driver (tree engine) ==");
    let tree = scripted_iterates(Engine::Tree);
    println!("\n== scripted Picard driver (bytecode VM) ==");
    let vm = scripted_iterates(Engine::Vm);
    assert_eq!(
        tree.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
        vm.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
        "engines disagree"
    );

    // (2) The in-process Rust API.
    let cfg = BsdeConfig {
        paths: PATHS,
        time_steps: TIME_STEPS,
        rate_spread: 0.05,
        picard_rounds: ROUNDS,
        y_prev: 0.0,
        seed: SEED,
    };
    let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
    let api: Vec<f64> = bsde_picard_iterates(&m, &Vanilla::european_call(100.0, 1.0), &cfg, None)
        .iter()
        .map(|r| r.price)
        .collect();
    println!("\n== in-process bsde_picard_iterates ==");
    for (k, y) in api.iter().enumerate() {
        println!("round {}: y = {y}", k + 1);
    }

    // (3) The staged farm: one dependent round per sweep, each round's
    // dispatch patched with the previous answer.
    let problem = PremiaProblem::new(
        ModelSpec::BlackScholes(m),
        OptionSpec::Call {
            strike: 100.0,
            maturity: 1.0,
        },
        MethodSpec::Bsde {
            paths: PATHS,
            time_steps: TIME_STEPS,
            rate_spread: 0.05,
            picard_rounds: ROUNDS,
            y_prev: 0.0,
            seed: SEED,
        },
    );
    let w = Workload::bsde_picard(problem).expect("BSDE workload");
    let dir = std::env::temp_dir().join("riskbench_bsde_driver");
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_workload(&w, &dir, &FarmConfig::new(2, Transmission::SerializedLoad))
        .expect("staged farm run");
    let farm: Vec<f64> = report.by_job().iter().map(|&(_, price, _)| price).collect();
    println!("\n== staged farm (2 slaves, {ROUNDS} dependent rounds) ==");
    for (k, y) in farm.iter().enumerate() {
        println!("round {}: y = {y}", k + 1);
    }
    std::fs::remove_dir_all(&dir).ok();

    let bits = |v: &[f64]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&tree), bits(&api), "script != Rust API");
    assert_eq!(bits(&api), bits(&farm), "Rust API != staged farm");
    println!("\nscript == Rust API == staged farm, bit for bit: ok");
}
