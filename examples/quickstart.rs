//! Quickstart: the §3.3 workflow end to end.
//!
//! 1. Build pricing problems the way the paper's Nsp session does
//!    (`premia_create`; `set_model`/`set_option`/`set_method`; `compute`).
//! 2. Save one to an XDR file, `sload` it back, ship it through the
//!    serialization stack.
//! 3. Price a small portfolio in parallel with the Robin-Hood farm.
//!
//! Run with: `cargo run --example quickstart --release`

use riskbench::prelude::*;

fn main() {
    // ---- 1. Single problems -------------------------------------------------
    println!("== single problems ==");
    let vanilla = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
    let r = vanilla.compute().unwrap();
    println!(
        "{:40} price {:8.4}  delta {:7.4}",
        vanilla.label(),
        r.price,
        r.delta.unwrap()
    );

    let barrier =
        PremiaProblem::create("BlackScholes1dim", "CallDownOut", "FD_CrankNicolson").unwrap();
    let r = barrier.compute().unwrap();
    println!("{:40} price {:8.4}", barrier.label(), r.price);

    // The paper's own example: American put in 1-D Heston via
    // Longstaff–Schwartz (scaled down so the example runs in seconds).
    let mut heston_amer =
        PremiaProblem::create("Heston1dim", "PutAmer", "MC_AM_Alfonsi_LongstaffSchwartz").unwrap();
    heston_amer.method = MethodSpec::Lsm {
        paths: 10_000,
        exercise_dates: 25,
        basis_degree: 3,
        seed: 42,
    };
    let r = heston_amer.compute().unwrap();
    println!(
        "{:40} price {:8.4} ± {:.4}",
        heston_amer.label(),
        r.price,
        r.std_error.unwrap()
    );

    // ---- 2. Save / sload / serialize (Fig. 2) -------------------------------
    println!("\n== serialization (Fig. 2) ==");
    let dir = std::env::temp_dir().join("riskbench_quickstart");
    std::fs::create_dir_all(&dir).unwrap();
    let fic = dir.join("fic");
    save(&fic, &heston_amer.to_value()).unwrap();
    // sload: file → Serial without materialising the object.
    let s = sload(&fic).unwrap();
    println!("sload('fic') = {s}");
    let back = PremiaProblem::from_value(&unserialize(&s).unwrap()).unwrap();
    assert_eq!(back, heston_amer);
    println!("unserialize round trip: ok");
    // Compression (§3.2 extension).
    let compressed = riskbench::xdrser::compress_serial(&s).unwrap();
    println!("compressed: {} -> {} bytes", s.len(), compressed.len());

    // ---- 3. Parallel portfolio valuation (Figs. 4–5) ------------------------
    println!("\n== Robin-Hood farm ==");
    let jobs = toy_portfolio(500);
    let files = save_portfolio(&jobs, &dir).unwrap();
    for strategy in Transmission::ALL {
        let report = run(&files, &FarmConfig::new(4, strategy)).unwrap();
        println!(
            "{:16} {} jobs in {:?} (per-slave: {:?})",
            strategy.label(),
            report.completed(),
            report.elapsed,
            &report.per_slave[1..]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
