//! The §1 scenario end to end: the daily risk evaluation that motivates
//! the benchmark.
//!
//! "Banking legislation (Bale II) imposes to financial institutions some
//! daily evaluation of the risk they are exposed to … it is necessary to
//! price the contingent claims for various values of these model
//! parameters to measure their sensibilities."
//!
//! Takes a slice of the §4.3 portfolio, expands it into the 7-scenario
//! bump sweep (base, spot±, vol±, rate±), prices the whole sweep with the
//! Robin-Hood farm, and reports per-claim delta/gamma/vega/rho plus the
//! book-level aggregates a risk-control desk would file.
//!
//! Run with: `cargo run --example risk_evaluation --release`

use farm::risk::{aggregate_risk, outcomes_to_prices, risk_sweep, BumpSpec, Scenario};
use riskbench::prelude::*;

fn main() {
    // A slice of the realistic portfolio (class proportions preserved).
    let claims = realistic_portfolio(PortfolioScale::Quick, 250);
    println!(
        "book: {} claims (stride-250 slice of the §4.3 portfolio)",
        claims.len()
    );

    // Expand into atomic computations: 7 scenarios per claim.
    let bump = BumpSpec::default();
    let sweep = risk_sweep(&claims, &bump);
    println!(
        "risk sweep: {} atomic computations ({} scenarios per claim; the full\nbook at this granularity is {} computations — the paper's §1 speaks of ~10⁶)",
        sweep.len(),
        Scenario::ALL.len(),
        7931 * Scenario::ALL.len(),
    );

    // Write the sweep as a portfolio of problem files and farm it.
    let dir = std::env::temp_dir().join("riskbench_risk_eval");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let files: Vec<_> = sweep
        .iter()
        .enumerate()
        .map(|(k, j)| {
            let p = dir.join(format!("pb-{k:05}.bin"));
            riskbench::xdrser::save(&p, &j.problem.to_value()).unwrap();
            p
        })
        .collect();
    let t0 = std::time::Instant::now();
    let report = run(&files, &FarmConfig::new(4, Transmission::SerializedLoad)).unwrap();
    println!(
        "farmed {} computations over 4 slaves in {:?}",
        report.completed(),
        t0.elapsed()
    );

    // Aggregate into per-claim sensitivities.
    let prices = outcomes_to_prices(sweep.len(), &report.outcomes);
    let risks = aggregate_risk(&sweep, &prices, &bump, &|_| 100.0);

    println!("\nper-claim risk (first 8 claims):");
    println!(
        "{:>6} {:>22} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "claim", "class", "price", "delta", "gamma", "vega", "rho"
    );
    for (r, c) in risks.iter().zip(&claims).take(8) {
        println!(
            "{:>6} {:>22} {:>10.4} {:>9.4} {:>9.5} {:>10.4} {:>10.4}",
            r.claim,
            format!("{:?}", c.class),
            r.price,
            r.delta,
            r.gamma,
            r.vega,
            r.rho
        );
    }

    // Book-level aggregates (unit notional per claim).
    let total_value: f64 = risks.iter().map(|r| r.price).sum();
    let total_delta: f64 = risks.iter().map(|r| r.delta).sum();
    let total_vega: f64 = risks.iter().map(|r| r.vega).sum();
    let total_rho: f64 = risks.iter().map(|r| r.rho).sum();
    println!("\nbook aggregates:");
    println!("  value: {total_value:.2}");
    println!("  delta: {total_delta:.4}  (shares of spot per claim set)");
    println!("  vega:  {total_vega:.2}   (per unit vol)");
    println!("  rho:   {total_rho:.2}   (per unit rate)");
    std::fs::remove_dir_all(&dir).ok();
}
