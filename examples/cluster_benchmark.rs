//! Regenerate all three of the paper's tables on the simulated cluster —
//! the "testing parallel architectures" use case of the title: swap the
//! `SimConfig` (network latency/bandwidth, NFS service times, master
//! costs) to see how a *different* architecture would score on the same
//! standardized workload.
//!
//! Run with: `cargo run --example cluster_benchmark --release`

use riskbench::clustersim::{
    format_table, table1_rows, table2_rows, table3_rows, NetworkParams, SimConfig, TABLE1_CPUS,
    TABLE2_CPUS, TABLE3_CPUS,
};

fn main() {
    let gige = SimConfig::default();
    println!("=== Reference architecture: GigE cluster (the paper's testbed) ===\n");
    println!(
        "{}",
        format_table("Table I (sload)", &table1_rows(&TABLE1_CPUS, &gige))
    );
    for (strategy, rows) in table2_rows(&TABLE2_CPUS, &gige) {
        println!("{}", format_table(&format!("Table II — {strategy}"), &rows));
    }
    for (strategy, rows) in table3_rows(&TABLE3_CPUS, &gige) {
        println!(
            "{}",
            format_table(&format!("Table III — {strategy}"), &rows)
        );
    }

    // A second architecture: 10× faster interconnect (InfiniBand-like).
    let ib = SimConfig {
        network: NetworkParams {
            latency: 6e-6,
            bandwidth: 1.25e9,
        },
        ..SimConfig::default()
    };
    println!("\n=== Alternative architecture: low-latency interconnect ===\n");
    for (strategy, rows) in table2_rows(&TABLE2_CPUS, &ib) {
        println!(
            "{}",
            format_table(
                &format!("Table II on fast interconnect — {strategy}"),
                &rows
            )
        );
    }
    println!(
        "(Compare the full-load columns: a faster network moves the Table II\nbottleneck from the wire to the master's serialization CPU, which is\nexactly why the paper's sload strategy matters.)"
    );
}
