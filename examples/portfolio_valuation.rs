//! The §4.3 scenario: overnight valuation of a realistic bank portfolio.
//!
//! Builds the paper's 7 931-claim portfolio composition (scaled down with
//! a stride so the example finishes in about a minute on a laptop), saves
//! it as a directory of XDR problem files, prices it with the live
//! threaded Robin-Hood farm at several worker counts, and prints the
//! Table-III-style time/speedup rows plus a per-class breakdown.
//!
//! Run with: `cargo run --example portfolio_valuation --release`

use riskbench::clustersim::speedup_ratio;
use riskbench::prelude::*;
use std::collections::HashMap;

fn main() {
    let stride = 100; // ~80 claims, class proportions preserved
    let jobs = realistic_portfolio(PortfolioScale::Quick, stride);
    println!(
        "realistic portfolio: {} claims (stride {} of the full 7931)",
        jobs.len(),
        stride
    );
    let mut by_class: HashMap<JobClass, usize> = HashMap::new();
    for j in &jobs {
        *by_class.entry(j.class).or_default() += 1;
    }
    for class in JobClass::ALL {
        println!(
            "  {:?}: {}",
            class,
            by_class.get(&class).copied().unwrap_or(0)
        );
    }

    let dir = std::env::temp_dir().join("riskbench_portfolio_valuation");
    let _ = std::fs::remove_dir_all(&dir);
    let files = save_portfolio(&jobs, &dir).unwrap();
    println!("saved {} problem files to {}", files.len(), dir.display());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("\nlive Robin-Hood farm (serialized load), this machine ({cores} cores):");
    println!("{:>8} {:>12} {:>14}", "CPUs", "Time (s)", "Speedup ratio");
    let mut t2 = None;
    let mut last_report = None;
    for slaves in [1usize, 2, 4, 8] {
        if slaves > cores {
            break;
        }
        let report = run(
            &files,
            &FarmConfig::new(slaves, Transmission::SerializedLoad),
        )
        .unwrap();
        let t = report.elapsed.as_secs_f64();
        let t2v = *t2.get_or_insert(t);
        println!(
            "{:>8} {:>12.3} {:>14.4}",
            slaves + 1,
            t,
            speedup_ratio(t2v, slaves + 1, t)
        );
        last_report = Some(report);
    }

    // Portfolio value = sum of position prices (unit notional each).
    if let Some(report) = last_report {
        let total: f64 = report.outcomes.iter().map(|o| o.price).sum();
        println!(
            "\nportfolio value (sum of {} claim prices): {total:.2}",
            report.completed()
        );
    }

    // The §5 extensions on the same workload.
    println!("\n§5 extensions:");
    let batched =
        farm::batching::run_batched_farm(&files, 4, Transmission::SerializedLoad, 8).unwrap();
    println!(
        "  batched farm (batch=8, 4 slaves):      {:?}",
        batched.elapsed
    );
    let hier =
        farm::hierarchy::run_hierarchical_farm(&files, 2, 2, Transmission::SerializedLoad).unwrap();
    println!(
        "  hierarchical farm (2 groups × 2 slaves): {:?}",
        hier.elapsed
    );
    std::fs::remove_dir_all(&dir).ok();
}
