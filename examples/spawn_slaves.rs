//! Fig. 1: dynamic process creation — `NEWORLD = NSP_spawn(n)`.
//!
//! The paper's master Nsp spawns slave interpreters with
//! `MPI_Comm_spawn` and merges them into one communicator with
//! `MPI_Intercomm_merge`. Here the master thread spawns three interpreter
//! ranks, each executing the transmitted command string (the Fig. 1
//! `cmd`), and interacts with them through the merged communicator.
//!
//! Run with: `cargo run --example spawn_slaves --release`

use minimpi::{SpawnedWorld, ANY_SOURCE};
use nsplang::Interp;
use nspval::Value;
use std::rc::Rc;

fn main() {
    // The command each spawned child executes, as in Fig. 1's
    // `args=["-name","nsp-child","-e", cmd]`: here the child script
    // announces itself and then answers pricing requests until stopped.
    let cmd = r#"
TAG = 5
MCW = mpicomm_create('WORLD')
rank = MPI_Comm_rank(MCW)
MPI_Send_Obj('child ' + string(rank) + ' ready', 0, TAG, MCW)
while %t then
  msg = MPI_Recv_Obj(0, TAG, MCW)
  if msg == '' then break end
  P = premia_create()
  P.set_asset[str="equity"]
  P.set_model[str="BlackScholes1dim"]
  P.set_option[str=msg]
  P.set_method[str="CF"]
  P.compute[]
  L = P.get_method_results[]
  MPI_Send_Obj(L(1)(3), 0, TAG, MCW)
end
"#;

    println!("spawning 3 Nsp slaves (MPI_Comm_spawn + MPI_Intercomm_merge)...");
    let spawned = SpawnedWorld::spawn(3, move |comm| {
        let mut interp = Interp::with_comm(Rc::new(comm));
        interp.run(cmd).expect("child script");
    });
    let master = spawned.comm();
    const TAG: i32 = 5;

    // Children announce themselves.
    for _ in 0..3 {
        let (v, st) = master.recv_obj(ANY_SOURCE, TAG).unwrap();
        println!("rank {}: {}", st.src, v.as_str().unwrap());
    }

    // Farm out a few pricing requests by option name.
    let requests = [
        "CallEuro", "PutEuro", "CallEuro", "PutEuro", "CallEuro", "PutEuro",
    ];
    let mut child = 1;
    for name in &requests {
        master.send_obj(&Value::string(*name), child, TAG).unwrap();
        child = 1 + (child % 3);
    }
    let mut prices = Vec::new();
    for _ in 0..requests.len() {
        let (v, st) = master.recv_obj(ANY_SOURCE, TAG).unwrap();
        prices.push((st.src, v.as_scalar().unwrap()));
    }
    prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (rank, price) in &prices {
        println!("slave {rank} priced: {price:.4}");
    }

    // Stop the children and reap them.
    for child in 1..=3 {
        master.send_obj(&Value::string(""), child, TAG).unwrap();
    }
    spawned.join();
    println!("all slaves joined.");
}
