#!/usr/bin/env bash
# Tier-1 gate for this repository (documented in ROADMAP.md).
#
#   1. release build of the whole workspace
#   2. full test suite (quiet); a failing run is retried ONCE so that
#      machine-load flakes in the timing-sensitive live-farm tests do not
#      mask real regressions — deterministic failures (the chaos suite is
#      seed-driven) reproduce on the retry and still fail the gate
#   3. clippy over the workspace with warnings denied
#
# Usage: ./scripts/ci.sh [extra cargo-test args]

set -uo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release || exit 1

echo "==> cargo test -q --workspace $*"
if ! cargo test -q --workspace "$@"; then
    echo "==> test failure; retrying once to rule out machine-load flakes"
    run cargo test -q --workspace "$@" || exit 1
fi

# Clippy is part of the gate when the component is installed (it is on
# the standard toolchain; skip gracefully on minimal installs).
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets -- -D warnings || exit 1
else
    echo "==> clippy unavailable; skipping lint stage"
fi

echo "==> tier-1 gate green"
