#!/usr/bin/env bash
# Tier-1 gate for this repository (documented in ROADMAP.md).
#
#   1. dependency hygiene: the workspace must resolve entirely from
#      in-repo path crates, and every shim must be one documented in
#      shims/README.md (the build environment has no registry access)
#   2. release build of the whole workspace
#   3. observability smoke: `table2 --breakdown` self-checks the §4.2
#      cost decomposition (sload prepare strictly cheapest) and exits
#      nonzero on any violated invariant; the `--warm` store smoke and
#      the `--threads 8` thread-scaling smoke do the same for the PR 3/4
#      knobs and commit BENCH_3.json / BENCH_4.json; the
#      `--threads 8 --lanes 8` SIMD-lane smoke writes BENCH_6.json and
#      bench_gate fails on any compute-bucket regression against the
#      committed artifacts; the `serve_smoke` service smoke writes
#      BENCH_7.json (cold wave computes, warm wave fully memoised,
#      warm p99 <= cold p99) and bench_gate re-validates its request
#      accounting; the `shard_smoke` sharded-masters smoke writes
#      BENCH_8.json (bit-identical prices across shard counts and
#      transport backends, steals present, calibrated transport costs,
#      monotone simulated makespans up to 512 cores) and bench_gate
#      re-validates its structure; the `vm_smoke` script-dispatch smoke
#      writes BENCH_9.json (nsplang bytecode VM >= 5x faster than the
#      tree-walker on a Fig. 4-shaped driver script, engines
#      bit-identical, cheap lowering) and bench_gate re-validates it;
#      the `workload_smoke` heterogeneous-workload smoke writes
#      BENCH_10.json (per-class compute present for every class of the
#      mixed portfolio, LPT makespan <= FIFO under calibrated costs,
#      staged BSDE live trace byte-identical to the staged simulator)
#      and bench_gate re-validates it; the `--calibrate-classes` smoke
#      prints the per-class grain costs and self-checks the BSDE
#      dominance ordering;
#      the transport gate quarantines raw mpsc channels inside
#      crates/transport; the allocation gate bans hot-loop allocations
#      inside the kernels' ALLOC-FREE regions; the hash gate bans name
#      lookups inside the VM dispatch loop's HASH-FREE region
#   4. full test suite (quiet); a failing run is retried ONCE so that
#      machine-load flakes in the timing-sensitive live-farm tests do not
#      mask real regressions — deterministic failures (the chaos suite is
#      seed-driven) reproduce on the retry and still fail the gate
#   5. clippy over the workspace with warnings denied
#
# Usage: ./scripts/ci.sh [extra cargo-test args]

set -uo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

echo "==> dependency allowlist (shims/README.md)"
# Every shim directory must be documented in the shims/README.md table.
allow=$(sed -n 's/^| `\([a-z_]*\)`.*/\1/p' shims/README.md)
for d in shims/*/; do
    name=$(basename "$d")
    if ! printf '%s\n' "$allow" | grep -qx "$name"; then
        echo "error: shim '$name' is not documented in shims/README.md"
        exit 1
    fi
done
# No crate in the graph may come from a registry or git source: offline
# builds require every package to be a path dependency inside this repo.
external=$(cargo metadata --format-version 1 2>/dev/null \
    | grep -o '"source":"[^"]*"' | sort -u)
if [ -n "$external" ]; then
    echo "error: non-path dependencies in the workspace graph:"
    echo "$external"
    exit 1
fi

echo "==> deprecation gate: run_farm / run_supervised_farm / recv_obj_raw symbols are gone"
# The store-backed entry points (FarmConfig::run / run_supervised) are the
# only surface; the deprecated raw helpers were deleted outright, so any
# reappearance — definition or caller, in any module — fails the gate.
# Comment lines are ignored.
stragglers=$(grep -rnE '\b(run_farm|run_supervised_farm|recv_obj_raw)\s*\(' \
    --include='*.rs' crates tests benches 2>/dev/null \
    | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)')
if [ -n "$stragglers" ]; then
    echo "error: deleted farm/comm entry points have reappeared:"
    echo "$stragglers"
    exit 1
fi

echo "==> scheduler gate: no ANY_SOURCE receives in crates/farm outside the sched driver"
# Every master decision must flow through the sched state machine: the
# one place the farm crate is allowed to receive from ANY_SOURCE is the
# driver module that feeds scheduler events (drive_plain /
# drive_supervised / recv_any). Comment lines are ignored.
anysrc=$(grep -rnE 'recv_obj(_timeout)?\(ANY_SOURCE|probe\(ANY_SOURCE|discard\(ANY_SOURCE' \
    --include='*.rs' crates/farm 2>/dev/null \
    | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)' \
    | grep -v -E '^crates/farm/src/driver\.rs:')
if [ -n "$anysrc" ]; then
    echo "error: ANY_SOURCE receive outside crates/farm/src/driver.rs (route it through the sched driver):"
    echo "$anysrc"
    exit 1
fi

echo "==> transport gate: no raw channel construction outside crates/transport"
# Every message queue in the workspace rides the pluggable transport
# layer (docs/TRANSPORT.md); std::sync::mpsc is quarantined inside
# crates/transport (its queue module wraps it once). Direct mpsc use
# anywhere else bypasses the Transport trait's fault-injection,
# instrumentation and readiness contracts. Comment lines are ignored.
rawchan=$(grep -rnE 'std::sync::mpsc|\bmpsc::(channel|sync_channel|Sender|SyncSender|Receiver)\b' \
    --include='*.rs' crates tests benches examples 2>/dev/null \
    | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)' \
    | grep -v -E '^crates/transport/src/')
if [ -n "$rawchan" ]; then
    echo "error: raw mpsc channel construction outside crates/transport (use transport::queue or a Transport backend):"
    echo "$rawchan"
    exit 1
fi

run cargo build --workspace --release || exit 1

# Observability smoke on a small portfolio: the breakdown self-checks
# (non-empty report, phase seconds within the cpu-seconds budget, no
# dropped events, serialized-load prepare strictly the cheapest) and
# exits nonzero if any invariant fails.
echo "==> cargo run -p bench --bin table2 --release -q -- --breakdown --jobs 2000 (self-checking; output suppressed)"
cargo run -p bench --bin table2 --release -q -- --breakdown --jobs 2000 >/dev/null || exit 1

# Store smoke: the warm-cache breakdown self-checks that every strategy's
# warm prepare phase is strictly cheaper than its cold run, that the cache
# reports a nonzero hit-rate, and that wait/compute are untouched (the
# checks live in bench::breakdown and fail the process). The JSON line is
# captured as the committed benchmark artifact.
echo "==> cargo run -p bench --bin table2 --release -q -- --breakdown --warm --jobs 10000 --cpus 8 (store smoke -> BENCH_3.json)"
store_out=$(cargo run -p bench --bin table2 --release -q -- --breakdown --warm --jobs 10000 --cpus 8) || exit 1
if ! printf '%s\n' "$store_out" | grep -q 'cache hit-rate'; then
    echo "error: warm breakdown reported no cache hit-rate line"
    exit 1
fi
printf '%s\n' "$store_out" | sed -n 's/^JSON: //p' > BENCH_3.json
if ! grep -q '"cache_hit_rate"' BENCH_3.json; then
    echo "error: BENCH_3.json missing cache_hit_rate column"
    exit 1
fi

# Thread-scaling smoke: the 8-thread breakdown self-checks that the
# compute phase shrinks ~linearly (>= threads/2) while prepare/wire/wait
# are unchanged, and that ComputeChunk diagnostics flow (the checks live
# in bench::breakdown::check_thread_scaling and fail the process). The
# JSON line is the committed PR 4 artifact.
echo "==> cargo run -p bench --bin table2 --release -q -- --breakdown --threads 8 --jobs 2000 --cpus 4 (thread-scaling smoke -> BENCH_4.json)"
thr_out=$(cargo run -p bench --bin table2 --release -q -- --breakdown --threads 8 --jobs 2000 --cpus 4) || exit 1
if ! printf '%s\n' "$thr_out" | grep -q 'intra-slave parallelism'; then
    echo "error: threaded breakdown reported no intra-slave parallelism line"
    exit 1
fi
printf '%s\n' "$thr_out" | sed -n 's/^JSON: //p' > BENCH_4.json
if ! grep -q '"parallelism"' BENCH_4.json; then
    echo "error: BENCH_4.json missing parallelism column"
    exit 1
fi

# SIMD-lane smoke: the 8-thread 8-lane breakdown self-checks that the
# compute phase is at least 2x below the threads-only row while
# prepare/wire/wait are unchanged and LaneBatch marks flow (the checks
# live in bench::breakdown::check_lane_scaling and fail the process).
# The JSON line is the committed PR 6 artifact, and bench_gate compares
# its buckets against the committed BENCH_4.json / BENCH_3.json so any
# compute-model regression fails the gate.
echo "==> cargo run -p bench --bin table2 --release -q -- --breakdown --threads 8 --lanes 8 --jobs 2000 --cpus 4 (lane smoke -> BENCH_6.json)"
lane_out=$(cargo run -p bench --bin table2 --release -q -- --breakdown --threads 8 --lanes 8 --jobs 2000 --cpus 4) || exit 1
if ! printf '%s\n' "$lane_out" | grep -q 'simd lanes x8 alloc-free'; then
    echo "error: lane breakdown reported no 'simd lanes' line"
    exit 1
fi
printf '%s\n' "$lane_out" | sed -n 's/^JSON: //p' > BENCH_6.json
if ! grep -q '"lanes"' BENCH_6.json; then
    echo "error: BENCH_6.json missing lanes column"
    exit 1
fi

# Service smoke: one live serve::Session prices a cold wave of distinct
# portfolios, then a warm wave of duplicates. The bin self-checks that
# every ticket is answered, the warm wave is fully memoised and
# bit-identical, nothing sheds, and the warm p99 sits at or below the
# cold p99 (the checks live in serve_smoke and fail the process). The
# JSON line is the PR 7 artifact; bench_gate re-validates its request
# accounting and memo structure alongside the committed baselines.
echo "==> cargo run -p bench --bin serve_smoke --release -q (service smoke -> BENCH_7.json)"
serve_out=$(cargo run -p bench --bin serve_smoke --release -q) || exit 1
if ! printf '%s\n' "$serve_out" | grep -q 'memo hit-rate'; then
    echo "error: serve smoke reported no memo hit-rate line"
    exit 1
fi
printf '%s\n' "$serve_out" | sed -n 's/^JSON: //p' > BENCH_7.json
if ! grep -q '"memo_hits"' BENCH_7.json; then
    echo "error: BENCH_7.json missing memo_hits column"
    exit 1
fi
# Sharded peer-master smoke: live 1/2/4-shard runs over a heavy-tailed
# portfolio on the channel backend plus a 2-shard run on the
# multi-process socket backend. The bin self-checks bit-identical
# prices across all four configurations, steal events in every
# multi-shard run, a bounded multi-shard makespan, ping-pong-calibrated
# transport costs (socket dearer per message than channel), monotone
# simulated makespans and a complete 512-core simulator row (the checks
# live in shard_smoke and fail the process). The JSON line is the PR 8
# artifact; bench_gate re-validates its structure.
echo "==> cargo run -p bench --bin shard_smoke --release -q (sharded masters smoke -> BENCH_8.json)"
shard_out=$(cargo run -p bench --bin shard_smoke --release -q) || exit 1
if ! printf '%s\n' "$shard_out" | grep -q 'prices bit-identical'; then
    echo "error: shard smoke reported no price-identity line"
    exit 1
fi
printf '%s\n' "$shard_out" | sed -n 's/^JSON: //p' > BENCH_8.json
if ! grep -q '"sim_512_jobs"' BENCH_8.json; then
    echo "error: BENCH_8.json missing sim_512_jobs column"
    exit 1
fi
# Script-dispatch smoke: both nsplang engines run the same Fig. 4-shaped
# portfolio driver script; the bin self-checks bit-identical bindings,
# price lists and RNG streams across engines, a >= 5x VM speedup over the
# tree-walker (best-of-reps), and a lowering pass under half a VM run
# (the checks live in vm_smoke and fail the process). The JSON line is
# the PR 9 artifact; bench_gate re-validates its structure.
echo "==> cargo run -p bench --bin vm_smoke --release -q (script-dispatch smoke -> BENCH_9.json)"
vm_out=$(cargo run -p bench --bin vm_smoke --release -q) || exit 1
if ! printf '%s\n' "$vm_out" | grep -q 'vm speedup'; then
    echo "error: vm smoke reported no speedup line"
    exit 1
fi
printf '%s\n' "$vm_out" | sed -n 's/^JSON: //p' > BENCH_9.json
if ! grep -q '"vm_speedup"' BENCH_9.json; then
    echo "error: BENCH_9.json missing vm_speedup column"
    exit 1
fi
# Heterogeneous-workload smoke: a mixed-class portfolio (vanillas through
# Bermudan-max LSM, BSDE Picard, XVA/CVA) priced live on 8 slaves with a
# recorder attached — every class must surface in the per-class compute
# breakdown; the same portfolio replayed in the simulator under FIFO and
# LPT with paper-calibrated per-class costs (LPT must not lose on
# makespan); and a 3-round staged BSDE Picard workload whose live trace
# must be byte-identical to the staged simulator's (the checks live in
# workload_smoke and fail the process). The JSON line is the PR 10
# artifact; bench_gate re-validates its structure.
echo "==> cargo run -p bench --bin workload_smoke --release -q (heterogeneous workload smoke -> BENCH_10.json)"
wl_out=$(cargo run -p bench --bin workload_smoke --release -q) || exit 1
if ! printf '%s\n' "$wl_out" | grep -q 'traces byte-identical'; then
    echo "error: workload smoke reported no trace-identity line"
    exit 1
fi
printf '%s\n' "$wl_out" | sed -n 's/^JSON: //p' > BENCH_10.json
if ! grep -q '"staged_trace_identical"' BENCH_10.json; then
    echo "error: BENCH_10.json missing staged_trace_identical column"
    exit 1
fi
run cargo run -p bench --bin bench_gate --release -q -- BENCH_6.json BENCH_4.json BENCH_3.json BENCH_7.json BENCH_8.json BENCH_9.json BENCH_10.json || exit 1

# Per-class calibration smoke: the cost table every LPT dispatch consumes,
# plus the self-check that one BSDE Picard round dominates a vanilla
# Monte-Carlo grain (the check lives in bench::calibrate and exits 2 on
# violation).
echo "==> cargo run -p bench --bin table2 --release -q -- --calibrate-classes (per-class grain costs)"
cal_out=$(cargo run -p bench --bin table2 --release -q -- --calibrate-classes) || exit 1
if ! printf '%s\n' "$cal_out" | grep -q 'BSDE Picard round dominates'; then
    echo "error: calibration smoke reported no BSDE-dominance line"
    exit 1
fi

# Dispatch-order smoke: the LPT breakdown self-checks that longest-cost-
# first dispatch leaves per-job wait seconds untouched relative to FIFO
# and never degrades the makespan beyond noise (the checks live in
# bench::breakdown::check_lpt_order and fail the process).
echo "==> cargo run -p bench --bin table2 --release -q -- --breakdown --order lpt --jobs 2000 (LPT dispatch smoke)"
lpt_out=$(cargo run -p bench --bin table2 --release -q -- --breakdown --order lpt --jobs 2000) || exit 1
if ! printf '%s\n' "$lpt_out" | grep -q '(lpt)'; then
    echo "error: LPT breakdown reported no '(lpt)' rows"
    exit 1
fi

echo "==> parallelism gate: no raw thread spawns in pricing kernels outside crates/exec"
# Kernel parallelism must route through the deterministic chunked
# executor; ad-hoc std::thread::spawn in the pricing crate would bypass
# the bit-identity contract. (std::thread::scope inside crates/exec is
# the one sanctioned spawn site.)
spawns=$(grep -rnE 'std::thread::spawn|thread::spawn\(' \
    --include='*.rs' crates/pricing 2>/dev/null \
    | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)')
if [ -n "$spawns" ]; then
    echo "error: raw thread spawns in crates/pricing (use exec::ExecPolicy):"
    echo "$spawns"
    exit 1
fi

echo "==> allocation gate: no hot-loop allocations in the lane kernels"
# The steady-state pricing loops are allocation-free by contract: every
# per-path buffer comes from the pooled PathWorkspace threaded through
# exec. Each kernel file brackets its per-path/per-group loops with
# ALLOC-FREE-BEGIN/END markers; any allocating call inside a bracket
# fails the gate (per-chunk setup and the chunk's return vec sit outside
# the markers on purpose). Comment lines are ignored.
for f in crates/pricing/src/methods/montecarlo.rs \
         crates/pricing/src/methods/lsm.rs \
         crates/pricing/src/methods/bond.rs \
         crates/pricing/src/methods/bsde.rs \
         crates/pricing/src/methods/xva.rs; do
    if ! grep -q 'ALLOC-FREE-BEGIN' "$f"; then
        echo "error: $f lost its ALLOC-FREE markers (the allocation gate needs them)"
        exit 1
    fi
    allocs=$(awk '/ALLOC-FREE-END/{inr=0} inr{print FILENAME":"FNR": "$0} /ALLOC-FREE-BEGIN/{inr=1}' "$f" \
        | grep -E 'Vec::new|vec!|\.to_vec\(|Box::new' \
        | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)')
    if [ -n "$allocs" ]; then
        echo "error: allocation inside an ALLOC-FREE region of $f:"
        echo "$allocs"
        exit 1
    fi
done

echo "==> hash gate: no name lookups in the VM dispatch loop"
# The bytecode VM's dispatch loop is hash-free by contract: locals are
# resolved to register slots at lower time, constants and names are
# interned into Vec-indexed side tables, so executing an op never hashes
# a string. The loop is bracketed with HASH-FREE-BEGIN/END markers in
# vm.rs; any map or name-resolution token inside the bracket fails the
# gate (the cold helpers — dynamic-scope fallback, call setup — live
# below the markers on purpose). Comment lines are ignored.
vmfile=crates/nsplang/src/vm.rs
if ! grep -q 'HASH-FREE-BEGIN' "$vmfile"; then
    echo "error: $vmfile lost its HASH-FREE markers (the hash gate needs them)"
    exit 1
fi
hashes=$(awk '/HASH-FREE-END/{inr=0} inr{print FILENAME":"FNR": "$0} /HASH-FREE-BEGIN/{inr=1}' "$vmfile" \
    | grep -E 'HashMap|BTreeMap|\.entry\(|scopes|\.lookup\(|resolve_var|resolve_ident|to_string\(' \
    | grep -v -E '^[^:]*:[0-9]+:\s*(//|//!|///)')
if [ -n "$hashes" ]; then
    echo "error: name lookup inside the HASH-FREE region of $vmfile:"
    echo "$hashes"
    exit 1
fi

echo "==> cargo test -q --workspace $*"
if ! cargo test -q --workspace "$@"; then
    echo "==> test failure; retrying once to rule out machine-load flakes"
    run cargo test -q --workspace "$@" || exit 1
fi

# Clippy is part of the gate when the component is installed (it is on
# the standard toolchain; skip gracefully on minimal installs).
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets -- -D warnings || exit 1
else
    echo "==> clippy unavailable; skipping lint stage"
fi

echo "==> tier-1 gate green"
